"""Logical analysis of a bound query.

Flattens the (left-deep) FROM tree into an ordered list of table
accesses with their join conditions, and exposes the pieces the rules
and optimizer reason about.  No rewriting happens here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.errors import PlanError
from repro.relational.schema import TableSchema
from repro.sql import ast


@dataclass
class TableAccess:
    """One base-table reference in the FROM clause."""

    binding: str
    table_name: str
    schema: TableSchema


@dataclass
class DerivedAccess:
    """A derived table ``(SELECT ...) alias`` in the FROM clause."""

    binding: str
    query: ast.Query
    schema: TableSchema


@dataclass
class FromElement:
    """One element of the flattened join sequence.

    The first element has ``join_kind is None``; every later element
    joins to the accumulated prefix with the recorded kind/condition.
    """

    access: Union[TableAccess, DerivedAccess]
    join_kind: Optional[str] = None
    condition: Optional[ast.Expr] = None


@dataclass
class QueryStructure:
    """A bound SELECT decomposed for planning."""

    statement: ast.Query
    elements: List[FromElement] = field(default_factory=list)

    @property
    def bindings(self) -> List[str]:
        return [element.access.binding for element in self.elements]

    def element(self, binding: str) -> FromElement:
        for candidate in self.elements:
            if candidate.access.binding.lower() == binding.lower():
                return candidate
        raise PlanError(f"no FROM element bound as {binding!r}")


def analyze_query(
    statement: ast.Query, schemas_by_binding: dict
) -> QueryStructure:
    """Flatten a bound query's FROM clause into a QueryStructure.

    ``schemas_by_binding`` comes from the binder
    (:attr:`~repro.sql.binder.BoundQuery.tables`, lower-cased binding ->
    schema).
    """
    structure = QueryStructure(statement=statement)
    if statement.from_clause is None:
        return structure

    def schema_for(binding: str) -> TableSchema:
        key = binding.lower()
        if key not in schemas_by_binding:
            raise PlanError(f"binder did not register binding {binding!r}")
        return schemas_by_binding[key]

    def flatten(ref: ast.TableRef) -> None:
        if isinstance(ref, ast.Join):
            flatten(ref.left)
            element = _element_for_primary(ref.right, schema_for)
            element.join_kind = ref.kind
            element.condition = ref.condition
            structure.elements.append(element)
            return
        structure.elements.append(_element_for_primary(ref, schema_for))

    flatten(statement.from_clause)
    return structure


def _element_for_primary(ref: ast.TableRef, schema_for) -> FromElement:
    if isinstance(ref, ast.NamedTable):
        binding = ref.binding_name
        return FromElement(
            access=TableAccess(
                binding=binding, table_name=ref.name, schema=schema_for(binding)
            )
        )
    if isinstance(ref, ast.SubqueryTable):
        return FromElement(
            access=DerivedAccess(
                binding=ref.alias, query=ref.query, schema=schema_for(ref.alias)
            )
        )
    raise PlanError(
        f"FROM tree is not left-deep: unexpected {type(ref).__name__} on the right"
    )
