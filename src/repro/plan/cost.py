"""Cost model in LLM calls and tokens.

Dollars and latency follow directly from tokens, so plans are priced in
``(calls, prompt_tokens, completion_tokens)``.  Cardinalities come from
per-table statistics (row counts are declared when a virtual table is
registered — the same prior knowledge a practitioner has) and textbook
selectivity heuristics.  Experiment "Table 4" measures how faithfully
these estimates rank real plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import EngineConfig
from repro.relational.schema import TableSchema
from repro.sql import ast

#: Prompt framing + headers cost roughly this many tokens per call.
PROMPT_OVERHEAD_TOKENS = 90.0

#: A rendered data cell costs roughly this many tokens.
TOKENS_PER_CELL = 4.0

#: One entity line in a lookup/judge section.
TOKENS_PER_ENTITY = 6.0

#: Default row-count guess when a virtual table has no statistics.
DEFAULT_ROW_COUNT = 100

# Selectivity heuristics (Selinger-style constants).
SEL_EQ_KEY = None  # computed as 1/row_count
SEL_EQ = 0.10
SEL_RANGE = 0.30
SEL_BETWEEN = 0.25
SEL_LIKE = 0.25
SEL_DEFAULT = 0.50


@dataclass(frozen=True)
class TableStats:
    """Statistics for one virtual table.

    ``default_guess`` marks a table registered without an explicit
    ``row_estimate`` — its ``row_count`` is the blind
    :data:`DEFAULT_ROW_COUNT` constant, not knowledge.
    """

    row_count: int = DEFAULT_ROW_COUNT
    default_guess: bool = False


@dataclass(frozen=True)
class CostEstimate:
    """Estimated price of a plan fragment."""

    calls: float = 0.0
    prompt_tokens: float = 0.0
    completion_tokens: float = 0.0

    @property
    def total_tokens(self) -> float:
        return self.prompt_tokens + self.completion_tokens

    def plus(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(
            calls=self.calls + other.calls,
            prompt_tokens=self.prompt_tokens + other.prompt_tokens,
            completion_tokens=self.completion_tokens + other.completion_tokens,
        )

    def render(self) -> str:
        return (
            f"~{self.calls:.1f} calls, ~{self.prompt_tokens:.0f}+"
            f"{self.completion_tokens:.0f} tokens"
        )


class CostModel:
    """Prices retrieval steps given table statistics and engine config.

    ``catalog`` (a :class:`repro.stats.StatisticsCatalog`, optional)
    supplies *observed* cardinalities, consulted ahead of the static
    ``row_estimate`` hints — adaptive planning hinges on the observed
    number winning once it exists.  Tables priced off the bare
    :data:`DEFAULT_ROW_COUNT` guess (no hint, nothing observed) are
    collected in :attr:`default_guess_tables` so the planner can
    surface the blind spot instead of silently mispricing.
    """

    def __init__(
        self,
        stats: Dict[str, TableStats],
        config: EngineConfig,
        catalog=None,
    ):
        self._stats = {name.lower(): value for name, value in stats.items()}
        self._config = config
        self._catalog = catalog
        #: Tables priced off DEFAULT_ROW_COUNT during this model's use.
        self.default_guess_tables = set()
        #: Tables priced off a catalog observation (adaptive only).
        self.observed_tables = {}

    # -- cardinalities ------------------------------------------------------

    def row_count(self, table_name: str) -> int:
        if self._catalog is not None:
            observed = self._catalog.observed_rows(table_name)
            if observed is not None:
                self.observed_tables[table_name.lower()] = observed
                return max(1, observed)
        stats = self._stats.get(table_name.lower())
        if stats is not None:
            if stats.default_guess:
                self.default_guess_tables.add(table_name.lower())
            return stats.row_count
        self.default_guess_tables.add(table_name.lower())
        return DEFAULT_ROW_COUNT

    def selectivity(
        self, predicate: Optional[ast.Expr], schema: TableSchema
    ) -> float:
        """Estimated fraction of rows satisfying ``predicate``."""
        if predicate is None:
            return 1.0
        return self._selectivity_expr(predicate, schema)

    def _selectivity_expr(self, expr: ast.Expr, schema: TableSchema) -> float:
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "AND":
                return self._selectivity_expr(expr.left, schema) * self._selectivity_expr(
                    expr.right, schema
                )
            if expr.op == "OR":
                left = self._selectivity_expr(expr.left, schema)
                right = self._selectivity_expr(expr.right, schema)
                return min(1.0, left + right - left * right)
            if expr.op == "=":
                column = self._comparison_column(expr)
                if column is not None and self._is_key_column(column, schema):
                    return 1.0 / max(1, self.row_count(schema.name))
                return SEL_EQ
            if expr.op in ("<", "<=", ">", ">="):
                return SEL_RANGE
            if expr.op == "<>":
                return 1.0 - SEL_EQ
            return SEL_DEFAULT
        if isinstance(expr, ast.UnaryOp) and expr.op == "NOT":
            return max(0.0, 1.0 - self._selectivity_expr(expr.operand, schema))
        if isinstance(expr, ast.Between):
            return SEL_BETWEEN if not expr.negated else 1.0 - SEL_BETWEEN
        if isinstance(expr, ast.InList):
            base = min(1.0, SEL_EQ * max(1, len(expr.items)))
            return base if not expr.negated else 1.0 - base
        if isinstance(expr, ast.Like):
            return SEL_LIKE if not expr.negated else 1.0 - SEL_LIKE
        if isinstance(expr, ast.IsNull):
            return 0.05 if not expr.negated else 0.95
        return SEL_DEFAULT

    @staticmethod
    def _comparison_column(expr: ast.BinaryOp) -> Optional[str]:
        if isinstance(expr.left, ast.ColumnRef) and isinstance(expr.right, ast.Literal):
            return expr.left.name
        if isinstance(expr.right, ast.ColumnRef) and isinstance(expr.left, ast.Literal):
            return expr.right.name
        return None

    @staticmethod
    def _is_key_column(column: str, schema: TableSchema) -> bool:
        return schema.primary_key == (column,) or (
            len(schema.primary_key) == 1
            and schema.primary_key[0].lower() == column.lower()
        )

    # -- step costs -------------------------------------------------------------

    def scan_cost(
        self,
        table_name: str,
        rows_out: float,
        column_count: int,
        limit_hint: Optional[int] = None,
    ) -> CostEstimate:
        """Cost of a paginated enumeration fetching ``rows_out`` rows."""
        if limit_hint is not None:
            rows_out = min(rows_out, float(limit_hint))
        pages = max(1.0, -(-rows_out // self._config.page_size))
        prompt = pages * PROMPT_OVERHEAD_TOKENS
        completion = rows_out * column_count * TOKENS_PER_CELL + pages * 2
        return CostEstimate(
            calls=pages, prompt_tokens=prompt, completion_tokens=completion
        )

    def sharded_scan_cost(
        self,
        table_name: str,
        rows_out: float,
        column_count: int,
        shard_count: int,
    ) -> CostEstimate:
        """Cost of ``rows_out`` rows split over ``shard_count`` chains.

        Page rounding happens per shard, so sharding can cost a few
        extra calls (and their prompt overhead) versus one chain; the
        completion tokens are identical — the same rows come back.
        """
        shard_count = max(1, shard_count)
        per_shard = max(1.0, -(-rows_out // shard_count))
        pages = 0.0
        remaining = rows_out
        for _ in range(shard_count):
            share = min(per_shard, max(0.0, remaining))
            pages += max(1.0, -(-share // self._config.page_size))
            remaining -= share
        prompt = pages * PROMPT_OVERHEAD_TOKENS
        completion = rows_out * column_count * TOKENS_PER_CELL + pages * 2
        return CostEstimate(
            calls=pages, prompt_tokens=prompt, completion_tokens=completion
        )

    def streamed_scan_cost(
        self,
        table_name: str,
        est_rows: float,
        column_count: int,
        needed_rows: int,
        residual_selectivity: float = 1.0,
    ) -> CostEstimate:
        """Cost of a streamed scan that stops after ``needed_rows`` outputs.

        The consumer needs ``needed_rows`` rows *after* a residual local
        filter of the given selectivity, so the stream is expected to
        pull ``needed / selectivity`` input rows before the quota trips
        — never more than the full enumeration (``est_rows``), which is
        the materialized ceiling the early exit is priced against.
        """
        selectivity = min(1.0, max(residual_selectivity, 0.001))
        rows_in = min(max(1.0, est_rows), max(1.0, needed_rows) / selectivity)
        pages = max(1.0, -(-rows_in // self._config.page_size))
        full_pages = max(1.0, -(-max(1.0, est_rows) // self._config.page_size))
        pages = min(pages, full_pages)
        prompt = pages * PROMPT_OVERHEAD_TOKENS
        completion = rows_in * column_count * TOKENS_PER_CELL + pages * 2
        return CostEstimate(
            calls=pages, prompt_tokens=prompt, completion_tokens=completion
        )

    def lookup_cost(self, key_count: float, attribute_count: int) -> CostEstimate:
        """Cost of batched lookups for ``key_count`` entities."""
        batch = max(1, self._config.lookup_batch_size)
        votes = max(1, self._config.votes)
        batches = max(1.0, -(-key_count // batch)) * votes
        prompt = batches * PROMPT_OVERHEAD_TOKENS + key_count * votes * TOKENS_PER_ENTITY
        completion = key_count * votes * (attribute_count + 1) * TOKENS_PER_CELL
        return CostEstimate(
            calls=batches, prompt_tokens=prompt, completion_tokens=completion
        )

    def judge_cost(self, key_count: float) -> CostEstimate:
        """Cost of batched judgements for ``key_count`` entities."""
        batch = max(1, self._config.lookup_batch_size)
        votes = max(1, self._config.votes)
        batches = max(1.0, -(-key_count // batch)) * votes
        prompt = batches * PROMPT_OVERHEAD_TOKENS + key_count * votes * TOKENS_PER_ENTITY
        completion = key_count * votes * 3.0
        return CostEstimate(
            calls=batches, prompt_tokens=prompt, completion_tokens=completion
        )
