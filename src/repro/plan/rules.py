"""Rewrite-rule helpers: conjunct analysis, pushdown safety, projection.

These are pure functions over bound expressions.  The optimizer composes
them; they are also unit-tested in isolation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.relational import functions as scalar_functions
from repro.sql import ast
from repro.sql.printer import print_expression


def split_conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: List[ast.Expr]) -> Optional[ast.Expr]:
    """Rebuild a predicate from conjuncts (None for an empty list)."""
    result: Optional[ast.Expr] = None
    for conjunct in conjuncts:
        result = (
            conjunct
            if result is None
            else ast.BinaryOp(op="AND", left=result, right=conjunct)
        )
    return result


def referenced_bindings(expr: ast.Expr) -> Set[str]:
    """Lower-cased binding names referenced by ``expr`` (bound AST)."""
    return {
        node.table.lower()
        for node in ast.walk_expression(expr)
        if isinstance(node, ast.ColumnRef) and node.table is not None
    }


def single_binding(expr: ast.Expr) -> Optional[str]:
    """The unique binding ``expr`` touches, or None (0 or >1 bindings,
    or any subquery)."""
    if ast.contains_subquery(expr):
        return None
    bindings = referenced_bindings(expr)
    if len(bindings) == 1:
        return next(iter(bindings))
    return None


#: Expression node types a model is asked to evaluate inside a prompt.
_PROMPT_SAFE_NODES = (
    ast.Literal,
    ast.ColumnRef,
    ast.BinaryOp,
    ast.UnaryOp,
    ast.Between,
    ast.InList,
    ast.IsNull,
    ast.Like,
)


def is_prompt_safe(expr: ast.Expr) -> bool:
    """Can ``expr`` be shipped to the model inside a scan CONDITION?

    The subset is deliberately conservative: comparisons, boolean
    connectives, BETWEEN/IN/LIKE/IS NULL, arithmetic, and a small scalar
    function whitelist.  Subqueries and CASE never ship.
    """
    for node in ast.walk_expression(expr):
        if isinstance(node, ast.FunctionCall):
            if not scalar_functions.is_scalar_function(node.name):
                return False
            continue
        if not isinstance(node, _PROMPT_SAFE_NODES):
            return False
    return True


def strip_binding_qualifiers(expr: ast.Expr) -> ast.Expr:
    """Rewrite a single-binding expression to bare column names.

    Prompts describe one table at a time, so shipped predicates use
    unqualified columns; the model re-parses them against that table.
    """
    if isinstance(expr, ast.ColumnRef):
        return ast.ColumnRef(name=expr.name)
    if isinstance(expr, ast.Literal):
        return ast.Literal(value=expr.value)
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            op=expr.op,
            left=strip_binding_qualifiers(expr.left),
            right=strip_binding_qualifiers(expr.right),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(op=expr.op, operand=strip_binding_qualifiers(expr.operand))
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            name=expr.name,
            args=[strip_binding_qualifiers(arg) for arg in expr.args],
            distinct=expr.distinct,
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            operand=strip_binding_qualifiers(expr.operand),
            low=strip_binding_qualifiers(expr.low),
            high=strip_binding_qualifiers(expr.high),
            negated=expr.negated,
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            operand=strip_binding_qualifiers(expr.operand),
            items=[strip_binding_qualifiers(item) for item in expr.items],
            negated=expr.negated,
        )
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(
            operand=strip_binding_qualifiers(expr.operand), negated=expr.negated
        )
    if isinstance(expr, ast.Like):
        return ast.Like(
            operand=strip_binding_qualifiers(expr.operand),
            pattern=strip_binding_qualifiers(expr.pattern),
            negated=expr.negated,
        )
    raise ValueError(
        f"cannot strip qualifiers from {type(expr).__name__} "
        f"({print_expression(expr)}); not prompt-safe"
    )


def render_pushdown(expr: ast.Expr) -> str:
    """Render a single-binding prompt-safe predicate for a CONDITION header."""
    return print_expression(strip_binding_qualifiers(expr))


# ---------------------------------------------------------------------------
# Equi-join extraction
# ---------------------------------------------------------------------------


def equi_pairs(
    condition: Optional[ast.Expr],
) -> List[Tuple[ast.ColumnRef, ast.ColumnRef]]:
    """Column-equality conjuncts ``a.x = b.y`` of a join condition."""
    pairs = []
    for conjunct in split_conjuncts(condition):
        if (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
            and conjunct.left.table is not None
            and conjunct.right.table is not None
            and conjunct.left.table.lower() != conjunct.right.table.lower()
        ):
            pairs.append((conjunct.left, conjunct.right))
    return pairs


# ---------------------------------------------------------------------------
# Projection analysis
# ---------------------------------------------------------------------------


def needed_columns(
    statement: ast.Query, elements_bindings: List[str]
) -> Dict[str, Set[str]]:
    """Columns each binding must supply for local execution.

    Walks every expression of the statement — select list, join
    conditions, WHERE, GROUP BY, HAVING, ORDER BY — and collects
    qualified column references per binding (lower-cased names).
    Subquery bodies are excluded: they are planned separately.
    """
    wanted: Dict[str, Set[str]] = {binding.lower(): set() for binding in elements_bindings}

    def collect(expr: Optional[ast.Expr]) -> None:
        if expr is None:
            return
        for node in ast.walk_expression(expr):
            if isinstance(node, ast.ColumnRef) and node.table is not None:
                key = node.table.lower()
                if key in wanted:
                    wanted[key].add(node.name.lower())

    for item in statement.select:
        collect(item.expr)
    collect(statement.where)

    def collect_join_conditions(ref: Optional[ast.TableRef]) -> None:
        if isinstance(ref, ast.Join):
            collect_join_conditions(ref.left)
            collect_join_conditions(ref.right)
            collect(ref.condition)

    collect_join_conditions(statement.from_clause)
    for expr in statement.group_by:
        collect(expr)
    collect(statement.having)
    for order in statement.order_by:
        collect(order.expr)
    return wanted


# ---------------------------------------------------------------------------
# Correlation detection
# ---------------------------------------------------------------------------


def own_bindings(query: ast.Query) -> Set[str]:
    """Binding names introduced by a query's own FROM clause."""
    found: Set[str] = set()

    def visit(ref: Optional[ast.TableRef]) -> None:
        if ref is None:
            return
        if isinstance(ref, ast.NamedTable):
            found.add(ref.binding_name.lower())
        elif isinstance(ref, ast.SubqueryTable):
            found.add(ref.alias.lower())
        elif isinstance(ref, ast.Join):
            visit(ref.left)
            visit(ref.right)

    visit(query.from_clause)
    return found


def is_correlated(query: ast.Query) -> bool:
    """True if a bound subquery references bindings it does not define."""
    local = own_bindings(query)

    def check_expr(expr: Optional[ast.Expr]) -> bool:
        if expr is None:
            return False
        for node in ast.walk_expression(expr):
            if isinstance(node, ast.ColumnRef) and node.table is not None:
                if node.table.lower() not in local:
                    return True
            if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
                if _nested_refs_escape(node.query, local):
                    return True
        return False

    def _nested_refs_escape(nested: ast.Query, outer_local: Set[str]) -> bool:
        allowed = outer_local | own_bindings(nested)
        for expr in _all_expressions(nested):
            for node in ast.walk_expression(expr):
                if isinstance(node, ast.ColumnRef) and node.table is not None:
                    if node.table.lower() not in allowed:
                        return True
        return False

    for expr in _all_expressions(query):
        if check_expr(expr):
            return True
    return False


def _all_expressions(query: ast.Query) -> List[ast.Expr]:
    exprs: List[ast.Expr] = [item.expr for item in query.select]
    if query.where is not None:
        exprs.append(query.where)
    exprs.extend(query.group_by)
    if query.having is not None:
        exprs.append(query.having)
    exprs.extend(item.expr for item in query.order_by)

    def join_conditions(ref: Optional[ast.TableRef]) -> None:
        if isinstance(ref, ast.Join):
            join_conditions(ref.left)
            join_conditions(ref.right)
            if ref.condition is not None:
                exprs.append(ref.condition)

    join_conditions(query.from_clause)
    return exprs


def find_subqueries(statement: ast.Query) -> List[ast.Expr]:
    """All subquery expression nodes in a statement's own expressions."""
    found: List[ast.Expr] = []
    for expr in _all_expressions(statement):
        for node in ast.walk_expression(expr):
            if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
                found.append(node)
    return found
