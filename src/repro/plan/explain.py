"""EXPLAIN: human-readable rendering of retrieval plans."""

from __future__ import annotations

from typing import List

from repro.plan.physical import (
    DerivedStep,
    JudgeStep,
    LookupStep,
    PlanNode,
    RetrievalPlan,
    ScanStep,
    SetOpPlan,
    ShardedScanStep,
)
from repro.sql.printer import print_statement


def explain_plan(plan: PlanNode) -> str:
    """Render a plan as an indented text tree with cost estimates."""
    lines: List[str] = []
    _render(plan, lines, indent=0)
    return "\n".join(lines)


def _pad(indent: int) -> str:
    return "  " * indent


def step_line(step) -> str:
    """The one-line header for a non-derived step (no indentation).

    Shared between EXPLAIN and EXPLAIN ANALYZE so both render every
    step identically; ANALYZE appends its actuals underneath.
    """
    if isinstance(step, ScanStep):
        detail = f"columns=({', '.join(step.columns)})"
        if step.pushdown_sql:
            detail += f" condition[{step.pushdown_sql}]"
        if step.order is not None:
            column, descending = step.order
            detail += f" order[{column} {'DESC' if descending else 'ASC'}]"
        if step.limit_hint is not None:
            detail += f" limit[{step.limit_hint}]"
        if step.stop_after_rows is not None:
            detail += f" stream[early-exit rows<={step.stop_after_rows}]"
        return (
            f"LLMScan {step.table_name} AS {step.binding} "
            f"{detail} est_rows={step.est_rows:.0f} [{step.estimate.render()}]"
        )
    if isinstance(step, ShardedScanStep):
        scan = step.scan
        detail = f"columns=({', '.join(scan.columns)})"
        if scan.pushdown_sql:
            detail += f" condition[{scan.pushdown_sql}]"
        detail += f" shards={len(step.shards)}"
        if step.aggregate is not None:
            described = ", ".join(
                item.printed for item in step.aggregate.items
            ) or "group keys"
            if step.aggregate.group_columns:
                described += (
                    f" by ({', '.join(step.aggregate.group_columns)})"
                )
            detail += f" partial-agg[{described}]"
        return (
            f"LLMShardedScan {step.table_name} AS "
            f"{step.binding} {detail} est_rows={step.est_rows:.0f} "
            f"[{step.estimate.render()}]"
        )
    if isinstance(step, LookupStep):
        if step.literal_keys is not None:
            source = f"{len(step.literal_keys)} literal key(s)"
        else:
            source = (
                f"{step.source_binding}({', '.join(step.source_columns)})"
            )
        detail = ""
        if step.stop_after_rows is not None:
            detail = f" stream[early-exit rows<={step.stop_after_rows}]"
        return (
            f"LLMLookup {step.table_name} AS {step.binding} "
            f"keys=({', '.join(step.key_columns)}) <- {source} "
            f"attrs=({', '.join(step.attributes)}){detail} "
            f"est_keys={step.est_keys:.0f} [{step.estimate.render()}]"
        )
    if isinstance(step, JudgeStep):
        return (
            f"LLMJudge {step.binding} "
            f"condition[{step.condition_sql}] est_keys={step.est_keys:.0f} "
            f"[{step.estimate.render()}]"
        )
    # LocalStep
    return (
        f"LocalTable {step.table_name} AS {step.binding} "
        f"est_rows={step.est_rows:.0f} [zero model cost]"
    )


def _render(plan: PlanNode, lines: List[str], indent: int) -> None:
    if isinstance(plan, SetOpPlan):
        word = plan.op.upper() + (" ALL" if plan.all else "")
        lines.append(f"{_pad(indent)}SetOp {word} [{plan.estimate.render()}]")
        _render(plan.left, lines, indent + 1)
        _render(plan.right, lines, indent + 1)
        return
    assert isinstance(plan, RetrievalPlan)
    lines.append(
        f"{_pad(indent)}LocalCompute: {print_statement(plan.statement)} "
        f"[{plan.estimate.render()}]"
    )
    for note in plan.notes:
        lines.append(f"{_pad(indent + 1)}note: {note}")
    for step in plan.steps:
        if isinstance(step, DerivedStep):
            lines.append(f"{_pad(indent + 1)}Derived {step.binding}:")
            _render(step.plan, lines, indent + 2)
        else:
            lines.append(f"{_pad(indent + 1)}{step_line(step)}")
    for subplan in plan.subplans:
        lines.append(f"{_pad(indent + 1)}Subquery:")
        _render(subplan.plan, lines, indent + 2)
