"""Physical (retrieval) plans.

A :class:`RetrievalPlan` is an ordered list of steps that materialize a
local table per FROM binding, followed by local execution of the bound
statement over those tables.  Steps reference earlier steps by binding
name (lookup keys flow from an already-materialized table), so order
matters and is exactly execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.plan.cost import CostEstimate
from repro.relational.schema import TableSchema
from repro.sql import ast


@dataclass
class ScanStep:
    """Materialize a binding via paginated enumeration.

    Attributes:
        binding: FROM binding this step materializes.
        table_name: virtual table to enumerate.
        schema: schema of the virtual table.
        columns: columns to fetch (projection pruning already applied).
        pushdown_sql: predicate shipped in the CONDITION header, if any.
        pushed_conjuncts: the bound conjuncts represented by
            ``pushdown_sql`` (kept for EXPLAIN and re-verification).
        order: optional model-side ``(column, descending)`` ordering.
        limit_hint: stop enumerating after this many rows (requires the
            scan to carry *all* filtering, see optimizer).
        stop_after_rows: streaming early-exit annotation — a downstream
            consumer (LIMIT over a residual local filter, EXISTS) needs
            at most this many *output* rows, so the executor consumes
            the scan page-by-page and closes the stream once exact
            local compute over the fetched prefix already yields them.
            Unlike ``limit_hint`` the quota counts post-filter output
            rows, so it stays sound when filtering is local.
        est_rows: estimated rows fetched.
        estimate: estimated model cost of the step.
        fragment_covered: the optimizer found a complete materialized
            fragment covering this scan; it is expected to be served by
            the storage tier without model traffic (the estimate is
            zeroed, and order/limit pushdown is skipped — exact local
            compute over the fragment beats a narrower model scan).
        pinned_fragment: the fragment behind ``fragment_covered``,
            pinned at plan time so the routed plan stays servable even
            if the tier entry is evicted or expires before execution.
        predicate_fingerprint: canonical fingerprint of the pushed
            conjuncts (statistics-catalog selectivity key); None when
            nothing was pushed.
        residual_fingerprint: fingerprint of the *residual* (local)
            conjuncts a streamed early-exit scan filters through; the
            executor records observed residual selectivity under it.
        est_selectivity: estimated selectivity of the pushed predicate
            (1.0 when nothing was pushed) — EXPLAIN ANALYZE compares
            it against the observed fraction.
        est_residual_sel: estimated selectivity of the residual local
            filter of a streamed scan; the adaptive executor re-plans
            when observation diverges from it beyond the threshold.
    """

    binding: str
    table_name: str
    schema: TableSchema
    columns: Tuple[str, ...]
    pushdown_sql: Optional[str] = None
    pushed_conjuncts: List[ast.Expr] = field(default_factory=list)
    order: Optional[Tuple[str, bool]] = None
    limit_hint: Optional[int] = None
    stop_after_rows: Optional[int] = None
    est_rows: float = 0.0
    estimate: CostEstimate = CostEstimate()
    fragment_covered: bool = False
    pinned_fragment: Optional[object] = field(default=None, repr=False)
    predicate_fingerprint: Optional[str] = field(default=None, repr=False)
    residual_fingerprint: Optional[str] = field(default=None, repr=False)
    est_selectivity: float = 1.0
    est_residual_sel: float = 1.0

    @property
    def kind(self) -> str:
        return "scan"


#: Aggregate functions with algebraic combiners (AVG via sum+count).
MERGEABLE_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


@dataclass(frozen=True)
class ShardSpec:
    """One key-range shard of a sharded scan's enumeration cursor.

    Attributes:
        index: shard position; merge order is ascending index.
        start: absolute enumeration index the shard's page chain
            starts at (its first page carries ``AFTER_INDEX = start``).
        row_target: rows the shard is responsible for; ``None`` marks
            the open-ended final shard, which pages until the model
            signals completion.
    """

    index: int
    start: int
    row_target: Optional[int] = None


@dataclass(frozen=True)
class AggregateItem:
    """One algebraic aggregate computed per shard and merged.

    Attributes:
        func: aggregate name (COUNT/SUM/MIN/MAX/AVG, upper-cased).
        column: argument column; ``None`` means ``COUNT(*)``.
        output: synthesized column name the merged value lands in.
        printed: canonical printed form of the original call (the key
            the statement rewrite used, kept for EXPLAIN).
    """

    func: str
    column: Optional[str]
    output: str
    printed: str


@dataclass(frozen=True)
class PartialAggregateSpec:
    """Partial-aggregate pushdown over a sharded scan.

    Each shard reduces its rows to per-group partial states; the merge
    combines them with algebraic combiners in shard order, so the
    final aggregate values match a single-chain computation without any
    chain ever materializing the whole table.  ``residual_filter`` is
    the query's original WHERE (already-pushed conjuncts included —
    they are locally re-verified exactly as the unsharded path does),
    applied per shard row before accumulation.
    """

    binding: str
    group_columns: Tuple[str, ...]
    items: Tuple[AggregateItem, ...]
    residual_filter: Optional[ast.Expr] = None


@dataclass
class ShardedScanStep:
    """A scan partitioned into independent per-shard page chains.

    Wraps the :class:`ScanStep` the optimizer would otherwise have
    emitted; the executor fans ``shards`` out through the dispatcher as
    independent chains and concatenates their rows in ascending shard
    order — byte-identical to the single sequential chain, because a
    deterministic model enumerates the same believed row list for
    every cursor position.  With ``aggregate`` set, each shard reduces
    to mergeable partial aggregate states instead of returning rows.
    """

    scan: ScanStep
    shards: List[ShardSpec] = field(default_factory=list)
    aggregate: Optional[PartialAggregateSpec] = None
    estimate: CostEstimate = CostEstimate()

    @property
    def binding(self) -> str:
        return self.scan.binding

    @property
    def table_name(self) -> str:
        return self.scan.table_name

    @property
    def schema(self) -> TableSchema:
        return self.scan.schema

    @property
    def columns(self) -> Tuple[str, ...]:
        return self.scan.columns

    @property
    def est_rows(self) -> float:
        return self.scan.est_rows

    @property
    def kind(self) -> str:
        return "sharded-scan"


@dataclass
class LookupStep:
    """Materialize a binding via batched key lookups.

    Keys come either from ``literal_keys`` (point queries: pk-equality /
    pk-IN predicates) or from the distinct values of ``source_columns``
    in the table already materialized for ``source_binding``
    (lookup-joins).  Each found entity becomes one row of
    ``key_columns + attributes``.

    ``stop_after_rows`` is the streaming early-exit annotation (see
    :class:`ScanStep`): the executor then dispatches key batches one at
    a time and stops once the consumer's quota of output rows is met,
    instead of fanning every batch out up front.
    """

    binding: str
    table_name: str
    schema: TableSchema
    key_columns: Tuple[str, ...]
    attributes: Tuple[str, ...]
    source_binding: str = ""
    source_columns: Tuple[str, ...] = ()
    literal_keys: Optional[List[Tuple]] = None
    stop_after_rows: Optional[int] = None
    est_keys: float = 0.0
    estimate: CostEstimate = CostEstimate()

    @property
    def kind(self) -> str:
        return "lookup"


@dataclass
class JudgeStep:
    """Filter an already-materialized binding via batched judgements.

    The judged conjuncts are *removed* from the local statement (the
    model's verdicts are authoritative), which lets projection pruning
    skip the predicate's columns entirely.
    """

    binding: str
    table_name: str
    schema: TableSchema
    key_columns: Tuple[str, ...]
    condition_sql: str
    judged_conjuncts: List[ast.Expr] = field(default_factory=list)
    est_keys: float = 0.0
    estimate: CostEstimate = CostEstimate()

    @property
    def kind(self) -> str:
        return "judge"


@dataclass
class DerivedStep:
    """Materialize a derived table by running a nested plan."""

    binding: str
    plan: "PlanNode"
    estimate: CostEstimate = CostEstimate()

    @property
    def kind(self) -> str:
        return "derived"


@dataclass
class LocalStep:
    """Bind a *materialized* table: zero model cost (hybrid queries).

    The engine supports mixing locally-stored tables with virtual ones
    in a single query; materialized bindings are satisfied straight from
    storage and can also drive lookup-joins into virtual tables.
    """

    binding: str
    table_name: str
    schema: TableSchema
    est_rows: float = 0.0
    estimate: CostEstimate = CostEstimate()

    @property
    def kind(self) -> str:
        return "local"


Step = Union[
    ScanStep, ShardedScanStep, LookupStep, JudgeStep, DerivedStep, LocalStep
]


@dataclass
class SubplanBinding:
    """An uncorrelated subquery expression resolved by a nested plan.

    ``node`` is the exact expression object inside ``statement`` that the
    executor replaces with the subplan's result (IN-list or scalar).
    """

    node: ast.Expr
    plan: "PlanNode"


@dataclass
class RetrievalPlan:
    """Plan for one SELECT: retrieval steps + local compute statement."""

    statement: ast.Query
    steps: List[Step] = field(default_factory=list)
    subplans: List[SubplanBinding] = field(default_factory=list)
    output_names: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def estimate(self) -> CostEstimate:
        total = CostEstimate()
        for step in self.steps:
            total = total.plus(step.estimate)
            if isinstance(step, DerivedStep):
                total = total.plus(step.plan.estimate)
        for subplan in self.subplans:
            total = total.plus(subplan.plan.estimate)
        return total

    def steps_by_binding(self) -> Dict[str, Step]:
        return {step.binding.lower(): step for step in self.steps if hasattr(step, "binding")}


@dataclass
class SetOpPlan:
    """Plan for a set operation: each side planned independently."""

    op: str
    all: bool
    left: "PlanNode"
    right: RetrievalPlan
    order_by: List[ast.OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    output_names: List[str] = field(default_factory=list)

    @property
    def estimate(self) -> CostEstimate:
        return self.left.estimate.plus(self.right.estimate)

    @property
    def notes(self) -> List[str]:
        return self.left.notes + self.right.notes


PlanNode = Union[RetrievalPlan, SetOpPlan]
