"""Query planning for the decomposed engine.

A bound query is analyzed into a :class:`~repro.plan.logical.QueryStructure`
(table accesses, join edges, predicate conjuncts), rewritten by the rules
in :mod:`repro.plan.rules` (predicate pushdown, projection pruning), and
compiled by the :class:`~repro.plan.optimizer.Optimizer` into a
:class:`~repro.plan.physical.RetrievalPlan`: an ordered list of model
retrieval steps plus the statement executed locally over the retrieved
tables.  The :class:`~repro.plan.cost.CostModel` prices alternatives in
LLM calls and tokens — the currency that matters in this setting.
"""

from repro.plan.logical import FromElement, QueryStructure, TableAccess, analyze_query
from repro.plan.cost import CostEstimate, CostModel, TableStats
from repro.plan.physical import (
    DerivedStep,
    JudgeStep,
    LookupStep,
    RetrievalPlan,
    ScanStep,
    SetOpPlan,
)
from repro.plan.optimizer import Optimizer
from repro.plan.explain import explain_plan

__all__ = [
    "FromElement",
    "QueryStructure",
    "TableAccess",
    "analyze_query",
    "CostEstimate",
    "CostModel",
    "TableStats",
    "DerivedStep",
    "JudgeStep",
    "LookupStep",
    "RetrievalPlan",
    "ScanStep",
    "SetOpPlan",
    "Optimizer",
    "explain_plan",
]
