"""The cost-based planner of the decomposed engine.

For every FROM binding the optimizer chooses an access path:

* **scan** — paginated enumeration, with eligible predicate conjuncts
  pushed into the prompt (cuts fetched rows) and projection pruning
  (cuts tokens per row);
* **lookup** — batched key lookups driven by an already-materialized
  binding, eligible when an equi-join covers the target's primary key
  (turns an O(table) fetch into an O(join keys) fetch).

When the storage tier (:mod:`repro.storage`) is active, the optimizer
additionally consults fragment coverage: a scan fully covered by a
complete materialized fragment is routed to storage (zero estimated
model cost, order/limit pushdown skipped — the fragment plus exact
local compute beats a narrower model scan), and point lookups whose
keys are partially materialized are re-priced to their residual fetch.
Coverage decisions are recorded in the plan's ``notes`` so EXPLAIN
shows expected fragment hits.

Single-table ORDER BY ... LIMIT queries additionally get a model-side
order + early-termination hint.  Uncorrelated subqueries are planned
recursively and resolved before the outer retrieval runs.  All choices
are priced by :class:`~repro.plan.cost.CostModel` and recorded in the
plan's ``notes`` for EXPLAIN.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.config import EngineConfig
from repro.errors import PlanError
from repro.plan import rules
from repro.plan.cost import CostEstimate, CostModel, TableStats
from repro.plan.logical import DerivedAccess, TableAccess, analyze_query
from repro.plan.physical import (
    MERGEABLE_AGGREGATES,
    AggregateItem,
    DerivedStep,
    JudgeStep,
    LocalStep,
    LookupStep,
    PartialAggregateSpec,
    PlanNode,
    RetrievalPlan,
    ScanStep,
    SetOpPlan,
    ShardSpec,
    ShardedScanStep,
    Step,
    SubplanBinding,
)
from repro.relational.catalog import Catalog, TableKind
from repro.sql import ast
from repro.sql.binder import Binder, BoundQuery
from repro.sql.printer import print_expression
from repro.storage.normalize import predicate_fingerprint

if TYPE_CHECKING:
    from repro.storage.tier import StorageTier


class Optimizer:
    """Compiles bound statements into retrieval plans."""

    def __init__(
        self,
        catalog: Catalog,
        stats: Dict[str, TableStats],
        config: EngineConfig,
        storage: Optional["StorageTier"] = None,
        storage_scope: Tuple = (),
        stats_catalog=None,
    ):
        self._catalog = catalog
        self._config = config
        self._cost = CostModel(stats, config, catalog=stats_catalog)
        self._binder = Binder(catalog)
        self._storage = storage
        self._storage_scope = storage_scope
        self._stats_catalog = stats_catalog

    def _is_materialized(self, table_name: str) -> bool:
        """Materialized tables are satisfied locally (hybrid queries)."""
        return self._catalog.entry(table_name).kind is TableKind.MATERIALIZED

    @property
    def default_guess_tables(self) -> set:
        """Tables this optimizer priced off DEFAULT_ROW_COUNT."""
        return self._cost.default_guess_tables

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def plan(self, bound: BoundQuery) -> PlanNode:
        """Plan a bound statement (query or set operation)."""
        statement = bound.query
        if isinstance(statement, ast.SetOperation):
            return self._plan_set_operation(statement, bound)
        assert isinstance(statement, ast.Query)
        return self._plan_query(statement)

    def _plan_set_operation(
        self, setop: ast.SetOperation, bound: BoundQuery
    ) -> SetOpPlan:
        if isinstance(setop.left, ast.SetOperation):
            left_bound = self._binder.bind(setop.left)
            left: PlanNode = self._plan_set_operation(setop.left, left_bound)
        else:
            left = self._plan_query(setop.left)
        right = self._plan_query(setop.right)
        return SetOpPlan(
            op=setop.op,
            all=setop.all,
            left=left,
            right=right,
            order_by=list(setop.order_by),
            limit=setop.limit,
            offset=setop.offset,
            output_names=list(bound.output_names),
        )

    # ------------------------------------------------------------------
    # Single queries
    # ------------------------------------------------------------------

    def _plan_query(
        self, statement: ast.Query, stream_quota: Optional[int] = None
    ) -> RetrievalPlan:
        bound = self._binder.bind(statement)
        assert isinstance(bound.query, ast.Query)
        statement = bound.query

        subplans = self._plan_subqueries(statement)
        structure = analyze_query(statement, bound.tables)
        plan = RetrievalPlan(
            statement=statement,
            subplans=subplans,
            output_names=list(bound.output_names),
        )
        if not structure.elements:
            return plan  # constant query: nothing to retrieve

        where_conjuncts = rules.split_conjuncts(statement.where)
        pushed, judged = self._assign_predicates(structure, where_conjuncts)

        # Remove judged conjuncts from the local statement (the model's
        # verdicts are authoritative for them).
        if any(judged.values()):
            removed = {id(c) for conjuncts in judged.values() for c in conjuncts}
            remaining = [c for c in where_conjuncts if id(c) not in removed]
            statement = _replace_where(statement, rules.conjoin(remaining))
            plan.statement = statement

        needed = rules.needed_columns(statement, structure.bindings)

        est_rows: Dict[str, float] = {}
        for index, element in enumerate(structure.elements):
            access = element.access
            if isinstance(access, DerivedAccess):
                nested = self._plan_query(access.query)
                step: Step = DerivedStep(binding=access.binding, plan=nested)
                nested_rows = sum(
                    s.est_rows
                    for s in nested.steps
                    if isinstance(s, (ScanStep, ShardedScanStep))
                )
                est_rows[access.binding.lower()] = max(1.0, nested_rows)
                plan.steps.append(step)
                continue
            assert isinstance(access, TableAccess)
            if self._is_materialized(access.table_name):
                step = LocalStep(
                    binding=access.binding,
                    table_name=access.table_name,
                    schema=access.schema,
                    est_rows=float(self._cost.row_count(access.table_name)),
                )
                est_rows[access.binding.lower()] = step.est_rows
                plan.steps.append(step)
                continue
            step = self._plan_access(
                element_index=index,
                access=access,
                element=element,
                structure=structure,
                pushed=pushed.get(access.binding.lower(), []),
                needed=needed,
                est_rows=est_rows,
                plan=plan,
            )
            plan.steps.append(step)

        self._add_judge_steps(plan, structure, judged, needed)
        self._maybe_push_limit(plan, structure, statement, where_conjuncts, pushed)
        # Streaming before sharding: a quota-annotated scan stays a
        # single chain (early exit fetches a few pages; a shard fan-out
        # would eagerly fetch every chain in the first group).
        self._maybe_stream_early_exit(plan, statement, stream_quota)
        self._maybe_shard_scans(plan)
        return plan

    # ------------------------------------------------------------------
    # Subqueries
    # ------------------------------------------------------------------

    def _plan_subqueries(self, statement: ast.Query) -> List[SubplanBinding]:
        subplans: List[SubplanBinding] = []
        for node in rules.find_subqueries(statement):
            query = getattr(node, "query")
            if rules.is_correlated(query):
                raise PlanError(
                    "correlated subqueries are not supported by the decomposed "
                    "engine (the materialized baseline supports them)"
                )
            # EXISTS (negated or not) needs exactly one witness row:
            # plan the nested query with a streaming quota of 1, so an
            # eligible nested scan/lookup stops at the first hit
            # instead of materializing the whole table.
            quota = 1 if isinstance(node, ast.Exists) else None
            subplans.append(
                SubplanBinding(
                    node=node, plan=self._plan_query(query, stream_quota=quota)
                )
            )
        return subplans

    # ------------------------------------------------------------------
    # Predicate assignment
    # ------------------------------------------------------------------

    def _assign_predicates(
        self, structure, where_conjuncts: List[ast.Expr]
    ) -> Tuple[Dict[str, List[ast.Expr]], Dict[str, List[ast.Expr]]]:
        """Split WHERE/ON conjuncts into shippable and judged sets.

        The first dict holds every *eligible* (single-binding,
        prompt-safe) conjunct per binding regardless of the pushdown
        flag; access-path selection decides whether to ship them in a
        scan CONDITION and/or exploit pk-equalities as point lookups.
        Judged conjuncts are only collected when pushdown is off and the
        judge extension is on.
        """
        eligible: Dict[str, List[ast.Expr]] = {}
        judged: Dict[str, List[ast.Expr]] = {}
        bindings = {b.lower() for b in structure.bindings}
        scannable = {
            element.access.binding.lower()
            for element in structure.elements
            if isinstance(element.access, TableAccess)
            and not self._is_materialized(element.access.table_name)
        }

        def classify(conjunct: ast.Expr) -> None:
            binding = rules.single_binding(conjunct)
            if binding is None or binding not in bindings or binding not in scannable:
                return
            if not rules.is_prompt_safe(conjunct):
                return
            if not self._config.enable_pushdown and self._config.enable_judge:
                judged.setdefault(binding, []).append(conjunct)
            elif self._config.enable_pushdown or self._config.enable_lookup_join:
                eligible.setdefault(binding, []).append(conjunct)

        for conjunct in where_conjuncts:
            classify(conjunct)

        # ON-clause conjuncts that mention only the right side of their
        # join filter that side's input in both inner and left joins.
        for element in structure.elements:
            if element.condition is None:
                continue
            own = element.access.binding.lower()
            for conjunct in rules.split_conjuncts(element.condition):
                if rules.single_binding(conjunct) == own and rules.is_prompt_safe(
                    conjunct
                ):
                    if self._config.enable_pushdown and own in scannable:
                        eligible.setdefault(own, []).append(conjunct)
        return eligible, judged

    # ------------------------------------------------------------------
    # Access-path selection
    # ------------------------------------------------------------------

    def _plan_access(
        self,
        element_index: int,
        access: TableAccess,
        element,
        structure,
        pushed: List[ast.Expr],
        needed: Dict[str, set],
        est_rows: Dict[str, float],
        plan: RetrievalPlan,
    ) -> Step:
        binding_key = access.binding.lower()
        columns = self._columns_for(access, needed.get(binding_key, set()))
        table_rows = float(self._cost.row_count(access.table_name))
        self._note_table_stats(plan, access.table_name)

        pushdown_expr = rules.conjoin(pushed) if self._config.enable_pushdown else None
        selectivity = self._cost.selectivity(pushdown_expr, access.schema)
        fingerprint: Optional[str] = None
        if pushdown_expr is not None:
            fingerprint = predicate_fingerprint(access.binding, pushed)
            if self._stats_catalog is not None:
                observed = self._stats_catalog.observed_selectivity(
                    access.table_name, fingerprint
                )
                if observed is not None:
                    selectivity = observed
                    plan.notes.append(
                        f"stats[selectivity]: {access.table_name} "
                        f"observed sel={observed:.3f}"
                    )
        scan_rows = max(1.0, table_rows * selectivity)
        scan_step = ScanStep(
            binding=access.binding,
            table_name=access.table_name,
            schema=access.schema,
            columns=columns,
            pushdown_sql=(
                rules.render_pushdown(pushdown_expr) if pushdown_expr is not None else None
            ),
            pushed_conjuncts=list(pushed) if pushdown_expr is not None else [],
            est_rows=scan_rows,
            estimate=self._cost.scan_cost(access.table_name, scan_rows, len(columns)),
            predicate_fingerprint=fingerprint,
            est_selectivity=selectivity if pushdown_expr is not None else 1.0,
        )

        # Point lookups are preferred whenever predicates pin the primary
        # key: addressing rows directly is the canonical access path of
        # an LLM-as-storage engine (it is also what voting, batching and
        # cross-query caching are built around), and its cost is within a
        # constant factor of the equivalent filtered scan.
        point_step = self._point_lookup_candidate(access, pushed, columns)
        if point_step is not None:
            est_rows[binding_key] = point_step.est_keys
            plan.notes.append(
                f"point-lookup[{access.binding}]: "
                f"{len(point_step.literal_keys)} key(s)"
            )
            self._note_lookup_coverage(plan, access.binding, point_step)
            return point_step

        if self._storage is not None:
            covering = self._storage.peek_scan_fragment(
                self._storage_scope,
                access.table_name,
                scan_step.pushdown_sql,
                scan_step.columns,
            )
            if covering is not None:
                # Route to materialized data: the fragment serves this
                # scan without model traffic, so nothing can beat it.
                # Pin it so eviction/expiry between plan and execution
                # cannot strand the routed plan without its data.
                scan_step.fragment_covered = True
                scan_step.pinned_fragment = covering
                scan_step.estimate = CostEstimate()
                est_rows[binding_key] = scan_rows
                plan.notes.append(
                    f"fragment[{access.binding}]: scan served from storage "
                    f"({len(covering.rows)} materialized row(s))"
                )
                return scan_step

        lookup_step = self._lookup_candidate(
            element_index, access, element, columns, est_rows, needed
        )
        if lookup_step is not None and lookup_step.estimate.total_tokens < (
            scan_step.estimate.total_tokens
        ):
            est_rows[binding_key] = lookup_step.est_keys
            plan.notes.append(
                f"lookup-join[{access.binding}]: keys from "
                f"{lookup_step.source_binding}({', '.join(lookup_step.source_columns)})"
            )
            return lookup_step

        if pushdown_expr is not None:
            plan.notes.append(
                f"pushdown[{access.binding}]: {scan_step.pushdown_sql}"
            )
        est_rows[binding_key] = scan_rows
        return scan_step

    def _note_table_stats(self, plan: RetrievalPlan, table_name: str) -> None:
        """Surface where this table's cardinality came from.

        ``stats[default-guess]`` marks a table priced off the blind
        :data:`~repro.plan.cost.DEFAULT_ROW_COUNT` constant — the
        engine also warns once per table, so misestimates are
        diagnosable.  ``stats[observed]`` marks an adaptive plan using
        a catalog observation instead of the static hint.
        """
        key = table_name.lower()
        if key in self._cost.observed_tables:
            note = (
                f"stats[observed]: {key} "
                f"rows={self._cost.observed_tables[key]}"
            )
            if note not in plan.notes:
                plan.notes.append(note)
        elif key in self._cost.default_guess_tables:
            note = f"stats[default-guess]: {key}"
            if note not in plan.notes:
                plan.notes.append(note)

    def _note_lookup_coverage(
        self, plan: RetrievalPlan, binding: str, step: LookupStep
    ) -> None:
        """Re-price a literal-key lookup against the cell store."""
        if self._storage is None or not step.literal_keys:
            return
        from repro.core.operators import normalize_key

        normalized = [normalize_key(tuple(key)) for key in step.literal_keys]
        covered = self._storage.peek_lookup_coverage(
            self._storage_scope, step.table_name, normalized, step.attributes
        )
        if covered == 0:
            return
        missing = len(step.literal_keys) - covered
        step.estimate = (
            self._cost.lookup_cost(float(missing), max(1, len(step.attributes)))
            if missing
            else CostEstimate()
        )
        plan.notes.append(
            f"fragment[{binding}]: {covered}/{len(step.literal_keys)} "
            f"lookup key(s) materialized"
        )

    #: Point lookups expand pk-IN lists up to this many keys.
    _MAX_POINT_KEYS = 64

    def _point_lookup_candidate(
        self,
        access: TableAccess,
        eligible: List[ast.Expr],
        columns: Tuple[str, ...],
    ) -> Optional[LookupStep]:
        """A batched lookup with literal keys, when predicates pin the pk.

        Eligible when the conjuncts contain ``pk = literal`` (or
        ``pk IN (literals)``) for every primary-key column.  This is the
        canonical "LLM as storage" point query: one prompt addressing
        the row(s) directly instead of enumerating the table.
        """
        if not self._config.enable_lookup_join:
            return None
        primary_key = access.schema.primary_key
        if not primary_key:
            return None
        candidates: Dict[str, List] = {}
        for conjunct in eligible:
            if (
                isinstance(conjunct, ast.BinaryOp)
                and conjunct.op == "="
            ):
                column, literal = _column_literal(conjunct)
                if column is not None:
                    candidates.setdefault(column.lower(), []).append([literal])
            elif (
                isinstance(conjunct, ast.InList)
                and not conjunct.negated
                and isinstance(conjunct.operand, ast.ColumnRef)
                and all(isinstance(item, ast.Literal) for item in conjunct.items)
            ):
                candidates.setdefault(conjunct.operand.name.lower(), []).append(
                    [item.value for item in conjunct.items]
                )
        per_column: List[List] = []
        for key_column in primary_key:
            options = candidates.get(key_column.lower())
            if not options:
                return None
            # Multiple predicates on the same key column: intersect.
            values = options[0]
            for other in options[1:]:
                values = [value for value in values if value in other]
            per_column.append(values)

        import itertools

        keys = [tuple(combo) for combo in itertools.product(*per_column)]
        if not keys or len(keys) > self._MAX_POINT_KEYS:
            return None
        attributes = tuple(
            name
            for name in columns
            if name.lower() not in {k.lower() for k in primary_key}
        )
        if not attributes:
            # The lookup protocol needs at least one attribute; fetch a
            # cheap witness column to confirm the entity exists.
            witness = next(
                (
                    column.name
                    for column in access.schema.columns
                    if column.name.lower() not in {k.lower() for k in primary_key}
                ),
                None,
            )
            if witness is None:
                return None
            attributes = (witness,)
        return LookupStep(
            binding=access.binding,
            table_name=access.table_name,
            schema=access.schema,
            key_columns=tuple(primary_key),
            attributes=attributes,
            literal_keys=keys,
            est_keys=float(len(keys)),
            estimate=self._cost.lookup_cost(
                float(len(keys)), max(1, len(attributes))
            ),
        )

    def _columns_for(self, access: TableAccess, wanted: set) -> Tuple[str, ...]:
        """Needed columns in schema order; primary key as fallback."""
        ordered = [
            column.name
            for column in access.schema.columns
            if column.name.lower() in wanted
        ]
        if not ordered:
            ordered = list(access.schema.primary_key) or [
                access.schema.columns[0].name
            ]
        return tuple(ordered)

    def _lookup_candidate(
        self,
        element_index: int,
        access: TableAccess,
        element,
        columns: Tuple[str, ...],
        est_rows: Dict[str, float],
        needed: Dict[str, set],
    ) -> Optional[LookupStep]:
        if not self._config.enable_lookup_join:
            return None
        if element_index == 0 or element.join_kind not in ("inner", "left"):
            return None
        primary_key = access.schema.primary_key
        if not primary_key:
            return None
        pairs = rules.equi_pairs(element.condition)
        own = access.binding.lower()
        # Map each of our key columns to a (source binding, source column).
        mapping: Dict[str, Tuple[str, str]] = {}
        for left, right in pairs:
            if left.table.lower() == own:
                mapping[left.name.lower()] = (right.table.lower(), right.name)
            elif right.table.lower() == own:
                mapping[right.name.lower()] = (left.table.lower(), left.name)
        key_sources = []
        for key_column in primary_key:
            source = mapping.get(key_column.lower())
            if source is None:
                return None
            key_sources.append(source)
        source_bindings = {binding for binding, _ in key_sources}
        if len(source_bindings) != 1:
            return None
        source_binding = next(iter(source_bindings))
        if source_binding not in est_rows:
            return None  # source not materialized before us
        attributes = tuple(
            name for name in columns if name.lower() not in {k.lower() for k in primary_key}
        )
        est_keys = min(
            est_rows[source_binding], float(self._cost.row_count(access.table_name))
        )
        return LookupStep(
            binding=access.binding,
            table_name=access.table_name,
            schema=access.schema,
            key_columns=tuple(primary_key),
            attributes=attributes,
            source_binding=source_binding,
            source_columns=tuple(column for _, column in key_sources),
            est_keys=max(1.0, est_keys),
            estimate=self._cost.lookup_cost(
                max(1.0, est_keys), max(1, len(attributes))
            ),
        )

    # ------------------------------------------------------------------
    # Judge steps
    # ------------------------------------------------------------------

    def _add_judge_steps(
        self,
        plan: RetrievalPlan,
        structure,
        judged: Dict[str, List[ast.Expr]],
        needed: Dict[str, set],
    ) -> None:
        if not judged:
            return
        steps_by_binding = {
            step.binding.lower(): step
            for step in plan.steps
            if isinstance(step, (ScanStep, LookupStep))
        }
        for binding, conjuncts in judged.items():
            step = steps_by_binding.get(binding)
            if step is None or not conjuncts:
                continue
            schema = step.schema
            if not schema.primary_key:
                continue
            # The judge probes primary keys, so the base fetch must
            # include them.
            if isinstance(step, ScanStep):
                missing = [
                    key
                    for key in schema.primary_key
                    if key.lower() not in {c.lower() for c in step.columns}
                ]
                if missing:
                    step.columns = tuple(list(step.columns) + missing)
            condition = rules.conjoin(conjuncts)
            assert condition is not None
            est_keys = step.est_rows if isinstance(step, ScanStep) else step.est_keys
            plan.steps.append(
                JudgeStep(
                    binding=step.binding,
                    table_name=step.table_name,
                    schema=schema,
                    key_columns=tuple(schema.primary_key),
                    condition_sql=rules.render_pushdown(condition),
                    judged_conjuncts=list(conjuncts),
                    est_keys=est_keys,
                    estimate=self._cost.judge_cost(max(1.0, est_keys)),
                )
            )
            plan.notes.append(
                f"judge[{step.binding}]: {rules.render_pushdown(condition)}"
            )

    # ------------------------------------------------------------------
    # Streaming early exit (limit pushdown into the row stream)
    # ------------------------------------------------------------------

    def _maybe_stream_early_exit(
        self,
        plan: RetrievalPlan,
        statement: ast.Query,
        quota: Optional[int] = None,
    ) -> None:
        """Install a ``stop_after_rows`` quota on eligible plans.

        Covers the LIMIT shapes :meth:`_maybe_push_limit` must decline:
        when any WHERE conjunct runs locally, a model-side limit hint
        would be unsound — but the *executor* can still stop early by
        streaming pages and counting post-filter output rows.  An
        explicit ``quota`` (EXISTS probes pass 1) overrides the
        statement's LIMIT.

        Eligibility is prefix-stability: a single retrieval step and no
        aggregation, grouping, HAVING, or local ORDER BY — every input
        row then maps to at most one output row independently of later
        rows, so the first N output rows of the streamed prefix are the
        first N output rows of the full fetch (DISTINCT keeps first
        occurrences and stays prefix-stable).
        """
        if not self._config.enable_streaming:
            return
        if quota is None:
            if statement.limit is None:
                return
            quota = statement.limit
        elif statement.limit is not None:
            # An EXISTS probe over a LIMIT-ed subquery cannot need more
            # witnesses than the limit admits (LIMIT 0 kills streaming).
            quota = min(quota, statement.limit)
        # OFFSET rows are fetched and then discarded locally, so the
        # stream must produce them before the quota's own rows.
        quota += statement.offset or 0
        if quota < 1:
            return  # LIMIT 0: the empty result needs no pages at all
        if len(plan.steps) != 1:
            return
        if statement.group_by or statement.having is not None or statement.order_by:
            return
        if any(ast.contains_aggregate(item.expr) for item in statement.select):
            return
        step = plan.steps[0]
        if isinstance(step, ScanStep):
            if step.fragment_covered or step.limit_hint is not None:
                # Storage serves it for free / the model-side limit
                # already terminates the chain early.
                return
            step.stop_after_rows = quota
            pushed_here = {id(c) for c in step.pushed_conjuncts}
            residual_conjuncts = [
                c
                for c in rules.split_conjuncts(statement.where)
                if id(c) not in pushed_here
            ]
            residual = rules.conjoin(residual_conjuncts)
            residual_sel = self._cost.selectivity(residual, step.schema)
            if residual_conjuncts:
                binding = rules.single_binding(residual_conjuncts[0])
                # Fingerprint only single-binding residuals (the common
                # streamed shape: one FROM element); a multi-binding
                # residual cannot happen here since streaming requires
                # a single step.
                step.residual_fingerprint = predicate_fingerprint(
                    binding or step.binding, residual_conjuncts
                )
                if self._stats_catalog is not None:
                    observed = self._stats_catalog.observed_selectivity(
                        step.table_name, step.residual_fingerprint
                    )
                    if observed is not None:
                        residual_sel = observed
                        plan.notes.append(
                            f"stats[selectivity]: {step.table_name} "
                            f"observed residual sel={observed:.3f}"
                        )
            step.est_residual_sel = residual_sel
            step.estimate = self._cost.streamed_scan_cost(
                step.table_name,
                step.est_rows,
                len(step.columns),
                quota,
                residual_sel,
            )
        elif isinstance(step, LookupStep) and step.literal_keys:
            batch = max(1, self._config.lookup_batch_size)
            if len(step.literal_keys) <= batch:
                return  # a single batch cannot exit any earlier
            step.stop_after_rows = quota
            step.estimate = self._cost.lookup_cost(
                float(min(len(step.literal_keys), max(1, quota) * batch)),
                max(1, len(step.attributes)),
            )
        else:
            return
        plan.notes.append(
            f"stream[{step.binding}]: early-exit rows<={quota}"
        )

    # ------------------------------------------------------------------
    # Sharded scans + partial-aggregate pushdown
    # ------------------------------------------------------------------

    def _maybe_shard_scans(self, plan: RetrievalPlan) -> None:
        """Partition large scans into independent key-range shards.

        Each shard owns a contiguous slice of the enumeration cursor;
        the executor fans the chains out through the dispatcher and
        concatenates their rows in shard order, so results stay
        byte-identical to the single chain.  Scans already routed to a
        materialized fragment, narrowed by an order/limit hint, or
        carrying a streaming quota keep their single chain (the
        fragment is free; an early-terminating ordered chain would only
        fetch ``limit_hint`` rows anyway; a quota'd stream fetches a
        few pages where a shard fan-out would eagerly fetch every
        chain in its first group).
        """
        if self._config.scan_shards <= 1:
            return
        for index, step in enumerate(plan.steps):
            if not isinstance(step, ScanStep):
                continue
            if (
                step.fragment_covered
                or step.limit_hint is not None
                or step.order is not None
                or step.stop_after_rows is not None
            ):
                continue
            shard_count = min(
                self._config.scan_shards,
                max(1, int(step.est_rows) // self._config.shard_min_rows),
            )
            if shard_count <= 1:
                continue
            per_shard = -(-int(step.est_rows) // shard_count)
            shards = [
                ShardSpec(
                    index=i,
                    start=i * per_shard,
                    row_target=per_shard if i < shard_count - 1 else None,
                )
                for i in range(shard_count)
            ]
            plan.steps[index] = ShardedScanStep(
                scan=step,
                shards=shards,
                estimate=self._cost.sharded_scan_cost(
                    step.table_name,
                    step.est_rows,
                    len(step.columns),
                    shard_count,
                ),
            )
            plan.notes.append(
                f"sharded-scan[{step.binding}]: {shard_count} shard(s) "
                f"x ~{per_shard} row(s)"
            )
        self._maybe_push_partial_aggregates(plan)

    def _maybe_push_partial_aggregates(self, plan: RetrievalPlan) -> None:
        """Reduce an aggregate-only sharded scan to partial states.

        Eligible when the whole query is one sharded scan whose select
        list is group-by columns plus mergeable aggregates
        (COUNT/SUM/MIN/MAX/AVG over a bare column or ``*``): each shard
        then reduces its rows to per-group partials merged with
        algebraic combiners, and the local statement is rewritten to
        project the pre-aggregated columns — no chain (and no local
        materialization step) ever holds the whole table.
        """
        statement = plan.statement
        if len(plan.steps) != 1 or not isinstance(plan.steps[0], ShardedScanStep):
            return
        step = plan.steps[0]
        if plan.subplans or statement.distinct or statement.having is not None:
            return
        if not statement.group_by and not any(
            ast.contains_aggregate(item.expr) for item in statement.select
        ):
            return  # plain row query: sharding alone is enough
        scan = step.scan
        binding = scan.binding
        scan_columns = {name.lower() for name in scan.columns}

        def own_column(ref: ast.Expr) -> Optional[str]:
            """Schema-cased name of a bare scan-column reference."""
            if not isinstance(ref, ast.ColumnRef):
                return None
            if ref.table is not None and ref.table.lower() != binding.lower():
                return None
            if ref.name.lower() not in scan_columns:
                return None
            return scan.schema.column(ref.name).name

        group_columns: List[str] = []
        for expr in statement.group_by:
            name = own_column(expr)
            if name is None:
                return
            group_columns.append(name)
        group_set = {name.lower() for name in group_columns}
        if len(group_set) != len(group_columns):
            return  # duplicate group keys: positional mapping is ambiguous

        items: Dict[str, AggregateItem] = {}

        def register(call: ast.Expr) -> Optional[AggregateItem]:
            """The merged-output item for an aggregate call, or None."""
            if not isinstance(call, ast.FunctionCall) or not ast.is_aggregate_call(
                call
            ):
                return None
            printed = print_expression(call)
            if printed in items:
                return items[printed]
            func = call.name.upper()
            if func not in MERGEABLE_AGGREGATES or call.distinct:
                return None
            if len(call.args) != 1:
                return None
            arg = call.args[0]
            if isinstance(arg, ast.Star):
                column = None
                if func != "COUNT":
                    return None
            else:
                column = own_column(arg)
                if column is None:
                    return None
            item = AggregateItem(
                func=func,
                column=column,
                output=f"__pagg{len(items)}",
                printed=printed,
            )
            items[printed] = item
            return item

        new_select: List[ast.SelectItem] = []
        for sel in statement.select:
            expr = sel.expr
            name = own_column(expr)
            if name is not None:
                if name.lower() not in group_set:
                    return  # bare non-grouped column: needs a representative row
                new_select.append(sel)
                continue
            item = register(expr)
            if item is None:
                return
            new_select.append(
                ast.SelectItem(
                    expr=ast.ColumnRef(name=item.output),
                    alias=sel.alias or item.printed,
                )
            )

        output_names = {name.lower() for name in plan.output_names}
        new_order: List[ast.OrderItem] = []
        for order_item in statement.order_by:
            expr = order_item.expr
            if isinstance(expr, ast.Literal):
                new_order.append(order_item)  # positional / constant key
                continue
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name.lower() in output_names
            ):
                new_order.append(order_item)  # resolves against output rows
                continue
            name = own_column(expr)
            if name is not None:
                if name.lower() not in group_set:
                    return
                new_order.append(order_item)
                continue
            item = register(expr)
            if item is None:
                return
            new_order.append(
                ast.OrderItem(
                    expr=ast.ColumnRef(name=item.output),
                    descending=order_item.descending,
                    nulls_last=order_item.nulls_last,
                )
            )

        step.aggregate = PartialAggregateSpec(
            binding=binding,
            group_columns=tuple(group_columns),
            items=tuple(items.values()),
            residual_filter=statement.where,
        )
        plan.statement = ast.Query(
            select=new_select,
            from_clause=statement.from_clause,
            where=None,
            group_by=[],
            having=None,
            order_by=new_order,
            limit=statement.limit,
            offset=statement.offset,
            distinct=False,
        )
        described = ", ".join(item.printed for item in items.values()) or "group keys"
        group_text = (
            f" by ({', '.join(group_columns)})" if group_columns else ""
        )
        plan.notes.append(f"partial-agg[{binding}]: {described}{group_text}")

    # ------------------------------------------------------------------
    # ORDER BY ... LIMIT pushdown
    # ------------------------------------------------------------------

    def _maybe_push_limit(
        self,
        plan: RetrievalPlan,
        structure,
        statement: ast.Query,
        where_conjuncts: List[ast.Expr],
        pushed: Dict[str, List[ast.Expr]],
    ) -> None:
        if not self._config.enable_order_pushdown:
            return
        if statement.limit is None:
            return
        if len(plan.steps) != 1 or not isinstance(plan.steps[0], ScanStep):
            return
        if statement.group_by or statement.having or statement.distinct:
            return
        if any(ast.contains_aggregate(item.expr) for item in statement.select):
            return
        if plan.subplans:
            return
        scan = plan.steps[0]
        if scan.fragment_covered:
            # The fragment serves the full scan for free; narrowing it
            # with a model-side order/limit would only force new calls.
            return
        pushed_here = {id(c) for c in scan.pushed_conjuncts}
        if any(id(c) not in pushed_here for c in where_conjuncts):
            return  # a local filter would make the limit hint unsound
        order: Optional[Tuple[str, bool]] = None
        if statement.order_by:
            if len(statement.order_by) != 1:
                return
            item = statement.order_by[0]
            expr = item.expr
            if isinstance(expr, ast.ColumnRef):
                name = expr.name
                if expr.table is not None and expr.table.lower() != scan.binding.lower():
                    return
                if not scan.schema.has_column(name):
                    return
                order = (scan.schema.column(name).name, item.descending)
            else:
                return
        rows_needed = statement.limit + (statement.offset or 0)
        scan.limit_hint = rows_needed
        scan.order = order
        scan.est_rows = min(scan.est_rows, float(rows_needed))
        scan.estimate = self._cost.scan_cost(
            scan.table_name, scan.est_rows, len(scan.columns), limit_hint=rows_needed
        )
        if order is not None:
            note_order = f"{order[0]} {'DESC' if order[1] else 'ASC'}"
            plan.notes.append(
                f"order+limit pushdown[{scan.binding}]: {note_order} limit {rows_needed}"
            )
        else:
            plan.notes.append(
                f"limit pushdown[{scan.binding}]: limit {rows_needed}"
            )

        # Ordering column must be fetched for the local re-sort.
        if order is not None and order[0].lower() not in {
            c.lower() for c in scan.columns
        }:
            scan.columns = tuple(list(scan.columns) + [order[0]])


def _column_literal(conjunct: ast.BinaryOp):
    """Decompose ``column = literal`` (either side); (None, None) otherwise."""
    if isinstance(conjunct.left, ast.ColumnRef) and isinstance(
        conjunct.right, ast.Literal
    ):
        return conjunct.left.name, conjunct.right.value
    if isinstance(conjunct.right, ast.ColumnRef) and isinstance(
        conjunct.left, ast.Literal
    ):
        return conjunct.right.name, conjunct.left.value
    return None, None


def _replace_where(statement: ast.Query, where: Optional[ast.Expr]) -> ast.Query:
    return ast.Query(
        select=statement.select,
        from_clause=statement.from_clause,
        where=where,
        group_by=statement.group_by,
        having=statement.having,
        order_by=statement.order_by,
        limit=statement.limit,
        offset=statement.offset,
        distinct=statement.distinct,
    )
