"""Executes retrieval plans: model retrieval, then local compute.

For a :class:`~repro.plan.physical.RetrievalPlan` the executor

1. resolves uncorrelated subqueries by running their nested plans and
   splicing the results into the statement (IN-lists / scalars),
2. runs the retrieval steps in order, materializing one local table per
   FROM binding (lookup steps draw their keys from tables materialized
   earlier; judge steps filter them),
3. rewrites the statement's FROM clause to point at the local tables and
   hands the whole statement to the reference executor.

Step 3 is where the decomposition pays off: joins, grouping, arithmetic,
ordering — everything a model is bad at — run in exact local compute;
the model only ever answered small retrieval prompts.

When the engine's ``max_in_flight`` allows it, independent retrieval
steps (e.g. the two sides of a locally-joined pair of scans) run
concurrently: steps are grouped into dependency waves — a lookup waits
for its key source, a judge for its base fetch — and each wave executes
on orchestration threads whose model traffic shares the bounded
dispatcher pool.  Wave results are applied to the binding map in
original step order, so materialization, statement rewriting, and
therefore query results are byte-identical to sequential execution.

Single-step plans carrying a ``stop_after_rows`` quota skip the
materialize-everything path entirely: the step is consumed as a
:class:`~repro.core.streams.RowStream` and closed as soon as exact
local compute over the fetched prefix yields the quota of output rows
(LIMIT over a residual local filter, EXISTS probes).  Because eligible
statements are prefix-stable, the streamed result is byte-identical to
the materialized one — fewer pages are fetched, nothing else changes.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Tuple

from repro.core.operators import ModelClient, build_local_table, normalize_key
from repro.core.streams import RowQuota, take_until
from repro.errors import ExecutionError, PlanError
from repro.plan.physical import (
    DerivedStep,
    JudgeStep,
    LocalStep,
    LookupStep,
    PlanNode,
    RetrievalPlan,
    ScanStep,
    SetOpPlan,
    ShardSpec,
    ShardedScanStep,
)
from repro.core.virtual import VirtualTable
from repro.relational.catalog import Catalog
from repro.relational.executor import ReferenceExecutor, _dedupe, _row_marker
from repro.relational.table import Table
from repro.runtime.parallel import run_parallel
from repro.sql import ast


class PlanExecutor:
    """Runs plans produced by :class:`~repro.plan.optimizer.Optimizer`."""

    def __init__(
        self,
        client: ModelClient,
        virtual_tables: Dict[str, VirtualTable],
        materialized_tables: Optional[Dict[str, Table]] = None,
    ):
        self._client = client
        self._virtuals = {name.lower(): vt for name, vt in virtual_tables.items()}
        self._materialized = {
            name.lower(): table
            for name, table in (materialized_tables or {}).items()
        }
        # itertools.count is atomic under the GIL; derived steps may
        # request temp names from concurrent orchestration threads.
        self._temp_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(self, plan: PlanNode) -> Table:
        if isinstance(plan, SetOpPlan):
            return self._execute_set_operation(plan)
        return self._execute_retrieval(plan)

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------

    def _execute_set_operation(self, plan: SetOpPlan) -> Table:
        tracer = self._client.tracer
        with tracer.span("branch", side="left"):
            left = self.execute(plan.left)
        with tracer.span("branch", side="right"):
            right = self.execute(plan.right)
        if len(left.schema.columns) != len(right.schema.columns):
            raise ExecutionError(
                f"{plan.op.upper()} sides returned different column counts"
            )
        if plan.op == "union":
            rows = list(left.rows) + list(right.rows)
            if not plan.all:
                rows = _dedupe(rows)
        elif plan.op == "intersect":
            markers = {_row_marker(row) for row in right.rows}
            rows = _dedupe([row for row in left.rows if _row_marker(row) in markers])
        elif plan.op == "except":
            markers = {_row_marker(row) for row in right.rows}
            rows = _dedupe(
                [row for row in left.rows if _row_marker(row) not in markers]
            )
        else:
            raise ExecutionError(f"unknown set operation {plan.op!r}")

        combined = Table(left.schema, rows)
        if not plan.order_by and plan.limit is None and plan.offset is None:
            return combined
        # Delegate ordering/limiting to the reference executor.
        catalog = Catalog()
        temp_name = self._fresh_name("setop")
        renamed = _rename_table(combined, temp_name)
        catalog.register_table(renamed)
        statement = ast.Query(
            select=[ast.SelectItem(expr=ast.Star())],
            from_clause=ast.NamedTable(name=temp_name),
            order_by=list(plan.order_by),
            limit=plan.limit,
            offset=plan.offset,
        )
        return ReferenceExecutor(catalog).execute(statement)

    # ------------------------------------------------------------------
    # Single queries
    # ------------------------------------------------------------------

    def _execute_retrieval(self, plan: RetrievalPlan) -> Table:
        tracer = self._client.tracer
        statement = plan.statement
        if plan.subplans:
            replacements: Dict[int, ast.Expr] = {}
            for subplan in plan.subplans:
                with tracer.span("subquery"):
                    replacements[id(subplan.node)] = self._resolve_subquery(
                        subplan
                    )
            statement = _rewrite_statement_exprs(statement, replacements)

        streamed = self._streamed_result(plan, statement)
        if streamed is not None:
            return streamed

        catalog = Catalog()
        temp_names: Dict[str, str] = {}
        local_tables: Dict[str, Table] = {}
        step_index = {id(step): i for i, step in enumerate(plan.steps)}

        if self._client.max_in_flight > 1 and len(plan.steps) > 1:
            # Orchestration threads have no ambient span stack; capture
            # the current parent and re-bind it per thunk so step spans
            # land under the right node regardless of thread timing.
            parent = tracer.current_parent()
            for wave in _step_waves(plan.steps):
                thunks = [
                    (lambda s=step: self._run_step_scoped(
                        s, local_tables, step_index[id(s)], parent
                    ))
                    for step in wave
                ]
                outcomes = run_parallel(self._client.ledger, thunks)
                for step, (table, warnings) in zip(wave, outcomes):
                    # Re-emit in step order so QueryResult.warnings never
                    # depends on thread timing.
                    self._client.emit_warnings(warnings)
                    local_tables[step.binding.lower()] = table
        else:
            for step in plan.steps:
                with tracer.span(
                    "step", **_step_tags(step, step_index[id(step)])
                ) as span:
                    table = self._table_for_step(step, local_tables)
                    span.set_tag("rows", len(table))
                    self._annotate_selectivity(span, step, table)
                local_tables[step.binding.lower()] = table

        # Register in first-write step order so temp numbering (and the
        # rewritten statement) is identical across concurrency levels.
        ordered: Dict[str, Table] = {}
        for step in plan.steps:
            binding = step.binding.lower()
            if binding not in ordered:
                ordered[binding] = local_tables[binding]
        for binding, table in ordered.items():
            temp_name = self._fresh_name(binding)
            temp_names[binding] = temp_name
            catalog.register_table(_rename_table(table, temp_name))

        rewritten = _rewrite_from_clause(statement, temp_names)
        return ReferenceExecutor(catalog).execute(rewritten)

    # ------------------------------------------------------------------
    # Streaming early exit
    # ------------------------------------------------------------------

    def _streamed_result(
        self, plan: RetrievalPlan, statement: ast.Query
    ) -> Optional[Table]:
        """Consume a quota-annotated single-step plan as a row stream.

        The optimizer marks eligible steps with ``stop_after_rows``
        (LIMIT whose filter must run locally, EXISTS probes).  Pages
        are pulled until exact local compute over the fetched prefix
        already yields the quota of output rows; the final statement
        then runs over that prefix exactly as the materialized path
        would run it over the full fetch.  Eligible statements are
        prefix-stable (no aggregation/grouping/ordering), so the
        result is byte-identical — only pages fetched changes.
        """
        if len(plan.steps) != 1:
            return None
        step = plan.steps[0]
        quota_rows = getattr(step, "stop_after_rows", None)
        if quota_rows is None:
            return None
        if not (
            isinstance(step, ScanStep)
            or (isinstance(step, LookupStep) and step.literal_keys is not None)
        ):
            return None
        # One step span covers open-through-drain, so the storage probe
        # and every fetched page land under it in the trace.
        with self._client.tracer.span(
            "step", streamed=True, **_step_tags(step, 0)
        ) as step_span:
            return self._consume_streamed(plan, statement, step, step_span)

    def _consume_streamed(
        self, plan: RetrievalPlan, statement: ast.Query, step, step_span
    ) -> Table:
        quota_rows = step.stop_after_rows
        if isinstance(step, ScanStep):
            columns = tuple(step.columns)
            stream = self._client.open_scan_stream(
                step, self._virtual_for(step.table_name)
            )
        else:
            columns = tuple(step.key_columns) + tuple(step.attributes)
            stream = self._client.open_lookup_stream(
                step,
                self._keys_from_source(step, {}),
                self._virtual_for(step.table_name),
            )

        binding = step.binding.lower()
        probe_statement = _rewrite_from_clause(
            ast.Query(
                select=statement.select,
                from_clause=statement.from_clause,
                where=statement.where,
                group_by=[],
                having=None,
                order_by=[],
                limit=None,
                offset=None,
                distinct=statement.distinct,
            ),
            {binding: "__stream_probe"},
        )

        def probe_count(rows: List[List]) -> int:
            table = build_local_table(binding, step.schema, columns, rows)
            catalog = Catalog()
            catalog.register_table(_rename_table(table, "__stream_probe"))
            return len(ReferenceExecutor(catalog).execute(probe_statement))

        if statement.distinct:
            # DISTINCT dedupes on raw output rows the probe cannot see
            # page-by-page (per-page type inference could miscount), so
            # it re-probes the whole prefix — exact, monotone, and
            # bounded by the quota's early exit in the common case.
            output_count = probe_count
        else:
            # Prefix-stability makes the count a per-row sum: evaluate
            # only each *new* page instead of the whole prefix, keeping
            # local probe work linear in rows fetched.
            state = {"count": 0, "consumed": 0}

            def output_count(rows: List[List]) -> int:
                new_rows = rows[state["consumed"] :]
                state["consumed"] = len(rows)
                if new_rows:
                    state["count"] += probe_count(new_rows)
                return state["count"]

        config = self._client.config
        if (
            isinstance(step, ScanStep)
            and config.enable_adaptive
            and step.order is None
            and not step.fragment_covered
        ):
            rows = self._take_adaptive(
                step, stream, quota_rows, output_count, step_span
            )
        else:
            rows = take_until(stream, RowQuota(quota_rows, output_count))
        step_span.set_tag("rows", len(rows))
        table = build_local_table(binding, step.schema, columns, rows)
        catalog = Catalog()
        temp_name = self._fresh_name(binding)
        catalog.register_table(_rename_table(table, temp_name))
        rewritten = _rewrite_from_clause(statement, {binding: temp_name})
        return ReferenceExecutor(catalog).execute(rewritten)

    def _take_adaptive(
        self,
        step: ScanStep,
        stream,
        quota_rows: int,
        output_count,
        step_span,
    ) -> List[List]:
        """Streamed consumption with mid-query re-planning.

        Phase 1 consumes the scan serially exactly like the static
        path, but watches the observed residual selectivity (output
        rows per fetched row).  If, after at least two pages, the
        estimate exceeds observation by ``replan_threshold``, the
        stream is closed (the prefix persists as a resumable fragment)
        and the *remaining* work is re-planned: phase 2 fans the
        continuation of the enumeration cursor out as page-aligned
        bounded shards sized from the selectivity actually observed.
        Shard prompts are byte-identical to the serial continuation's,
        and the already-fetched prefix is kept, so the final rows are
        byte-identical to the static plan — only wall-clock (and, when
        the estimate overshot the other way, page count) changes.
        """
        client = self._client
        config = client.config
        page_size = max(1, config.page_size)
        threshold = config.replan_threshold
        est_sel = max(step.est_residual_sel, 1e-6)

        rows: List[List] = []
        produced = 0
        # Snapshot before close(): closing marks the stream finished, so
        # ``stream.exhausted`` afterwards can no longer distinguish "the
        # enumeration ended" from "we stopped consuming".
        exhausted = False
        try:
            for page in stream:
                rows.extend(page)
                produced = output_count(rows)
                if produced >= quota_rows:
                    break
                consumed = len(rows)
                if (
                    stream.pages_yielded >= 2
                    and consumed % page_size == 0
                    and not stream.exhausted
                ):
                    actual = max(float(produced), 0.5) / consumed
                    if est_sel / actual >= threshold:
                        break  # diverged: re-plan the remaining work
            exhausted = stream.exhausted
        finally:
            stream.close()

        virtual = self._virtual_for(step.table_name)
        cursor = len(rows)
        rounds = 0
        total_shards = 0
        while produced < quota_rows and not exhausted and rounds < 16:
            need = quota_rows - produced
            act_sel = max(float(produced), 0.5) / max(cursor, 1)
            est_in = max(page_size, math.ceil(need / act_sel))
            pages_more = -(-est_in // page_size)
            shard_count = max(1, min(client.max_in_flight, pages_more))
            per_shard_rows = -(-pages_more // shard_count) * page_size
            shards = [
                ShardSpec(
                    index=i,
                    start=cursor + i * per_shard_rows,
                    row_target=per_shard_rows,
                )
                for i in range(shard_count)
            ]
            outcomes = client.run_replan_shards(step, shards, virtual)
            rounds += 1
            total_shards += shard_count
            new_rows = [row for outcome in outcomes for row in outcome.rows]
            rows.extend(new_rows)
            cursor += len(new_rows)
            produced = output_count(rows)
            if any(len(o.rows) < per_shard_rows for o in outcomes):
                exhausted = True  # the enumeration ended inside a shard
            if any(not o.storable for o in outcomes):
                break  # truncation/guard: degrade to what we have

        if rounds > 0:
            client.store_replan_fragment(
                step, rows, -(-len(rows) // page_size), complete=exhausted
            )
            step_span.set_tag(
                "replanned", f"{rounds} round(s), {total_shards} shard(s)"
            )
        step_span.set_tag("sel_est", round(step.est_residual_sel, 4))
        if rows:
            step_span.set_tag("sel_act", round(produced / len(rows), 4))
        catalog = client.stats_catalog
        if catalog is not None and step.residual_fingerprint is not None and rows:
            catalog.record_selectivity(
                step.table_name, step.residual_fingerprint, len(rows), produced
            )
        return rows

    # ------------------------------------------------------------------
    # Step helpers
    # ------------------------------------------------------------------

    def _run_step_scoped(
        self,
        step,
        local_tables: Dict[str, Table],
        step_index: int = 0,
        trace_parent: Optional[int] = None,
    ):
        """One step on an orchestration thread, with warnings captured."""
        tracer = self._client.tracer
        with tracer.bind(trace_parent):
            with tracer.span("step", **_step_tags(step, step_index)) as span:
                with self._client.warning_scope() as captured:
                    table = self._table_for_step(step, local_tables)
                span.set_tag("rows", len(table))
                self._annotate_selectivity(span, step, table)
        return table, captured

    def _annotate_selectivity(self, span, step, table: Table) -> None:
        """Tag a scan step span with estimated vs observed selectivity.

        The observed fraction is the step's output rows over the
        table's cardinality as the statistics catalog knows it — only
        available once a full enumeration has taught the catalog the
        denominator, so EXPLAIN ANALYZE shows ``act=?`` until then.
        """
        scan = step.scan if isinstance(step, ShardedScanStep) else step
        if not isinstance(scan, ScanStep):
            return
        span.set_tag("sel_est", round(scan.est_selectivity, 4))
        catalog = self._client.stats_catalog
        if catalog is not None:
            known = catalog.observed_rows(scan.table_name)
            if known:
                span.set_tag("sel_act", round(len(table) / known, 4))

    def _table_for_step(self, step, local_tables: Dict[str, Table]) -> Table:
        """Materialize one step against the current binding map.

        Pure with respect to ``local_tables`` (reads only): judge steps
        return the filtered replacement table instead of mutating, so
        steps of one dependency wave can run concurrently.
        """
        if isinstance(step, ScanStep):
            return self._client.run_scan(step, self._virtual_for(step.table_name))
        if isinstance(step, ShardedScanStep):
            return self._client.run_sharded_scan(
                step, self._virtual_for(step.table_name)
            )
        if isinstance(step, LookupStep):
            keys = self._keys_from_source(step, local_tables)
            return self._client.run_lookup(
                step, keys, self._virtual_for(step.table_name)
            )
        if isinstance(step, JudgeStep):
            return self._judged_table(step, local_tables)
        if isinstance(step, DerivedStep):
            return self.execute(step.plan)
        if isinstance(step, LocalStep):
            stored = self._materialized.get(step.table_name.lower())
            if stored is None:
                raise PlanError(
                    f"no materialized table registered as {step.table_name!r}"
                )
            return stored
        # pragma: no cover - exhaustive over step kinds
        raise PlanError(f"unknown step kind {type(step).__name__}")

    def _virtual_for(self, table_name: str) -> VirtualTable:
        virtual = self._virtuals.get(table_name.lower())
        if virtual is None:
            raise PlanError(f"no virtual table registered as {table_name!r}")
        return virtual

    def _keys_from_source(
        self, step: LookupStep, local_tables: Dict[str, Table]
    ) -> List[Tuple]:
        if step.literal_keys is not None:
            seen = set()
            keys = []
            for key in step.literal_keys:
                marker = normalize_key(tuple(key))
                if marker not in seen:
                    seen.add(marker)
                    keys.append(tuple(key))
            return keys
        source = local_tables.get(step.source_binding.lower())
        if source is None:
            raise PlanError(
                f"lookup step for {step.binding!r} runs before its source "
                f"{step.source_binding!r}"
            )
        indices = [source.schema.column_index(name) for name in step.source_columns]
        seen = set()
        keys: List[Tuple] = []
        for row in source.rows:
            key = tuple(row[i] for i in indices)
            if any(value is None for value in key):
                continue  # NULL never equi-joins
            marker = normalize_key(key)
            if marker in seen:
                continue
            seen.add(marker)
            keys.append(key)
        return keys

    def _judged_table(self, step: JudgeStep, local_tables: Dict[str, Table]) -> Table:
        table = local_tables.get(step.binding.lower())
        if table is None:
            raise PlanError(
                f"judge step for {step.binding!r} runs before its base fetch"
            )
        indices = [table.schema.column_index(name) for name in step.key_columns]
        keys: List[Tuple] = []
        seen = set()
        for row in table.rows:
            key = tuple(row[i] for i in indices)
            marker = normalize_key(key)
            if marker not in seen:
                seen.add(marker)
                keys.append(key)
        verdicts = self._client.run_judge(step, keys)
        kept = [
            row
            for row in table.rows
            if verdicts.get(normalize_key(tuple(row[i] for i in indices))) is True
        ]
        return Table(table.schema, kept)

    def _resolve_subquery(self, subplan) -> ast.Expr:
        result = self.execute(subplan.plan)
        node = subplan.node
        if isinstance(node, ast.InSubquery):
            if len(result.schema.columns) != 1:
                raise ExecutionError("IN subquery must return exactly one column")
            items = [ast.Literal(value=row[0]) for row in result.rows]
            return ast.InList(
                operand=node.operand, items=items, negated=node.negated
            )
        if isinstance(node, ast.Exists):
            found = len(result) > 0
            return ast.Literal(value=(not found) if node.negated else found)
        if isinstance(node, ast.ScalarSubquery):
            if len(result.schema.columns) != 1:
                raise ExecutionError("scalar subquery must return exactly one column")
            if len(result) > 1:
                raise ExecutionError("scalar subquery returned more than one row")
            value = result.rows[0][0] if len(result) == 1 else None
            return ast.Literal(value=value)
        raise PlanError(f"unexpected subquery node {type(node).__name__}")

    def _fresh_name(self, hint: str) -> str:
        number = next(self._temp_counter)
        safe_hint = "".join(ch if ch.isalnum() else "_" for ch in hint)
        return f"__v{number}_{safe_hint}"


# ---------------------------------------------------------------------------
# Step scheduling
# ---------------------------------------------------------------------------


def _step_tags(step, index: int) -> Dict[str, object]:
    """Stable trace tags identifying a plan step within its plan."""
    tags: Dict[str, object] = {
        "step": index,
        "step_kind": step.kind,
        "binding": step.binding,
    }
    table_name = getattr(step, "table_name", None)
    if table_name is not None:
        tags["table"] = table_name
    return tags


def _step_waves(steps) -> List[List]:
    """Group steps into dependency waves for concurrent execution.

    A step's wave is one past the latest wave that *writes* a binding it
    reads: a lookup reads its key source, a judge reads (and rewrites)
    its own binding.  Everything else is independent.  Within a wave the
    original step order is preserved, and a wave only starts after the
    previous wave's tables are applied, so a reader always sees exactly
    the tables the sequential executor would have shown it.
    """
    last_writer_wave: Dict[str, int] = {}
    waves: List[List] = []
    for step in steps:
        reads: List[str] = []
        if isinstance(step, LookupStep) and step.literal_keys is None:
            reads.append(step.source_binding.lower())
        if isinstance(step, JudgeStep):
            reads.append(step.binding.lower())
        wave_index = 0
        for binding in reads:
            if binding in last_writer_wave:
                wave_index = max(wave_index, last_writer_wave[binding] + 1)
        while len(waves) <= wave_index:
            waves.append([])
        waves[wave_index].append(step)
        last_writer_wave[step.binding.lower()] = wave_index
    return waves


# ---------------------------------------------------------------------------
# Statement rewriting
# ---------------------------------------------------------------------------


def _rename_table(table: Table, new_name: str) -> Table:
    from repro.relational.schema import TableSchema

    schema = TableSchema(
        name=new_name,
        columns=table.schema.columns,
        primary_key=table.schema.primary_key,
        description=table.schema.description,
    )
    return Table(schema, table.rows)


def _rewrite_from_clause(
    statement: ast.Query, temp_names: Dict[str, str]
) -> ast.Query:
    def rewrite(ref: Optional[ast.TableRef]) -> Optional[ast.TableRef]:
        if ref is None:
            return None
        if isinstance(ref, ast.NamedTable):
            temp = temp_names.get(ref.binding_name.lower())
            if temp is None:
                raise PlanError(
                    f"no retrieved table for binding {ref.binding_name!r}"
                )
            return ast.NamedTable(name=temp, alias=ref.binding_name)
        if isinstance(ref, ast.SubqueryTable):
            temp = temp_names.get(ref.alias.lower())
            if temp is None:
                raise PlanError(f"no retrieved table for derived {ref.alias!r}")
            return ast.NamedTable(name=temp, alias=ref.alias)
        if isinstance(ref, ast.Join):
            return ast.Join(
                left=rewrite(ref.left),
                right=rewrite(ref.right),
                kind=ref.kind,
                condition=ref.condition,
            )
        raise PlanError(f"cannot rewrite {type(ref).__name__}")

    return ast.Query(
        select=statement.select,
        from_clause=rewrite(statement.from_clause),
        where=statement.where,
        group_by=statement.group_by,
        having=statement.having,
        order_by=statement.order_by,
        limit=statement.limit,
        offset=statement.offset,
        distinct=statement.distinct,
    )


def _rewrite_statement_exprs(
    statement: ast.Query, replacements: Dict[int, ast.Expr]
) -> ast.Query:
    """Replace subquery nodes (matched by identity) throughout a statement."""

    def rewrite(expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
        if expr is None:
            return None
        if id(expr) in replacements:
            return replacements[id(expr)]
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(op=expr.op, left=rewrite(expr.left), right=rewrite(expr.right))
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(op=expr.op, operand=rewrite(expr.operand))
        if isinstance(expr, ast.FunctionCall):
            return ast.FunctionCall(
                name=expr.name,
                args=[rewrite(arg) for arg in expr.args],
                distinct=expr.distinct,
            )
        if isinstance(expr, ast.Cast):
            return ast.Cast(operand=rewrite(expr.operand), type_name=expr.type_name)
        if isinstance(expr, ast.Between):
            return ast.Between(
                operand=rewrite(expr.operand),
                low=rewrite(expr.low),
                high=rewrite(expr.high),
                negated=expr.negated,
            )
        if isinstance(expr, ast.InList):
            return ast.InList(
                operand=rewrite(expr.operand),
                items=[rewrite(item) for item in expr.items],
                negated=expr.negated,
            )
        if isinstance(expr, ast.InSubquery):
            return ast.InSubquery(
                operand=rewrite(expr.operand), query=expr.query, negated=expr.negated
            )
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(operand=rewrite(expr.operand), negated=expr.negated)
        if isinstance(expr, ast.Like):
            return ast.Like(
                operand=rewrite(expr.operand),
                pattern=rewrite(expr.pattern),
                negated=expr.negated,
            )
        if isinstance(expr, ast.CaseWhen):
            return ast.CaseWhen(
                operand=rewrite(expr.operand) if expr.operand is not None else None,
                branches=[
                    (rewrite(condition), rewrite(result))
                    for condition, result in expr.branches
                ],
                else_result=(
                    rewrite(expr.else_result) if expr.else_result is not None else None
                ),
            )
        return expr

    return ast.Query(
        select=[
            ast.SelectItem(expr=rewrite(item.expr), alias=item.alias)
            for item in statement.select
        ],
        from_clause=statement.from_clause,
        where=rewrite(statement.where),
        group_by=[rewrite(expr) for expr in statement.group_by],
        having=rewrite(statement.having),
        order_by=[
            ast.OrderItem(
                expr=rewrite(item.expr),
                descending=item.descending,
                nulls_last=item.nulls_last,
            )
            for item in statement.order_by
        ],
        limit=statement.limit,
        offset=statement.offset,
        distinct=statement.distinct,
    )
