"""The paper's contribution: a SQL engine whose storage is a language model.

:class:`~repro.core.engine.LLMStorageEngine` accepts standard SQL over
*virtual tables* (schemas registered up front, rows never stored),
compiles each query into a retrieval plan of targeted model prompts plus
local relational compute, and returns rows with full cost accounting.

Supporting machinery: self-consistency voting
(:mod:`repro.core.consistency`), retrieved-value validation
(:mod:`repro.core.validation`), the model client that speaks the prompt
protocols (:mod:`repro.core.operators`), and the plan executor
(:mod:`repro.core.executor`).
"""

from repro.core.engine import LLMStorageEngine
from repro.core.results import QueryResult
from repro.core.virtual import ColumnConstraint, VirtualTable
from repro.config import EngineConfig

__all__ = [
    "LLMStorageEngine",
    "QueryResult",
    "ColumnConstraint",
    "VirtualTable",
    "EngineConfig",
]
