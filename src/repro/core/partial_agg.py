"""Mergeable partial aggregation for sharded scans.

Each shard of a :class:`~repro.plan.physical.ShardedScanStep` reduces
its rows to per-group *partial states*; the executor merges the states
across shards with algebraic combiners, in ascending shard order, and
only then finalizes values.  The states mirror the reference
accumulators in :mod:`repro.relational.aggregates` exactly — NULL
skipping, ``COUNT(*)`` vs ``COUNT(col)``, integer-preserving SUM, AVG
as float-sum + count — so the merged result matches what the reference
executor would compute over the concatenated rows.

Exactness: COUNT/MIN/MAX merges are exact, and SUM/AVG merges are
exact whenever the per-shard sums are exact (integers, and floats
whose partial sums carry no rounding, e.g. dyadic fractions).  The
combiner folds shard partials left-to-right — the same order a single
chain would have seen the rows — so only float re-association can
introduce a last-ulp difference.

Grouping mirrors the reference executor: group keys are the
type-tagged numerically-normalized form of the group-column values,
groups surface in first-seen order across the shard-ordered row
stream, and each group's *representative* values (what a grouped
select emits for its group columns) come from the first row seen.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.plan.physical import (
    MERGEABLE_AGGREGATES,
    AggregateItem,
    PartialAggregateSpec,
)
from repro.relational.aggregates import compare_values
from repro.relational.executor import hashable_value
from repro.relational.expressions import Evaluator, RowScope, is_true
from repro.relational.types import Value


class PartialState:
    """Base: feed with :meth:`add`, combine with :meth:`merge`."""

    def add(self, value: Value) -> None:
        raise NotImplementedError

    def merge(self, other: "PartialState") -> None:
        raise NotImplementedError

    def result(self) -> Value:
        raise NotImplementedError


class CountStarState(PartialState):
    """COUNT(*): counts rows including NULLs."""

    def __init__(self):
        self.n = 0

    def add(self, value: Value) -> None:
        self.n += 1

    def merge(self, other: "CountStarState") -> None:
        self.n += other.n

    def result(self) -> Value:
        return self.n


class CountState(PartialState):
    """COUNT(expr): counts non-NULL inputs."""

    def __init__(self):
        self.n = 0

    def add(self, value: Value) -> None:
        if value is not None:
            self.n += 1

    def merge(self, other: "CountState") -> None:
        self.n += other.n

    def result(self) -> Value:
        return self.n


class SumState(PartialState):
    """SUM(expr): integer sums stay int, any float input promotes."""

    def __init__(self):
        self.total: Optional[float] = None
        self.all_int = True

    def add(self, value: Value) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"SUM expects numbers, got {value!r}")
        if isinstance(value, float):
            self.all_int = False
        self.total = value if self.total is None else self.total + value

    def merge(self, other: "SumState") -> None:
        if other.total is None:
            return
        if not other.all_int:
            self.all_int = False
        self.total = other.total if self.total is None else self.total + other.total

    def result(self) -> Value:
        if self.total is None:
            return None
        return int(self.total) if self.all_int else float(self.total)


class AvgState(PartialState):
    """AVG(expr) via sum + count: always returns REAL."""

    def __init__(self):
        self.total = 0.0
        self.count = 0

    def add(self, value: Value) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"AVG expects numbers, got {value!r}")
        self.total += float(value)
        self.count += 1

    def merge(self, other: "AvgState") -> None:
        self.total += other.total
        self.count += other.count

    def result(self) -> Value:
        if self.count == 0:
            return None
        return self.total / self.count


class MinState(PartialState):
    """MIN(expr): keeps the least non-NULL value seen."""

    def __init__(self):
        self.best: Value = None

    def add(self, value: Value) -> None:
        if value is None:
            return
        if self.best is None or compare_values(value, self.best) < 0:
            self.best = value

    def merge(self, other: "MinState") -> None:
        self.add(other.best)

    def result(self) -> Value:
        return self.best


class MaxState(PartialState):
    """MAX(expr): keeps the greatest non-NULL value seen."""

    def __init__(self):
        self.best: Value = None

    def add(self, value: Value) -> None:
        if value is None:
            return
        if self.best is None or compare_values(value, self.best) > 0:
            self.best = value

    def merge(self, other: "MaxState") -> None:
        self.add(other.best)

    def result(self) -> Value:
        return self.best


_STATE_FACTORIES = {
    "COUNT": CountState,
    "SUM": SumState,
    "AVG": AvgState,
    "MIN": MinState,
    "MAX": MaxState,
}

assert frozenset(_STATE_FACTORIES) == MERGEABLE_AGGREGATES


def new_state(item: AggregateItem) -> PartialState:
    """A fresh partial state for one aggregate item."""
    if item.column is None:
        return CountStarState()
    return _STATE_FACTORIES[item.func]()


class GroupPartial:
    """Per-group partial: representative values + one state per item."""

    __slots__ = ("representative", "states")

    def __init__(self, representative: Tuple[Value, ...], states: List[PartialState]):
        self.representative = representative
        self.states = states

    def merge(self, other: "GroupPartial") -> None:
        for state, other_state in zip(self.states, other.states):
            state.merge(other_state)


#: Groups in first-seen order (dicts preserve insertion order).
Partials = Dict[Tuple, GroupPartial]


def reduce_rows(
    spec: PartialAggregateSpec,
    columns: Sequence[str],
    rows: Sequence[Sequence[Value]],
) -> Partials:
    """Reduce one shard's rows to per-group partial states.

    ``columns`` are the shard table's column names (the scan's fetched
    columns, schema-cased); the residual WHERE is evaluated per row
    under the step's binding before accumulation — exactly where the
    reference executor applies it.
    """
    position = {name.lower(): i for i, name in enumerate(columns)}
    group_positions = [position[name.lower()] for name in spec.group_columns]
    item_positions = [
        position[item.column.lower()] if item.column is not None else None
        for item in spec.items
    ]
    evaluator = Evaluator() if spec.residual_filter is not None else None

    partials: Partials = {}
    for row in rows:
        if evaluator is not None:
            scope = RowScope(
                {spec.binding: {name: row[i] for name, i in position.items()}}
            )
            if not is_true(evaluator.evaluate(spec.residual_filter, scope)):
                continue
        key = tuple(hashable_value(row[i]) for i in group_positions)
        group = partials.get(key)
        if group is None:
            group = GroupPartial(
                representative=tuple(row[i] for i in group_positions),
                states=[new_state(item) for item in spec.items],
            )
            partials[key] = group
        for state, item_position in zip(group.states, item_positions):
            state.add(1 if item_position is None else row[item_position])
    return partials


def merge_partials(
    spec: PartialAggregateSpec, shard_partials: Sequence[Partials]
) -> List[Tuple[Value, ...]]:
    """Merge per-shard partials in shard order; finalize group rows.

    Group output order is first-seen order over the shard-ordered row
    stream — the order a single chain would have produced.  Aggregates
    over an empty, ungrouped input yield exactly one row (COUNT 0,
    everything else NULL), mirroring the reference executor.
    """
    merged: Partials = {}
    for partials in shard_partials:
        for key, group in partials.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = group
            else:
                existing.merge(group)
    if not merged and not spec.group_columns:
        merged[()] = GroupPartial(
            representative=(), states=[new_state(item) for item in spec.items]
        )
    return [
        group.representative + tuple(state.result() for state in group.states)
        for group in merged.values()
    ]
