"""LLM-backed physical operators.

``ModelClient`` is the runtime client that turns plan steps into model
traffic, routed through the concurrent scheduler in
:mod:`repro.runtime.dispatcher`:

* :meth:`run_scan` — paginated enumeration with truncation recovery, a
  runaway guard, and speculative page prefetch;
* :meth:`run_lookup` — batched lookups with optional self-consistency
  voting; all ``batches × votes`` calls dispatch as one concurrent wave;
* :meth:`run_judge` — batched predicate judgements with voting, fanned
  out the same way.

All calls flow through one wrapped model (cache, then meter), so cost
accounting and caching behave identically across operators — and
identically across concurrency levels: ``max_in_flight`` changes the
reported wall-clock only, never answers, tokens, or call counts.
Refused or unusable completions are retried with a bumped sample index
(beliefs are unchanged at temperature 0; the retry nonce only re-rolls
the refusal) under the reusable :class:`~repro.runtime.retry.RetryPolicy`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config import EngineConfig
from repro.core import consistency
from repro.core.validation import Validator
from repro.core.virtual import VirtualTable
from repro.errors import ExecutionError, LLMProtocolError
from repro.llm.accounting import MeteredModel, UsageMeter
from repro.llm.cache import CachingModel, PromptCache
from repro.llm.interface import Completion, CompletionOptions, LanguageModel
from repro.plan.physical import JudgeStep, LookupStep, ScanStep
from repro.prompts import parsing
from repro.prompts.enumerate import EnumerateRequest, build_enumerate_prompt
from repro.prompts.lookup import LookupRequest, build_lookup_prompt
from repro.prompts.predicate import JudgeRequest, build_judge_prompt
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import Value
from repro.runtime.dispatcher import CompletionRequest, Dispatcher
from repro.runtime.latency import LatencyLedger
from repro.runtime.prefetch import ScanPrefetcher
from repro.runtime.retry import RETRY_NONCE, RetryPolicy

#: Kept as a module name for back-compat; the policy owns the value now.
_RETRY_NONCE = RETRY_NONCE


class ModelClient:
    """Executes retrieval steps against a language model."""

    def __init__(
        self,
        model: LanguageModel,
        meter: UsageMeter,
        config: EngineConfig,
        cache: Optional[PromptCache] = None,
        validator: Optional[Validator] = None,
    ):
        self._raw_model = model
        self._cache: Optional[PromptCache] = None
        inner: LanguageModel = model
        if config.enable_cache:
            caching = CachingModel(inner, cache)
            self._cache = caching.cache
            inner = caching
        # The dispatcher commits wave makespans to the wall clock, so
        # the metered stack must not also track wall time per call.
        self._model = MeteredModel(inner, meter, track_wall=False)
        self._config = config
        self._validator = validator or Validator(enabled=config.enable_validation)
        self._ledger = LatencyLedger(on_commit=meter.add_wall_ms)
        self._retry = RetryPolicy.from_config(config)
        self._dispatcher = Dispatcher(
            model=self._model,
            options_for=self._options,
            retry=self._retry,
            max_in_flight=config.max_in_flight,
            ledger=self._ledger,
            raw_model=model,
            cache=self._cache,
            meter=meter,
        )
        self.warnings: List[str] = []
        self._warning_local = threading.local()

    @property
    def validator(self) -> Validator:
        return self._validator

    @property
    def dispatcher(self) -> Dispatcher:
        return self._dispatcher

    @property
    def ledger(self) -> LatencyLedger:
        return self._ledger

    @property
    def max_in_flight(self) -> int:
        return self._dispatcher.max_in_flight

    def close(self) -> None:
        """Release the dispatcher's worker pool."""
        self._dispatcher.close()

    # ------------------------------------------------------------------
    # Warnings
    # ------------------------------------------------------------------

    def _warn(self, message: str) -> None:
        """Record a warning in the calling thread's scope.

        Inside a :meth:`warning_scope` (a concurrently-executing plan
        step) warnings buffer locally; the executor re-emits them in
        step order, so ``QueryResult.warnings`` ordering never depends
        on thread timing.
        """
        buffer = getattr(self._warning_local, "buffer", None)
        if buffer is not None:
            buffer.append(message)
        else:
            self.warnings.append(message)

    @contextmanager
    def warning_scope(self):
        """Capture this thread's warnings instead of publishing them."""
        previous = getattr(self._warning_local, "buffer", None)
        captured: List[str] = []
        self._warning_local.buffer = captured
        try:
            yield captured
        finally:
            self._warning_local.buffer = previous

    def emit_warnings(self, messages: Sequence[str]) -> None:
        """Publish captured warnings into the current scope, in order."""
        for message in messages:
            self._warn(message)

    # ------------------------------------------------------------------
    # Low-level call with retry
    # ------------------------------------------------------------------

    def _options(self, sample_index: int) -> CompletionOptions:
        return CompletionOptions(
            temperature=self._effective_temperature(),
            max_tokens=self._config.max_output_tokens,
            sample_index=sample_index,
        )

    def _effective_temperature(self) -> float:
        if self._config.votes > 1:
            # Voting needs independent samples; greedy samples are identical.
            return max(self._config.temperature, 0.7)
        return self._config.temperature

    def _complete_with_retry(self, prompt: str, sample_index: int, parse):
        """Call the model, parse; retry on refusal/unusable output."""
        return self._dispatcher.run_one(
            CompletionRequest(prompt=prompt, sample_index=sample_index, parse=parse)
        )

    # ------------------------------------------------------------------
    # Scan
    # ------------------------------------------------------------------

    def run_scan(self, step: ScanStep, virtual: VirtualTable) -> Table:
        """Materialize a scan step as a local table."""
        dtypes = [step.schema.column(name).dtype for name in step.columns]
        rows: List[List[Value]] = []
        pages_fetched = 0
        est_pages = max(1, -(-int(step.est_rows) // self._config.page_size))
        max_pages = est_pages * self._config.scan_guard_factor + 4
        target = step.limit_hint
        page_size = self._config.page_size

        def prompt_for(after_index: int) -> str:
            return build_enumerate_prompt(
                EnumerateRequest(
                    schema=step.schema,
                    columns=step.columns,
                    condition_sql=step.pushdown_sql,
                    order=step.order,
                    after_index=after_index,
                    max_rows=page_size,
                )
            )

        def parse_page(completion: Completion):
            return parse_enumerate(completion, dtypes)

        prefetch_window = 0
        if self._config.max_in_flight > 1 and self._config.scan_prefetch_pages > 0:
            prefetch_window = min(
                self._config.scan_prefetch_pages, self._config.max_in_flight - 1
            )
        prefetcher = ScanPrefetcher(self._dispatcher) if prefetch_window else None

        while True:
            after_index = len(rows)
            prompt = prompt_for(after_index)
            if prefetcher is not None:
                # Guess the next pages parse cleanly and start them now,
                # overlapping the page we are about to read.
                guesses = [
                    prompt_for(after_index + offset * page_size)
                    for offset in range(1, prefetch_window + 1)
                    if pages_fetched + offset < max_pages
                    and (target is None or after_index + offset * page_size < target)
                ]
                prefetcher.prime(guesses)
            page = self._fetch_page(prompt, parse_page, prefetcher)
            if page.malformed_lines:
                self._warn(
                    f"scan {step.table_name}: {page.malformed_lines} malformed "
                    f"line(s) skipped"
                )
            got_rows = len(page.rows) > 0
            rows.extend(page.rows)
            pages_fetched += 1
            if target is not None and len(rows) >= target:
                break
            if page.complete and not page.has_more:
                break
            if not page.complete and not got_rows:
                # Truncated before any row: the page size does not fit the
                # output budget; give up rather than loop.
                self._warn(
                    f"scan {step.table_name}: page truncated before any row"
                )
                break
            if pages_fetched >= max_pages:
                self._warn(
                    f"scan {step.table_name}: aborted after {pages_fetched} pages "
                    f"(guard limit)"
                )
                break

        if prefetcher is not None:
            prefetcher.discard()
        if target is not None:
            rows = rows[:target]
        validated = [
            self._validator.validate_row(row, virtual, step.columns) for row in rows
        ]
        return build_local_table(step.binding, step.schema, step.columns, validated)

    def _fetch_page(self, prompt: str, parse, prefetcher: Optional[ScanPrefetcher]):
        """One page, preferring an exact-match speculative completion."""
        if prefetcher is not None:
            speculation = prefetcher.take(prompt)
            if speculation is not None:
                completion, owed_ms = self._dispatcher.consume_speculation(
                    speculation
                )
                self._ledger.add(owed_ms)
                try:
                    return parse(completion)
                except LLMProtocolError as exc:
                    if self._retry.max_attempts <= 1:
                        raise ExecutionError(
                            f"model output unusable after "
                            f"{self._retry.max_attempts} attempts: {exc}"
                        )
                    # The speculative call was attempt 0; hand the rest of
                    # the retry budget to the dispatcher.
                    return self._dispatcher.run_one(
                        CompletionRequest(
                            prompt=prompt,
                            sample_index=0,
                            parse=parse,
                            first_attempt=1,
                            prior_error=exc,
                        )
                    )
        return self._dispatcher.run_one(
            CompletionRequest(prompt=prompt, sample_index=0, parse=parse)
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def run_lookup(
        self,
        step: LookupStep,
        keys: Sequence[Tuple[Value, ...]],
        virtual: VirtualTable,
    ) -> Table:
        """Materialize a lookup step: one row per found key."""
        attr_dtypes = [step.schema.column(name).dtype for name in step.attributes]
        columns = tuple(step.key_columns) + tuple(step.attributes)
        out_rows: List[List[Value]] = []
        batch_size = max(1, self._config.lookup_batch_size)
        votes = max(1, self._config.votes)

        batches: List[List[Tuple[Value, ...]]] = [
            list(keys[start : start + batch_size])
            for start in range(0, len(keys), batch_size)
        ]

        def make_parse(batch_len: int):
            def parse_answer(completion: Completion):
                if parsing.looks_like_refusal(completion.text):
                    raise LLMProtocolError("refused lookup")
                return parsing.parse_lookup_completion(
                    completion.text, batch_len, attr_dtypes
                )

            return parse_answer

        # Every batch and every vote sample is independent: dispatch the
        # whole step as one wave so they overlap up to max_in_flight.
        requests: List[CompletionRequest] = []
        for batch in batches:
            prompt = build_lookup_prompt(
                LookupRequest(
                    schema=step.schema,
                    key_columns=tuple(step.key_columns),
                    attributes=tuple(step.attributes),
                    entities=tuple(batch),
                )
            )
            parse_answer = make_parse(len(batch))
            for vote in range(votes):
                requests.append(
                    CompletionRequest(
                        prompt=prompt, sample_index=vote, parse=parse_answer
                    )
                )
        answers = self._dispatcher.run_wave(requests)

        for batch_number, batch in enumerate(batches):
            sampled = answers[batch_number * votes : (batch_number + 1) * votes]
            merged = consistency.vote_rows(sampled) if votes > 1 else sampled[0]
            for key, answer in zip(batch, merged):
                if answer is None:
                    continue  # model does not know this entity
                validated = self._validator.validate_row(
                    answer, virtual, step.attributes
                )
                out_rows.append(list(key) + validated)
        return build_local_table(step.binding, step.schema, columns, out_rows)

    # ------------------------------------------------------------------
    # Judge
    # ------------------------------------------------------------------

    def run_judge(
        self, step: JudgeStep, keys: Sequence[Tuple[Value, ...]]
    ) -> Dict[Tuple, Optional[bool]]:
        """Judge a predicate for each key; returns normalized-key verdicts."""
        verdicts: Dict[Tuple, Optional[bool]] = {}
        batch_size = max(1, self._config.lookup_batch_size)
        votes = max(1, self._config.votes)

        batches: List[List[Tuple[Value, ...]]] = [
            list(keys[start : start + batch_size])
            for start in range(0, len(keys), batch_size)
        ]

        def make_parse(batch_len: int):
            def parse_answer(completion: Completion):
                if parsing.looks_like_refusal(completion.text):
                    raise LLMProtocolError("refused judgement")
                return parsing.parse_judge_completion(completion.text, batch_len)

            return parse_answer

        requests: List[CompletionRequest] = []
        for batch in batches:
            prompt = build_judge_prompt(
                JudgeRequest(
                    schema=step.schema,
                    key_columns=tuple(step.key_columns),
                    condition_sql=step.condition_sql,
                    entities=tuple(batch),
                )
            )
            parse_answer = make_parse(len(batch))
            for vote in range(votes):
                requests.append(
                    CompletionRequest(
                        prompt=prompt, sample_index=vote, parse=parse_answer
                    )
                )
        answers = self._dispatcher.run_wave(requests)

        for batch_number, batch in enumerate(batches):
            sampled = answers[batch_number * votes : (batch_number + 1) * votes]
            merged = consistency.vote_verdicts(sampled) if votes > 1 else sampled[0]
            for key, verdict in zip(batch, merged):
                verdicts[normalize_key(key)] = verdict
        return verdicts


# ---------------------------------------------------------------------------
# Helpers shared with the executor
# ---------------------------------------------------------------------------


def parse_enumerate(completion: Completion, dtypes):
    """Parse an enumeration page, treating refusals as protocol errors."""
    if parsing.looks_like_refusal(completion.text):
        raise LLMProtocolError("refused enumeration")
    return parsing.parse_enumerate_completion(completion.text, dtypes)


def build_local_table(
    binding: str,
    virtual_schema: TableSchema,
    columns: Sequence[str],
    rows: Sequence[Sequence[Value]],
) -> Table:
    """A local table holding retrieved rows for one binding.

    All columns are nullable (the model may not know a value) and keep
    the virtual column types.
    """
    local_columns = tuple(
        Column(
            name=virtual_schema.column(name).name,
            dtype=virtual_schema.column(name).dtype,
            nullable=True,
            description=virtual_schema.column(name).description,
        )
        for name in columns
    )
    schema = TableSchema(
        name=f"retrieved_{binding}",
        columns=local_columns,
        description=f"rows retrieved from the model for binding {binding}",
    )
    table = Table(schema)
    for row in rows:
        try:
            table.insert(row, coerce=True)
        except Exception:
            continue  # drop rows that cannot fit the schema even coerced
    return table


def normalize_key(values: Tuple[Value, ...]) -> Tuple:
    """Join-key normalization: numbers cross-type, text case-insensitive."""
    normalized = []
    for value in values:
        if isinstance(value, str):
            normalized.append(("t", value.strip().lower()))
        elif isinstance(value, bool):
            normalized.append(("b", value))
        elif isinstance(value, (int, float)):
            normalized.append(("n", float(value)))
        else:
            normalized.append(("0", None))
    return tuple(normalized)
