"""LLM-backed physical operators.

``ModelClient`` is the runtime client that turns plan steps into model
traffic, routed through the concurrent scheduler in
:mod:`repro.runtime.dispatcher`:

* :meth:`run_scan` — paginated enumeration with truncation recovery, a
  runaway guard, and speculative page prefetch;
* :meth:`run_lookup` — batched lookups with optional self-consistency
  voting; all ``batches × votes`` calls dispatch as one concurrent wave;
* :meth:`run_judge` — batched predicate judgements with voting, fanned
  out the same way.

Retrieval is produced through the streaming row pipeline
(:mod:`repro.core.streams`): :meth:`open_scan_stream`,
:meth:`open_sharded_scan_stream`, and :meth:`open_lookup_stream` yield
validated rows page by page, and the ``run_*`` operators are simply
consumers that drain the stream.  A consumer that closes a stream
early stops the page fetch loop; the scan stream then writes the
fetched prefix back as a *partial-coverage* fragment (and a later
same-shape stream resumes at its cursor), so early exit saves calls
without ever poisoning the storage tier.

All calls flow through one wrapped model (cache, then meter), so cost
accounting and caching behave identically across operators — and
identically across concurrency levels: ``max_in_flight`` changes the
reported wall-clock only, never answers, tokens, or call counts.
Refused or unusable completions are retried with a bumped sample index
(beliefs are unchanged at temperature 0; the retry nonce only re-rolls
the refusal) under the reusable :class:`~repro.runtime.retry.RetryPolicy`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import EngineConfig
from repro.core import consistency, partial_agg
from repro.core.streams import RowStream, materialized_stream
from repro.core.validation import Validator
from repro.core.virtual import VirtualTable
from repro.errors import ExecutionError, LLMProtocolError
from repro.llm.accounting import MeteredModel, UsageMeter
from repro.llm.cache import CachingModel, PromptCache, resolve_model_name
from repro.llm.interface import Completion, CompletionOptions, LanguageModel
from repro.obs import metrics as obs_metrics
from repro.obs.trace import NOOP_TRACER
from repro.plan.physical import (
    JudgeStep,
    LookupStep,
    ScanStep,
    ShardSpec,
    ShardedScanStep,
)
from repro.prompts import parsing
from repro.prompts.enumerate import EnumerateRequest, build_enumerate_prompt
from repro.prompts.lookup import LookupRequest, build_lookup_prompt
from repro.prompts.predicate import JudgeRequest, build_judge_prompt
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType, Value
from repro.runtime.dispatcher import CompletionRequest, Dispatcher
from repro.runtime.latency import LatencyLedger
from repro.runtime.parallel import run_parallel
from repro.runtime.prefetch import ScanPrefetcher
from repro.runtime.retry import RETRY_NONCE, RetryPolicy
from repro.runtime.scheduler import (
    CancellationToken,
    CrossQueryDedup,
    FlightBudget,
)
from repro.storage.fragments import ScanFragment
from repro.storage.tier import StorageTier

#: Kept as a module name for back-compat; the policy owns the value now.
_RETRY_NONCE = RETRY_NONCE


class ModelClient:
    """Executes retrieval steps against a language model."""

    def __init__(
        self,
        model: LanguageModel,
        meter: UsageMeter,
        config: EngineConfig,
        cache: Optional[PromptCache] = None,
        validator: Optional[Validator] = None,
        storage: Optional[StorageTier] = None,
        dedup: Optional[CrossQueryDedup] = None,
        flight_budget: Optional[FlightBudget] = None,
        cancel: Optional[CancellationToken] = None,
        catalog_scope: str = "",
        tracer=None,
        registry=None,
        batcher=None,
        stats_catalog=None,
    ):
        self._raw_model = model
        # Online statistics feedback: executed scans report observed
        # cardinalities/selectivities here and every landed completion
        # feeds the per-kind latency/token histograms.  Recording never
        # changes answers; only the optimizer's *consultation* of the
        # catalog (gated on enable_adaptive) can change plans.
        self._stats = stats_catalog
        # Observability hooks: the tracer collects spans (no-op unless
        # the query runs under tracing), the registry feeds the
        # pages-per-scan histogram.  Neither affects answers or usage.
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._registry = registry
        # The storage tier only serves/stores under deterministic
        # configurations; resolve the gate once so the operators below
        # can simply test for None.  Fragments live under a
        # (model identity, semantic config, catalog fingerprint) scope —
        # a tier shared across engines or processes must never serve one
        # model's, one config's, or one catalog's rows as another's.
        self._storage: Optional[StorageTier] = (
            storage
            if storage is not None and storage.materialize_active(config)
            else None
        )
        self._storage_scope = StorageTier.fragment_scope(
            resolve_model_name(model), config, catalog_scope
        )
        self._cache: Optional[PromptCache] = None
        # The batching gate sits at the *bottom* of the stack (below
        # cache and meter): only calls that genuinely pay the model —
        # cache misses, consumed speculations — enter the session's
        # shared continuous-batching pool; zero-cost replays never
        # occupy a slot.  Identity passes through, so cache keys and
        # storage scopes are unchanged by how calls are pooled.
        raw: LanguageModel = model
        if batcher is not None:
            from repro.runtime.batching import BatchingGate

            raw = BatchingGate(model, batcher, cancel=cancel)
        inner: LanguageModel = raw
        if config.enable_cache:
            caching = CachingModel(inner, cache)
            self._cache = caching.cache
            inner = caching
        # The dispatcher commits wave makespans to the wall clock, so
        # the metered stack must not also track wall time per call.
        self._model = MeteredModel(inner, meter, track_wall=False)
        self._meter = meter
        self._config = config
        self._validator = validator or Validator(enabled=config.enable_validation)
        self._ledger = LatencyLedger(on_commit=meter.add_wall_ms)
        self._retry = RetryPolicy.from_config(config)
        # Cross-query single-flight shares the fragment scope: the
        # (model identity, semantic config) namespace is exactly the
        # boundary across which two requests may never join.
        self._dispatcher = Dispatcher(
            model=self._model,
            options_for=self._options,
            retry=self._retry,
            max_in_flight=config.max_in_flight,
            ledger=self._ledger,
            # Speculative prefetch goes through the gate too: a guessed
            # page coalesces into shared waves like any paid call.
            raw_model=raw,
            cache=self._cache,
            meter=meter,
            shared=dedup,
            dedup_scope=self._storage_scope,
            flight_budget=flight_budget,
            cancel=cancel,
            tracer=self._tracer,
            on_completion=(
                stats_catalog.record_call if stats_catalog is not None else None
            ),
        )
        self.warnings: List[str] = []
        self._warning_local = threading.local()

    @property
    def validator(self) -> Validator:
        return self._validator

    @property
    def stats_catalog(self):
        """The session's statistics catalog (``None`` in bare tests)."""
        return self._stats

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def dispatcher(self) -> Dispatcher:
        return self._dispatcher

    @property
    def tracer(self):
        """The query's tracer (the shared no-op when tracing is off)."""
        return self._tracer

    @property
    def ledger(self) -> LatencyLedger:
        return self._ledger

    @property
    def max_in_flight(self) -> int:
        return self._dispatcher.max_in_flight

    def close(self) -> None:
        """Release the dispatcher's worker pool."""
        self._dispatcher.close()

    def _record_fragment_hits(self, count: int, calls_saved: int = 0) -> None:
        """Count fragment serving in the tier *and* this query's meter.

        The tier counter is the session-global view; the meter copy is
        what attributes the saving to the query that enjoyed it (the
        engine used to diff tier snapshots, which misattributes when
        queries interleave).
        """
        assert self._storage is not None
        self._storage.record_fragment_hits(count, calls_saved=calls_saved)
        self._meter.record_fragment_hits(count, calls_saved=calls_saved)

    # ------------------------------------------------------------------
    # Warnings
    # ------------------------------------------------------------------

    def _warn(self, message: str) -> None:
        """Record a warning in the calling thread's scope.

        Inside a :meth:`warning_scope` (a concurrently-executing plan
        step) warnings buffer locally; the executor re-emits them in
        step order, so ``QueryResult.warnings`` ordering never depends
        on thread timing.
        """
        buffer = getattr(self._warning_local, "buffer", None)
        if buffer is not None:
            buffer.append(message)
        else:
            self.warnings.append(message)

    @contextmanager
    def warning_scope(self):
        """Capture this thread's warnings instead of publishing them."""
        previous = getattr(self._warning_local, "buffer", None)
        captured: List[str] = []
        self._warning_local.buffer = captured
        try:
            yield captured
        finally:
            self._warning_local.buffer = previous

    def emit_warnings(self, messages: Sequence[str]) -> None:
        """Publish captured warnings into the current scope, in order."""
        for message in messages:
            self._warn(message)

    # ------------------------------------------------------------------
    # Low-level call with retry
    # ------------------------------------------------------------------

    def _options(self, sample_index: int) -> CompletionOptions:
        return CompletionOptions(
            temperature=self._effective_temperature(),
            max_tokens=self._config.max_output_tokens,
            sample_index=sample_index,
        )

    def _effective_temperature(self) -> float:
        if self._config.votes > 1:
            # Voting needs independent samples; greedy samples are identical.
            return max(self._config.temperature, 0.7)
        return self._config.temperature

    def _complete_with_retry(self, prompt: str, sample_index: int, parse):
        """Call the model, parse; retry on refusal/unusable output."""
        return self._dispatcher.run_one(
            CompletionRequest(prompt=prompt, sample_index=sample_index, parse=parse)
        )

    # ------------------------------------------------------------------
    # Scan
    # ------------------------------------------------------------------

    def run_scan(self, step: ScanStep, virtual: VirtualTable) -> Table:
        """Materialize a scan step as a local table.

        Implemented as a full drain of :meth:`open_scan_stream`: the
        streaming pipeline is the single scan code path, and
        materialization is just the consumer that never exits early.
        """
        stream = self.open_scan_stream(step, virtual)
        return build_local_table(
            step.binding, step.schema, step.columns, stream.drain()
        )

    def open_scan_stream(self, step: ScanStep, virtual: VirtualTable) -> RowStream:
        """A page-by-page stream of the scan's validated rows.

        With the storage tier active, a covering fragment serves the
        whole stream locally (missing columns trigger the residual
        lookup of just those columns); an *incomplete* same-shape
        fragment — typically written back by an earlier early-exited
        stream — serves its prefix for free and the stream resumes
        fetching at the fragment's cursor.  Closing the stream before
        exhaustion writes the fetched prefix back as a
        partial-coverage fragment, so early exit never poisons the
        cache: the rows are real, merely marked incomplete.
        """
        page_size = self._config.page_size
        prefix: List[List[Value]] = []
        prefix_calls = 0
        if self._storage is not None:
            with self._tracer.span(
                "storage", kind="scan", table=step.table_name
            ) as probe:
                served = self._scan_from_storage(step, virtual, count_miss=False)
                if served is not None:
                    probe.set_tag("outcome", "hit")
                    return materialized_stream(
                        step.columns, served.rows, page_size
                    )
                prefix, prefix_calls = self._resumable_prefix(step)
                probe.set_tag("outcome", "resume" if prefix else "miss")
        return RowStream(
            step.columns, self._scan_pages(step, virtual, prefix, prefix_calls)
        )

    def _resumable_prefix(
        self, step: ScanStep
    ) -> Tuple[List[List[Value]], int]:
        """The prefix rows of an incomplete same-shape fragment.

        Called after the full-coverage probe missed; settles this
        scan's fragment hit/miss counters (exactly one is recorded).
        Only fragments with *exactly* the scan's column set resume:
        the resumed stream's writeback replaces the stored prefix, so
        resuming a narrower scan from a wider fragment would silently
        drop the extra columns the session already paid for.
        """
        storage = self._storage
        assert storage is not None
        fragment = storage.scan_fragment(
            self._storage_scope, step.table_name, step.pushdown_sql, step.order
        )
        step_columns = {name.lower() for name in step.columns}
        if (
            fragment is not None
            and not fragment.complete
            and len(fragment.rows) > 0
            and {name.lower() for name in fragment.columns} == step_columns
        ):
            self._record_fragment_hits(1, calls_saved=fragment.source_calls)
            return fragment.project(step.columns), fragment.source_calls
        storage.record_fragment_misses(1)
        return [], 0

    def _scan_pages(
        self,
        step: ScanStep,
        virtual: VirtualTable,
        prefix: List[List[Value]],
        prefix_calls: int,
    ):
        """Generator behind a scan stream: resume, fetch, write back.

        Yields validated row pages.  Cleanup runs exactly once whether
        the consumer drains or closes early (``GeneratorExit``): the
        prefetcher is discarded, skipped pages are accounted on early
        exit, and — unless the chain failed (truncation/guard) — the
        fetched rows are written back as a fragment whose ``complete``
        flag reflects whether the enumeration actually ended.
        """
        page_size = self._config.page_size
        target = step.limit_hint
        dtypes = [step.schema.column(name).dtype for name in step.columns]
        est_pages = max(1, -(-int(step.est_rows) // page_size))
        max_pages = est_pages * self._config.scan_guard_factor + 4
        prefix_pages = -(-len(prefix) // page_size) if prefix else 0

        def prompt_for(after_index: int) -> str:
            return build_enumerate_prompt(
                EnumerateRequest(
                    schema=step.schema,
                    columns=step.columns,
                    condition_sql=step.pushdown_sql,
                    order=step.order,
                    after_index=after_index,
                    max_rows=page_size,
                )
            )

        def parse_page(completion: Completion):
            return parse_enumerate(completion, dtypes)

        prefetch_window = 0
        if self._config.max_in_flight > 1 and self._config.scan_prefetch_pages > 0:
            prefetch_window = min(
                self._config.scan_prefetch_pages, self._config.max_in_flight - 1
            )
        prefetcher = ScanPrefetcher(self._dispatcher) if prefetch_window else None

        parsed_total = len(prefix)  # enumeration cursor (rows received)
        emitted = 0
        collected: List[List[Value]] = []  # emitted rows, for writeback
        pages_fetched = 0
        ended_naturally = False
        storable = True
        finished = False
        interrupted = False
        try:
            for start in range(0, len(prefix), page_size):
                chunk = [list(row) for row in prefix[start : start + page_size]]
                if target is not None and emitted + len(chunk) > target:
                    chunk = chunk[: target - emitted]
                collected.extend(chunk)
                emitted += len(chunk)
                yield chunk
                if target is not None and emitted >= target:
                    finished = True
                    return
            while True:
                after_index = parsed_total
                prompt = prompt_for(after_index)
                if prefetcher is not None:
                    # Guess the next pages parse cleanly and start them
                    # now, overlapping the page we are about to read.
                    guesses = [
                        prompt_for(after_index + offset * page_size)
                        for offset in range(1, prefetch_window + 1)
                        if pages_fetched + offset < max_pages
                        and (
                            target is None
                            or after_index + offset * page_size < target
                        )
                    ]
                    prefetcher.prime(guesses)
                page = self._fetch_page(prompt, parse_page, prefetcher)
                pages_fetched += 1
                self._meter.record_pages(fetched=1)
                if page.malformed_lines:
                    self._warn(
                        f"scan {step.table_name}: {page.malformed_lines} "
                        f"malformed line(s) skipped"
                    )
                got_rows = len(page.rows) > 0
                parsed_total += len(page.rows)
                if page.complete and not page.has_more:
                    ended_naturally = True
                to_validate = page.rows
                if target is not None and emitted + len(to_validate) > target:
                    to_validate = to_validate[: target - emitted]
                validated = [
                    self._validator.validate_row(row, virtual, step.columns)
                    for row in to_validate
                ]
                collected.extend(validated)
                emitted += len(validated)
                if validated:
                    yield validated
                if target is not None and parsed_total >= target:
                    break
                if ended_naturally:
                    break
                if not page.complete and not got_rows:
                    # Truncated before any row: the page size does not fit
                    # the output budget; give up rather than loop.
                    self._warn(
                        f"scan {step.table_name}: page truncated before any row"
                    )
                    storable = False
                    break
                if pages_fetched >= max_pages:
                    self._warn(
                        f"scan {step.table_name}: aborted after "
                        f"{pages_fetched} pages (guard limit)"
                    )
                    storable = False
                    break
            finished = True
        except GeneratorExit:
            interrupted = True
        finally:
            if prefetcher is not None:
                prefetcher.discard()
            if self._registry is not None and pages_fetched > 0:
                self._registry.histogram(
                    obs_metrics.PAGES_PER_SCAN
                ).observe(pages_fetched)
            if self._stats is not None and ended_naturally and target is None:
                # The enumeration ran to the model's natural end, so
                # the cursor count is ground truth — a full scan fixes
                # the table's cardinality, a pushed-down scan fixes the
                # predicate's selectivity (only once the denominator,
                # the table's true row count, is itself known).
                if step.pushdown_sql is None:
                    self._stats.record_table_rows(
                        step.table_name, parsed_total
                    )
                elif step.predicate_fingerprint is not None:
                    known = self._stats.observed_rows(step.table_name)
                    if known is not None and known > 0:
                        self._stats.record_selectivity(
                            step.table_name,
                            step.predicate_fingerprint,
                            known,
                            parsed_total,
                        )
            if interrupted:
                self._meter.record_pages(
                    skipped=max(0, est_pages - prefix_pages - pages_fetched)
                )
            if (
                (finished or interrupted)
                and self._storage is not None
                and storable
                and pages_fetched > 0
            ):
                complete = ended_naturally and (
                    target is None or parsed_total <= target
                )
                self._storage.store_scan_fragment(
                    self._storage_scope,
                    step.table_name,
                    step.pushdown_sql,
                    step.order,
                    ScanFragment(
                        columns=tuple(step.columns),
                        rows=tuple(tuple(row) for row in collected),
                        complete=complete,
                        source_calls=prefix_calls + pages_fetched,
                    ),
                )

    def _scan_from_storage(
        self, step: ScanStep, virtual: VirtualTable, count_miss: bool = True
    ) -> Optional[Table]:
        """Serve a scan from a materialized fragment, or None on miss.

        Full column coverage serves without any model traffic.  When
        only columns are missing and the fragment carries the primary
        key, a *residual* lookup fetches just the missing columns for
        the fragment's keys — rows the session already paid for are
        never re-enumerated.  ``count_miss=False`` defers the miss
        counter to the caller (the stream path still probes for a
        resumable prefix before conceding the miss).
        """
        storage = self._storage
        assert storage is not None
        fragment = storage.scan_fragment(
            self._storage_scope, step.table_name, step.pushdown_sql, step.order
        )
        if fragment is None and step.pinned_fragment is not None:
            # The planner routed this scan to a fragment that was since
            # evicted or expired; the pinned plan-time snapshot keeps
            # the routed plan servable (and no worse than storage-off).
            fragment = step.pinned_fragment
        target = step.limit_hint
        usable: Optional[int] = None
        if fragment is not None:
            if target is None:
                usable = len(fragment.rows) if fragment.complete else None
            elif fragment.complete or len(fragment.rows) >= target:
                usable = min(target, len(fragment.rows))
        if fragment is None or usable is None:
            if count_miss:
                storage.record_fragment_misses(1)
            return None

        missing = fragment.missing_columns(step.columns)
        if not missing:
            limit = usable if usable < len(fragment.rows) else None
            rows = fragment.project(step.columns, limit=limit)
            self._record_fragment_hits(1, calls_saved=fragment.source_calls)
            return build_local_table(step.binding, step.schema, step.columns, rows)

        primary_key = virtual.schema.primary_key
        if not primary_key or not fragment.covers_columns(primary_key):
            if count_miss:
                storage.record_fragment_misses(1)
            return None
        base_rows = fragment.rows[:usable]
        key_rows = fragment.project(primary_key, limit=usable)
        if any(value is None for key in key_rows for value in key):
            if count_miss:
                storage.record_fragment_misses(1)
            return None

        # Residual fetch: only the missing columns, only these keys.
        seen = set()
        keys: List[Tuple[Value, ...]] = []
        for key in key_rows:
            marker = normalize_key(tuple(key))
            if marker not in seen:
                seen.add(marker)
                keys.append(tuple(key))
        residual_step = LookupStep(
            binding=step.binding,
            table_name=step.table_name,
            schema=step.schema,
            key_columns=tuple(primary_key),
            attributes=tuple(missing),
            literal_keys=keys,
        )
        # Residual cost, estimated deterministically *before* the fetch
        # (a shared-meter delta would misattribute concurrent steps'
        # calls): keys the cell store cannot serve, in lookup batches.
        uncached = sum(
            1
            for key in keys
            if storage.lookup_cells(
                self._storage_scope,
                step.table_name,
                normalize_key(tuple(key)),
                missing,
                touch=False,
            )
            is None
        )
        batch_size = max(1, self._config.lookup_batch_size)
        residual_calls = -(-uncached // batch_size) if uncached else 0
        residual = self.run_lookup(residual_step, keys, virtual)
        attr_indices = [
            residual.schema.column_index(name) for name in missing
        ]
        key_indices = [
            residual.schema.column_index(name) for name in primary_key
        ]
        residual_values: Dict[Tuple, List[Value]] = {}
        for row in residual.rows:
            marker = normalize_key(tuple(row[i] for i in key_indices))
            residual_values[marker] = [row[i] for i in attr_indices]
        extras = [
            residual_values.get(
                normalize_key(tuple(key)), [None] * len(missing)
            )
            for key in key_rows
        ]

        fragment_index = fragment.column_index()
        missing_positions = {name.lower(): i for i, name in enumerate(missing)}
        out_rows: List[List[Value]] = []
        for row, extra in zip(base_rows, extras):
            out_row: List[Value] = []
            for name in step.columns:
                position = fragment_index.get(name.lower())
                if position is not None:
                    out_row.append(row[position])
                else:
                    out_row.append(extra[missing_positions[name.lower()]])
            out_rows.append(out_row)

        # The avoided re-enumeration minus the residual calls just paid
        # (the lookup path counts its own cell-store savings itself).
        self._record_fragment_hits(
            1, calls_saved=max(0, fragment.source_calls - residual_calls)
        )
        if usable == len(fragment.rows):
            storage.store_scan_fragment(
                self._storage_scope,
                step.table_name,
                step.pushdown_sql,
                step.order,
                fragment.widened(missing, extras),
            )
        return build_local_table(step.binding, step.schema, step.columns, out_rows)

    def _fetch_page(self, prompt: str, parse, prefetcher: Optional[ScanPrefetcher]):
        """One page, preferring an exact-match speculative completion."""
        if prefetcher is not None:
            speculation = prefetcher.take(prompt)
            if speculation is not None:
                completion, owed_ms = self._dispatcher.consume_speculation(
                    speculation
                )
                self._ledger.add(owed_ms)
                try:
                    return parse(completion)
                except LLMProtocolError as exc:
                    if self._retry.max_attempts <= 1:
                        raise ExecutionError(
                            f"model output unusable after "
                            f"{self._retry.max_attempts} attempts: {exc}"
                        )
                    # The speculative call was attempt 0; hand the rest of
                    # the retry budget to the dispatcher.
                    return self._dispatcher.run_one(
                        CompletionRequest(
                            prompt=prompt,
                            sample_index=0,
                            parse=parse,
                            first_attempt=1,
                            prior_error=exc,
                            kind="scan-page",
                        )
                    )
        return self._dispatcher.run_one(
            CompletionRequest(
                prompt=prompt, sample_index=0, parse=parse, kind="scan-page"
            )
        )

    # ------------------------------------------------------------------
    # Sharded scan
    # ------------------------------------------------------------------

    def run_sharded_scan(self, step: ShardedScanStep, virtual: VirtualTable) -> Table:
        """Materialize a scan as independent per-shard page chains.

        Each shard owns a contiguous slice of the enumeration cursor
        and pages through it on its own; results merge by stable
        shard-order concatenation, which reproduces the single
        sequential chain byte for byte (a deterministic model slices
        the same believed row list at every cursor position).  With
        ``max_in_flight > 1`` the chains run concurrently in groups of
        at most ``max_in_flight``, so the reported critical path stays
        honest to the dispatcher's pool.  A fully-successful sharded
        scan writes its union back as a whole-scan fragment — the
        coverage that routes future whole-table scans to storage.

        With a :class:`~repro.plan.physical.PartialAggregateSpec`
        attached, each shard reduces to mergeable partial aggregates
        and the merged groups are returned instead of raw rows.
        """
        scan = step.scan
        if self._storage is not None:
            with self._tracer.span(
                "storage", kind="scan", table=scan.table_name
            ) as probe:
                served = self._scan_from_storage(scan, virtual)
                probe.set_tag(
                    "outcome", "hit" if served is not None else "miss"
                )
            if served is not None:
                if step.aggregate is None:
                    return served
                partial = partial_agg.reduce_rows(
                    step.aggregate, served.schema.column_names, served.rows
                )
                return self._aggregate_table(step, [partial])

        self._meter.record_sharded_scan(len(step.shards))
        outcomes: List[_ShardOutcome] = []
        stream = self.open_sharded_scan_stream(step, virtual, outcomes)
        if step.aggregate is None:
            return build_local_table(
                scan.binding, scan.schema, scan.columns, stream.drain()
            )
        for _ in stream:
            pass  # drive the chains; partials reduce from the outcomes
        partials = []
        for outcome in outcomes:
            shard_table = build_local_table(
                scan.binding, scan.schema, scan.columns, outcome.rows
            )
            partials.append(
                partial_agg.reduce_rows(
                    step.aggregate, shard_table.schema.column_names, shard_table.rows
                )
            )
        return self._aggregate_table(step, partials)

    def open_sharded_scan_stream(
        self,
        step: ShardedScanStep,
        virtual: VirtualTable,
        outcomes_sink: Optional[List["_ShardOutcome"]] = None,
    ) -> RowStream:
        """A stream yielding each shard chain's rows as one page.

        Chains are fetched in ``max_in_flight``-sized groups (the same
        grouping the materialized path used, so accounting is
        unchanged) and yielded in stable shard order.  Closing the
        stream early skips the not-yet-started groups; completed
        chains persist as per-shard fragments — exactly the
        partial-failure machinery — so a cut-short sharded stream
        never loses paid-for pages.  ``outcomes_sink`` receives the
        per-shard outcomes as they complete (partial aggregation needs
        the shard boundaries).
        """
        return RowStream(
            step.scan.columns,
            self._sharded_pages(step, virtual, outcomes_sink),
        )

    def _sharded_pages(
        self,
        step: ShardedScanStep,
        virtual: VirtualTable,
        outcomes_sink: Optional[List["_ShardOutcome"]],
    ):
        scan = step.scan
        shard_count = len(step.shards)
        # Chains may run on fresh worker threads with no ambient span
        # stack; capture the step span here and re-bind it per chain so
        # shard spans keep their place in the tree.
        parent = self._tracer.current_parent()
        thunks = [
            (lambda shard=shard: self._run_shard_chain(
                scan, shard, shard_count, virtual, parent
            ))
            for shard in step.shards
        ]
        completed: List[_ShardOutcome] = (
            outcomes_sink if outcomes_sink is not None else []
        )
        finished = False
        interrupted = False
        try:
            # Chains beyond the pool width cannot actually overlap;
            # batching keeps the wall-clock accounting honest.
            width = max(1, self._config.max_in_flight)
            for begin in range(0, len(thunks), width):
                group = run_parallel(self._ledger, thunks[begin : begin + width])
                # The whole group already ran (and was paid for) before
                # the first yield can hand control away: record every
                # outcome and its warnings now, so a close() mid-group
                # still persists and accounts the finished chains.
                for outcome in group:
                    # Re-emit in shard order so warnings never depend on
                    # thread timing.
                    self.emit_warnings(outcome.warnings)
                    completed.append(outcome)
                for outcome in group:
                    if outcome.rows:
                        # Fresh per-chain row lists: safe to hand out.
                        yield outcome.rows
            finished = True
        except GeneratorExit:
            interrupted = True
        finally:
            if interrupted:
                est_pages = max(
                    1, -(-int(scan.est_rows) // self._config.page_size)
                )
                fetched = sum(o.pages for o in completed)
                self._meter.record_pages(
                    skipped=max(0, est_pages - fetched)
                )
            if (
                self._stats is not None
                and finished
                and len(completed) == len(step.shards)
                and all(o.storable for o in completed)
            ):
                # All chains landed: the shard-order concatenation is
                # the complete enumeration (the open-ended final shard
                # ran to the model's natural end), so the union count
                # is as authoritative as a serial full scan's.
                total = sum(len(o.rows) for o in completed)
                if scan.pushdown_sql is None:
                    self._stats.record_table_rows(scan.table_name, total)
                elif scan.predicate_fingerprint is not None:
                    known = self._stats.observed_rows(scan.table_name)
                    if known is not None and known > 0:
                        self._stats.record_selectivity(
                            scan.table_name,
                            scan.predicate_fingerprint,
                            known,
                            total,
                        )
            if (finished or interrupted) and self._storage is not None:
                if len(completed) == len(step.shards) and all(
                    o.storable for o in completed
                ):
                    # Coverage union: the concatenation is the complete
                    # enumeration, stored under the whole-scan key the
                    # planner consults — future whole-table scans route
                    # to it.  The per-shard fragments would only
                    # duplicate these rows in the byte-budgeted store
                    # (the union is always consulted first), so they
                    # are not written.
                    union = [row for o in completed for row in o.rows]
                    self._storage.store_scan_fragment(
                        self._storage_scope,
                        scan.table_name,
                        scan.pushdown_sql,
                        None,
                        ScanFragment(
                            columns=tuple(scan.columns),
                            rows=tuple(tuple(row) for row in union),
                            complete=True,
                            source_calls=sum(o.cost for o in completed),
                        ),
                    )
                else:
                    # No union: preserve the shards that did finish, so
                    # a same-shape re-run only re-pays the missing
                    # chains (failed, or never started on early exit).
                    for shard, outcome in zip(step.shards, completed):
                        if not outcome.storable or outcome.pages == 0:
                            continue
                        self._storage.store_shard_fragment(
                            self._storage_scope,
                            scan.table_name,
                            scan.pushdown_sql,
                            shard.index,
                            len(step.shards),
                            shard.start,
                            ScanFragment(
                                columns=tuple(scan.columns),
                                rows=tuple(tuple(row) for row in outcome.rows),
                                complete=True,
                                source_calls=outcome.pages,
                            ),
                        )

    def _run_shard_chain(
        self,
        scan: ScanStep,
        shard: ShardSpec,
        shard_count: int,
        virtual: VirtualTable,
        trace_parent: Optional[int] = None,
    ) -> "_ShardOutcome":
        """One shard's page chain, with its warnings captured in order."""
        with self._tracer.bind(trace_parent):
            with self._tracer.span("shard", shard=shard.index) as span:
                with self.warning_scope() as captured:
                    outcome = self._fetch_shard(
                        scan, shard, shard_count, virtual
                    )
                span.set_tag("rows", len(outcome.rows))
                span.set_tag("pages", outcome.pages)
        outcome.warnings = captured
        return outcome

    def _fetch_shard(
        self,
        scan: ScanStep,
        shard: ShardSpec,
        shard_count: int,
        virtual: VirtualTable,
    ) -> "_ShardOutcome":
        storage = self._storage
        if storage is not None:
            with self._tracer.span(
                "storage", kind="shard", table=scan.table_name,
                shard=shard.index,
            ) as probe:
                fragment = storage.shard_fragment(
                    self._storage_scope,
                    scan.table_name,
                    scan.pushdown_sql,
                    shard.index,
                    shard_count,
                    shard.start,
                )
                served = (
                    fragment is not None
                    and fragment.complete
                    and fragment.covers_columns(scan.columns)
                )
                probe.set_tag("outcome", "hit" if served else "miss")
            if served:
                assert fragment is not None
                self._record_fragment_hits(1, calls_saved=fragment.source_calls)
                return _ShardOutcome(
                    rows=fragment.project(scan.columns),
                    pages=0,
                    cost=fragment.source_calls,
                    storable=True,
                )
            storage.record_fragment_misses(1)

        dtypes = [scan.schema.column(name).dtype for name in scan.columns]

        def parse_page(completion: Completion):
            return parse_enumerate(completion, dtypes)

        page_size = self._config.page_size
        target = shard.row_target
        est_share = (
            target if target is not None else max(1, int(scan.est_rows) - shard.start)
        )
        est_pages = max(1, -(-est_share // page_size))
        max_pages = est_pages * self._config.scan_guard_factor + 4

        parsed: List[List[Value]] = []
        pages = 0
        storable = True
        while True:
            after_index = shard.start + len(parsed)
            want = (
                page_size
                if target is None
                else min(page_size, target - len(parsed))
            )
            prompt = build_enumerate_prompt(
                EnumerateRequest(
                    schema=scan.schema,
                    columns=scan.columns,
                    condition_sql=scan.pushdown_sql,
                    order=None,
                    after_index=after_index,
                    max_rows=want,
                )
            )
            page = self._dispatcher.run_one(
                CompletionRequest(
                    prompt=prompt,
                    sample_index=0,
                    parse=parse_page,
                    kind="scan-page",
                    trace_tags=(("shard", shard.index),),
                )
            )
            if page.malformed_lines:
                self._warn(
                    f"scan {scan.table_name} shard {shard.index}: "
                    f"{page.malformed_lines} malformed line(s) skipped"
                )
            got_rows = len(page.rows) > 0
            parsed.extend(page.rows)
            pages += 1
            self._meter.record_pages(fetched=1)
            if page.complete and not page.has_more:
                break  # enumeration exhausted within this shard's range
            if target is not None and len(parsed) >= target:
                break  # shard's slice fully fetched
            if not page.complete and not got_rows:
                self._warn(
                    f"scan {scan.table_name} shard {shard.index}: page "
                    f"truncated before any row"
                )
                storable = False
                break
            if pages >= max_pages:
                self._warn(
                    f"scan {scan.table_name} shard {shard.index}: aborted "
                    f"after {pages} pages (guard limit)"
                )
                storable = False
                break
        if target is not None and len(parsed) > target:
            parsed = parsed[:target]
        if self._registry is not None and pages > 0:
            self._registry.histogram(obs_metrics.PAGES_PER_SCAN).observe(pages)
        validated = [
            self._validator.validate_row(row, virtual, scan.columns)
            for row in parsed
        ]
        return _ShardOutcome(
            rows=validated, pages=pages, cost=pages, storable=storable
        )

    # ------------------------------------------------------------------
    # Mid-query re-plan
    # ------------------------------------------------------------------

    def run_replan_shards(
        self,
        scan: ScanStep,
        shards: Sequence[ShardSpec],
        virtual: VirtualTable,
    ) -> List["_ShardOutcome"]:
        """Residual shard fan-out for a mid-query re-plan.

        The adaptive executor calls this after closing a streamed scan
        whose observed selectivity diverged from the estimate: each
        shard continues the enumeration cursor where the closed stream
        (plus earlier replan rounds) left off.  Chains reuse the
        sharded-scan page machinery, and the executor keeps shard
        starts page-aligned with page-multiple targets, so every
        prompt is byte-identical to one the serial continuation would
        have issued — merged rows, and therefore results, cannot
        differ from the static plan's.
        """
        if self._registry is not None:
            self._registry.counter(obs_metrics.REPLANS_TOTAL).inc()
            self._registry.counter(obs_metrics.REPLAN_SHARDS_TOTAL).inc(
                len(shards)
            )
        if self._stats is not None:
            self._stats.replans += 1
            self._stats.replan_shards += len(shards)
        parent = self._tracer.current_parent()
        shard_count = len(shards)
        thunks = [
            (lambda shard=shard: self._run_shard_chain(
                scan, shard, shard_count, virtual, parent
            ))
            for shard in shards
        ]
        outcomes: List[_ShardOutcome] = []
        width = max(1, self._config.max_in_flight)
        for begin in range(0, len(thunks), width):
            outcomes.extend(
                run_parallel(self._ledger, thunks[begin : begin + width])
            )
        for outcome in outcomes:
            self.emit_warnings(outcome.warnings)
        return outcomes

    def store_replan_fragment(
        self,
        scan: ScanStep,
        rows: Sequence[Sequence[Value]],
        source_calls: int,
        complete: bool,
    ) -> None:
        """Write back a replanned scan's combined enumeration prefix.

        The streamed prefix plus the residual shards' rows form one
        contiguous prefix of the enumeration, so storing it (replacing
        the shorter prefix the closed stream wrote back) leaves the
        storage tier exactly as informed as a serial run that fetched
        this far.
        """
        if self._storage is None:
            return
        self._storage.store_scan_fragment(
            self._storage_scope,
            scan.table_name,
            scan.pushdown_sql,
            scan.order,
            ScanFragment(
                columns=tuple(scan.columns),
                rows=tuple(tuple(row) for row in rows),
                complete=complete,
                source_calls=source_calls,
            ),
        )

    def _aggregate_table(
        self, step: ShardedScanStep, partials: List[partial_agg.Partials]
    ) -> Table:
        """Merge per-shard partials into the step's pre-aggregated table."""
        spec = step.aggregate
        assert spec is not None
        scan = step.scan
        rows = partial_agg.merge_partials(spec, partials)
        columns = [
            Column(
                name=scan.schema.column(name).name,
                dtype=scan.schema.column(name).dtype,
                nullable=True,
                description=scan.schema.column(name).description,
            )
            for name in spec.group_columns
        ]
        for item in spec.items:
            if item.func == "COUNT":
                dtype = DataType.INTEGER
            elif item.func == "AVG":
                dtype = DataType.REAL
            else:
                assert item.column is not None
                dtype = scan.schema.column(item.column).dtype
            columns.append(Column(name=item.output, dtype=dtype, nullable=True))
        schema = TableSchema(
            name=f"retrieved_{scan.binding}",
            columns=tuple(columns),
            description=(
                f"shard-merged partial aggregates for binding {scan.binding}"
            ),
        )
        # Values are exact merge results; schema coercion must not
        # touch them (an int SUM is not a REAL, a float MAX may land in
        # an INTEGER-typed column's slot only by type promotion).
        return Table.from_validated(schema, rows)


    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def run_lookup(
        self,
        step: LookupStep,
        keys: Sequence[Tuple[Value, ...]],
        virtual: VirtualTable,
    ) -> Table:
        """Materialize a lookup step: one row per found key.

        With the storage tier active, keys whose requested attributes
        are already materialized (or recorded as unknown — negative
        knowledge) are served locally; only the *missing* keys are
        batched into model calls, and their answers are written back.
        """
        attr_dtypes = [step.schema.column(name).dtype for name in step.attributes]
        columns = tuple(step.key_columns) + tuple(step.attributes)
        batch_size = max(1, self._config.lookup_batch_size)
        votes = max(1, self._config.votes)

        served, fetch_indices = self._lookup_serving(step, keys)
        fetch_keys = [keys[index] for index in fetch_indices]
        batches: List[List[Tuple[Value, ...]]] = [
            list(fetch_keys[start : start + batch_size])
            for start in range(0, len(fetch_keys), batch_size)
        ]

        # Every batch and every vote sample is independent: dispatch the
        # whole step as one wave so they overlap up to max_in_flight.
        requests: List[CompletionRequest] = []
        for batch in batches:
            requests.extend(
                self._lookup_requests(step, batch, attr_dtypes, votes)
            )
        if requests:
            self._meter.record_pages(fetched=len(requests))
        answers = self._dispatcher.run_wave(requests)

        answer_by_index: Dict[int, Optional[List[Value]]] = {}
        for batch_number, batch in enumerate(batches):
            sampled = answers[batch_number * votes : (batch_number + 1) * votes]
            merged = consistency.vote_rows(sampled) if votes > 1 else sampled[0]
            for offset, (key, answer) in enumerate(zip(batch, merged)):
                index = fetch_indices[batch_number * batch_size + offset]
                answer_by_index[index] = self._settle_lookup_answer(
                    step, key, answer, virtual
                )

        out_rows: List[List[Value]] = []
        for index, key in enumerate(keys):
            values = served[index] if index in served else answer_by_index[index]
            if values is None:
                continue  # unknown to the model (or recorded as such)
            out_rows.append(list(key) + values)
        return build_local_table(step.binding, step.schema, columns, out_rows)

    def _lookup_serving(
        self, step: LookupStep, keys: Sequence[Tuple[Value, ...]]
    ) -> Tuple[Dict[int, Optional[List[Value]]], List[int]]:
        """Split keys into storage-served answers and indices to fetch.

        The served map holds cell-store answers by key index (``None``
        marks negative knowledge: the entity is recorded as unknown).
        Hit/miss counters and the calls-saved estimate are settled
        here, identically for the wave and streaming consumers.
        """
        served: Dict[int, Optional[List[Value]]] = {}
        fetch_indices = list(range(len(keys)))
        storage = self._storage
        if storage is None:
            return served, fetch_indices
        batch_size = max(1, self._config.lookup_batch_size)
        votes = max(1, self._config.votes)
        fetch_indices = []
        with self._tracer.span(
            "storage", kind="lookup", table=step.table_name
        ) as probe:
            for index, key in enumerate(keys):
                outcome = storage.lookup_cells(
                    self._storage_scope,
                    step.table_name,
                    normalize_key(tuple(key)),
                    step.attributes,
                )
                if outcome is None:
                    fetch_indices.append(index)
                else:
                    found, values = outcome
                    served[index] = list(values) if found else None
            if not served:
                probe.set_tag("outcome", "miss")
            elif fetch_indices:
                probe.set_tag("outcome", "partial")
            else:
                probe.set_tag("outcome", "hit")
        if served:
            total_batches = -(-len(keys) // batch_size) if keys else 0
            paid_batches = (
                -(-len(fetch_indices) // batch_size) if fetch_indices else 0
            )
            self._record_fragment_hits(
                len(served),
                calls_saved=(total_batches - paid_batches) * votes,
            )
        if fetch_indices:
            storage.record_fragment_misses(len(fetch_indices))
        return served, fetch_indices

    def _lookup_requests(
        self,
        step: LookupStep,
        batch: List[Tuple[Value, ...]],
        attr_dtypes: List[DataType],
        votes: int,
    ) -> List[CompletionRequest]:
        """One key batch as ``votes`` independent completion requests."""
        prompt = build_lookup_prompt(
            LookupRequest(
                schema=step.schema,
                key_columns=tuple(step.key_columns),
                attributes=tuple(step.attributes),
                entities=tuple(batch),
            )
        )
        batch_len = len(batch)

        def parse_answer(completion: Completion):
            if parsing.looks_like_refusal(completion.text):
                raise LLMProtocolError("refused lookup")
            return parsing.parse_lookup_completion(
                completion.text, batch_len, attr_dtypes
            )

        return [
            CompletionRequest(
                prompt=prompt,
                sample_index=vote,
                parse=parse_answer,
                kind="lookup-batch",
            )
            for vote in range(votes)
        ]

    def _settle_lookup_answer(
        self,
        step: LookupStep,
        key: Tuple[Value, ...],
        answer: Optional[List[Value]],
        virtual: VirtualTable,
    ) -> Optional[List[Value]]:
        """Validate one fetched answer and write it back to storage.

        ``None`` means the model does not know the entity; the negative
        is recorded so repeated probes stay free.
        """
        if answer is None:
            if self._storage is not None:
                self._storage.store_lookup_negative(
                    self._storage_scope,
                    step.table_name,
                    normalize_key(tuple(key)),
                    step.attributes,
                )
            return None
        validated = self._validator.validate_row(answer, virtual, step.attributes)
        if self._storage is not None:
            self._storage.store_lookup_row(
                self._storage_scope,
                step.table_name,
                normalize_key(tuple(key)),
                step.attributes,
                validated,
            )
        return validated

    def open_lookup_stream(
        self,
        step: LookupStep,
        keys: Sequence[Tuple[Value, ...]],
        virtual: VirtualTable,
    ) -> RowStream:
        """A page-by-page stream of the lookup's output rows.

        Where :meth:`run_lookup` fans every key batch out as one
        concurrent wave, the stream dispatches batches *one at a time*
        in key order and yields output rows as soon as they are
        determined — so an early-exiting consumer (EXISTS, LIMIT over
        point keys) skips the remaining batches entirely.  Batch
        boundaries, prompts, voting, and storage writes are identical
        to the materialized path; a drained stream returns exactly
        :meth:`run_lookup`'s rows.  Early exit needs no cleanup: cell
        writes happen per answered batch, so the store only ever holds
        fully-paid-for knowledge.
        """
        columns = tuple(step.key_columns) + tuple(step.attributes)
        return RowStream(columns, self._lookup_pages(step, list(keys), virtual))

    def _lookup_pages(
        self,
        step: LookupStep,
        keys: List[Tuple[Value, ...]],
        virtual: VirtualTable,
    ):
        attr_dtypes = [step.schema.column(name).dtype for name in step.attributes]
        batch_size = max(1, self._config.lookup_batch_size)
        votes = max(1, self._config.votes)

        served, fetch_indices = self._lookup_serving(step, keys)
        fetch_keys = [keys[index] for index in fetch_indices]
        batches: List[List[Tuple[Value, ...]]] = [
            list(fetch_keys[start : start + batch_size])
            for start in range(0, len(fetch_keys), batch_size)
        ]

        answer_by_index: Dict[int, Optional[List[Value]]] = {}
        emitted = 0

        def rows_until(bound: int) -> List[List[Value]]:
            """Output rows for keys below ``bound`` (all determined)."""
            nonlocal emitted
            out: List[List[Value]] = []
            for index in range(emitted, bound):
                values = (
                    served[index] if index in served else answer_by_index[index]
                )
                if values is not None:
                    out.append(list(keys[index]) + values)
            emitted = bound
            return out

        dispatched = 0
        try:
            for batch_number, batch in enumerate(batches):
                first_fetch = fetch_indices[batch_number * batch_size]
                if first_fetch > emitted:
                    yield rows_until(first_fetch)  # leading served-only run
                self._meter.record_pages(fetched=votes)
                sampled = self._dispatcher.run_wave(
                    self._lookup_requests(step, batch, attr_dtypes, votes)
                )
                dispatched += 1
                merged = (
                    consistency.vote_rows(sampled) if votes > 1 else sampled[0]
                )
                for offset, (key, answer) in enumerate(zip(batch, merged)):
                    index = fetch_indices[batch_number * batch_size + offset]
                    answer_by_index[index] = self._settle_lookup_answer(
                        step, key, answer, virtual
                    )
                next_start = (batch_number + 1) * batch_size
                bound = (
                    fetch_indices[next_start]
                    if next_start < len(fetch_indices)
                    else len(keys)
                )
                if bound > emitted:
                    yield rows_until(bound)
            if emitted < len(keys):
                yield rows_until(len(keys))  # served-only tail (or no batches)
        except GeneratorExit:
            # Early exit: the undispatched batches are the saving —
            # surface it in the same pages counters scans use (one
            # lookup batch = one page of lookup output).
            self._meter.record_pages(
                skipped=(len(batches) - dispatched) * votes
            )

    # ------------------------------------------------------------------
    # Judge
    # ------------------------------------------------------------------

    def run_judge(
        self, step: JudgeStep, keys: Sequence[Tuple[Value, ...]]
    ) -> Dict[Tuple, Optional[bool]]:
        """Judge a predicate for each key; returns normalized-key verdicts."""
        verdicts: Dict[Tuple, Optional[bool]] = {}
        batch_size = max(1, self._config.lookup_batch_size)
        votes = max(1, self._config.votes)

        batches: List[List[Tuple[Value, ...]]] = [
            list(keys[start : start + batch_size])
            for start in range(0, len(keys), batch_size)
        ]

        def make_parse(batch_len: int):
            def parse_answer(completion: Completion):
                if parsing.looks_like_refusal(completion.text):
                    raise LLMProtocolError("refused judgement")
                return parsing.parse_judge_completion(completion.text, batch_len)

            return parse_answer

        requests: List[CompletionRequest] = []
        for batch in batches:
            prompt = build_judge_prompt(
                JudgeRequest(
                    schema=step.schema,
                    key_columns=tuple(step.key_columns),
                    condition_sql=step.condition_sql,
                    entities=tuple(batch),
                )
            )
            parse_answer = make_parse(len(batch))
            for vote in range(votes):
                requests.append(
                    CompletionRequest(
                        prompt=prompt,
                        sample_index=vote,
                        parse=parse_answer,
                        kind="judge-batch",
                    )
                )
        answers = self._dispatcher.run_wave(requests)

        for batch_number, batch in enumerate(batches):
            sampled = answers[batch_number * votes : (batch_number + 1) * votes]
            merged = consistency.vote_verdicts(sampled) if votes > 1 else sampled[0]
            for key, verdict in zip(batch, merged):
                verdicts[normalize_key(key)] = verdict
        return verdicts


class _ShardOutcome:
    """One shard chain's result: rows plus bookkeeping for the merge.

    ``pages`` is what the chain paid this run; ``cost`` is what a cold
    run would pay (a chain served from a shard fragment paid 0 pages
    but carries the fragment's original cost, which is what the merged
    whole-scan fragment should report as ``source_calls``).
    """

    __slots__ = ("rows", "pages", "cost", "storable", "warnings")

    def __init__(
        self,
        rows: List[List[Value]],
        pages: int,
        cost: int,
        storable: bool,
        warnings: Optional[List[str]] = None,
    ):
        self.rows = rows
        self.pages = pages
        self.cost = cost
        self.storable = storable
        self.warnings: List[str] = warnings or []


# ---------------------------------------------------------------------------
# Helpers shared with the executor
# ---------------------------------------------------------------------------


def parse_enumerate(completion: Completion, dtypes):
    """Parse an enumeration page, treating refusals as protocol errors."""
    if parsing.looks_like_refusal(completion.text):
        raise LLMProtocolError("refused enumeration")
    return parsing.parse_enumerate_completion(completion.text, dtypes)


def build_local_table(
    binding: str,
    virtual_schema: TableSchema,
    columns: Sequence[str],
    rows: Sequence[Sequence[Value]],
) -> Table:
    """A local table holding retrieved rows for one binding.

    All columns are nullable (the model may not know a value) and keep
    the virtual column types.
    """
    local_columns = tuple(
        Column(
            name=virtual_schema.column(name).name,
            dtype=virtual_schema.column(name).dtype,
            nullable=True,
            description=virtual_schema.column(name).description,
        )
        for name in columns
    )
    schema = TableSchema(
        name=f"retrieved_{binding}",
        columns=local_columns,
        description=f"rows retrieved from the model for binding {binding}",
    )
    table = Table(schema)
    for row in rows:
        try:
            table.insert(row, coerce=True)
        except Exception:
            continue  # drop rows that cannot fit the schema even coerced
    return table


def normalize_key(values: Tuple[Value, ...]) -> Tuple:
    """Join-key normalization: numbers cross-type, text case-insensitive."""
    normalized = []
    for value in values:
        if isinstance(value, str):
            normalized.append(("t", value.strip().lower()))
        elif isinstance(value, bool):
            normalized.append(("b", value))
        elif isinstance(value, (int, float)):
            normalized.append(("n", float(value)))
        else:
            normalized.append(("0", None))
    return tuple(normalized)
