"""LLM-backed physical operators.

``ModelClient`` is the runtime that turns plan steps into model traffic:

* :meth:`run_scan` — paginated enumeration with truncation recovery and
  a runaway guard;
* :meth:`run_lookup` — batched lookups with optional self-consistency
  voting;
* :meth:`run_judge` — batched predicate judgements with voting.

All calls flow through one wrapped model (cache, then meter), so cost
accounting and caching behave identically across operators.  Refused or
unusable completions are retried with a bumped sample index (beliefs are
unchanged at temperature 0; the retry nonce only re-rolls the refusal).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config import EngineConfig
from repro.core import consistency
from repro.core.validation import Validator
from repro.core.virtual import VirtualTable
from repro.errors import ExecutionError, LLMProtocolError
from repro.llm.accounting import MeteredModel, UsageMeter
from repro.llm.cache import CachingModel, PromptCache
from repro.llm.interface import Completion, CompletionOptions, LanguageModel
from repro.plan.physical import JudgeStep, LookupStep, ScanStep
from repro.prompts import parsing
from repro.prompts.enumerate import EnumerateRequest, build_enumerate_prompt
from repro.prompts.lookup import LookupRequest, build_lookup_prompt
from repro.prompts.predicate import JudgeRequest, build_judge_prompt
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import Value

#: Offset added to the sample index per retry so a refusal re-rolls.
_RETRY_NONCE = 1009


class ModelClient:
    """Executes retrieval steps against a language model."""

    def __init__(
        self,
        model: LanguageModel,
        meter: UsageMeter,
        config: EngineConfig,
        cache: Optional[PromptCache] = None,
        validator: Optional[Validator] = None,
    ):
        inner: LanguageModel = model
        if config.enable_cache:
            inner = CachingModel(inner, cache)
        self._model = MeteredModel(inner, meter)
        self._config = config
        self._validator = validator or Validator(enabled=config.enable_validation)
        self.warnings: List[str] = []

    @property
    def validator(self) -> Validator:
        return self._validator

    # ------------------------------------------------------------------
    # Low-level call with retry
    # ------------------------------------------------------------------

    def _options(self, sample_index: int) -> CompletionOptions:
        return CompletionOptions(
            temperature=self._effective_temperature(),
            max_tokens=self._config.max_output_tokens,
            sample_index=sample_index,
        )

    def _effective_temperature(self) -> float:
        if self._config.votes > 1:
            # Voting needs independent samples; greedy samples are identical.
            return max(self._config.temperature, 0.7)
        return self._config.temperature

    def _complete_with_retry(self, prompt: str, sample_index: int, parse):
        """Call the model, parse; retry on refusal/unusable output."""
        last_error: Optional[Exception] = None
        for attempt in range(self._config.max_retries + 1):
            completion = self._model.complete(
                prompt, self._options(sample_index + attempt * _RETRY_NONCE)
            )
            try:
                return parse(completion)
            except LLMProtocolError as exc:
                last_error = exc
        raise ExecutionError(
            f"model output unusable after {self._config.max_retries + 1} "
            f"attempts: {last_error}"
        )

    # ------------------------------------------------------------------
    # Scan
    # ------------------------------------------------------------------

    def run_scan(self, step: ScanStep, virtual: VirtualTable) -> Table:
        """Materialize a scan step as a local table."""
        dtypes = [step.schema.column(name).dtype for name in step.columns]
        rows: List[List[Value]] = []
        pages_fetched = 0
        est_pages = max(1, -(-int(step.est_rows) // self._config.page_size))
        max_pages = est_pages * self._config.scan_guard_factor + 4
        target = step.limit_hint

        while True:
            request = EnumerateRequest(
                schema=step.schema,
                columns=step.columns,
                condition_sql=step.pushdown_sql,
                order=step.order,
                after_index=len(rows),
                max_rows=self._config.page_size,
            )
            prompt = build_enumerate_prompt(request)

            def parse_page(completion: Completion):
                return parse_enumerate(completion, dtypes)

            page = self._complete_with_retry(prompt, sample_index=0, parse=parse_page)
            if page.malformed_lines:
                self.warnings.append(
                    f"scan {step.table_name}: {page.malformed_lines} malformed "
                    f"line(s) skipped"
                )
            got_rows = len(page.rows) > 0
            rows.extend(page.rows)
            pages_fetched += 1
            if target is not None and len(rows) >= target:
                break
            if page.complete and not page.has_more:
                break
            if not page.complete and not got_rows:
                # Truncated before any row: the page size does not fit the
                # output budget; give up rather than loop.
                self.warnings.append(
                    f"scan {step.table_name}: page truncated before any row"
                )
                break
            if pages_fetched >= max_pages:
                self.warnings.append(
                    f"scan {step.table_name}: aborted after {pages_fetched} pages "
                    f"(guard limit)"
                )
                break

        if target is not None:
            rows = rows[:target]
        validated = [
            self._validator.validate_row(row, virtual, step.columns) for row in rows
        ]
        return build_local_table(step.binding, step.schema, step.columns, validated)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def run_lookup(
        self,
        step: LookupStep,
        keys: Sequence[Tuple[Value, ...]],
        virtual: VirtualTable,
    ) -> Table:
        """Materialize a lookup step: one row per found key."""
        attr_dtypes = [step.schema.column(name).dtype for name in step.attributes]
        columns = tuple(step.key_columns) + tuple(step.attributes)
        out_rows: List[List[Value]] = []
        batch_size = max(1, self._config.lookup_batch_size)
        votes = max(1, self._config.votes)

        for start in range(0, len(keys), batch_size):
            batch = list(keys[start : start + batch_size])
            request = LookupRequest(
                schema=step.schema,
                key_columns=tuple(step.key_columns),
                attributes=tuple(step.attributes),
                entities=tuple(batch),
            )
            prompt = build_lookup_prompt(request)
            sampled: List[List[Optional[List[Value]]]] = []
            for vote in range(votes):

                def parse_answer(completion: Completion):
                    if parsing.looks_like_refusal(completion.text):
                        raise LLMProtocolError("refused lookup")
                    return parsing.parse_lookup_completion(
                        completion.text, len(batch), attr_dtypes
                    )

                sampled.append(
                    self._complete_with_retry(
                        prompt, sample_index=vote, parse=parse_answer
                    )
                )
            merged = (
                consistency.vote_rows(sampled) if votes > 1 else sampled[0]
            )
            for key, answer in zip(batch, merged):
                if answer is None:
                    continue  # model does not know this entity
                validated = self._validator.validate_row(
                    answer, virtual, step.attributes
                )
                out_rows.append(list(key) + validated)
        return build_local_table(step.binding, step.schema, columns, out_rows)

    # ------------------------------------------------------------------
    # Judge
    # ------------------------------------------------------------------

    def run_judge(
        self, step: JudgeStep, keys: Sequence[Tuple[Value, ...]]
    ) -> Dict[Tuple, Optional[bool]]:
        """Judge a predicate for each key; returns normalized-key verdicts."""
        verdicts: Dict[Tuple, Optional[bool]] = {}
        batch_size = max(1, self._config.lookup_batch_size)
        votes = max(1, self._config.votes)
        for start in range(0, len(keys), batch_size):
            batch = list(keys[start : start + batch_size])
            request = JudgeRequest(
                schema=step.schema,
                key_columns=tuple(step.key_columns),
                condition_sql=step.condition_sql,
                entities=tuple(batch),
            )
            prompt = build_judge_prompt(request)
            sampled: List[List[Optional[bool]]] = []
            for vote in range(votes):

                def parse_answer(completion: Completion):
                    if parsing.looks_like_refusal(completion.text):
                        raise LLMProtocolError("refused judgement")
                    return parsing.parse_judge_completion(completion.text, len(batch))

                sampled.append(
                    self._complete_with_retry(
                        prompt, sample_index=vote, parse=parse_answer
                    )
                )
            merged = (
                consistency.vote_verdicts(sampled) if votes > 1 else sampled[0]
            )
            for key, verdict in zip(batch, merged):
                verdicts[normalize_key(key)] = verdict
        return verdicts


# ---------------------------------------------------------------------------
# Helpers shared with the executor
# ---------------------------------------------------------------------------


def parse_enumerate(completion: Completion, dtypes):
    """Parse an enumeration page, treating refusals as protocol errors."""
    if parsing.looks_like_refusal(completion.text):
        raise LLMProtocolError("refused enumeration")
    return parsing.parse_enumerate_completion(completion.text, dtypes)


def build_local_table(
    binding: str,
    virtual_schema: TableSchema,
    columns: Sequence[str],
    rows: Sequence[Sequence[Value]],
) -> Table:
    """A local table holding retrieved rows for one binding.

    All columns are nullable (the model may not know a value) and keep
    the virtual column types.
    """
    local_columns = tuple(
        Column(
            name=virtual_schema.column(name).name,
            dtype=virtual_schema.column(name).dtype,
            nullable=True,
            description=virtual_schema.column(name).description,
        )
        for name in columns
    )
    schema = TableSchema(
        name=f"retrieved_{binding}",
        columns=local_columns,
        description=f"rows retrieved from the model for binding {binding}",
    )
    table = Table(schema)
    for row in rows:
        try:
            table.insert(row, coerce=True)
        except Exception:
            continue  # drop rows that cannot fit the schema even coerced
    return table


def normalize_key(values: Tuple[Value, ...]) -> Tuple:
    """Join-key normalization: numbers cross-type, text case-insensitive."""
    normalized = []
    for value in values:
        if isinstance(value, str):
            normalized.append(("t", value.strip().lower()))
        elif isinstance(value, bool):
            normalized.append(("b", value))
        elif isinstance(value, (int, float)):
            normalized.append(("n", float(value)))
        else:
            normalized.append(("0", None))
    return tuple(normalized)
