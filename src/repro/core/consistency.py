"""Self-consistency voting.

Sampling the same lookup k times at temperature > 0 and taking a
majority per cell averages away i.i.d. decoding errors (it cannot repair
knowledge gaps — those are the same in every sample).  The engine votes
at the level of parsed, typed cells, not raw text, so formatting
variance never splits the vote.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.relational.types import Value


def _ballot_key(value: Value) -> Tuple:
    """Equality key for voting: numeric cross-type, text exact."""
    if value is None:
        return ("null",)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("num", float(value))
    return ("text", value)


def majority_vote(values: Sequence[Value]) -> Value:
    """The most common value; ties break toward the earliest seen.

    An empty ballot returns None.
    """
    counts: Dict[Tuple, int] = {}
    first_seen: Dict[Tuple, int] = {}
    originals: Dict[Tuple, Value] = {}
    for position, value in enumerate(values):
        key = _ballot_key(value)
        counts[key] = counts.get(key, 0) + 1
        if key not in first_seen:
            first_seen[key] = position
            originals[key] = value
    if not counts:
        return None
    best = min(counts, key=lambda key: (-counts[key], first_seen[key]))
    return originals[best]


def vote_rows(
    sampled_slots: Sequence[Sequence[Optional[List[Value]]]],
) -> List[Optional[List[Value]]]:
    """Merge k sampled lookup answers into one by per-cell majority.

    ``sampled_slots[s][e]`` is sample ``s``'s answer for entity ``e``
    (None = the model answered UNKNOWN or skipped it).  An entity is
    considered known when a strict majority of samples produced an
    answer; its cells are then voted independently across the answering
    samples.
    """
    if not sampled_slots:
        return []
    entity_count = max(len(sample) for sample in sampled_slots)
    merged: List[Optional[List[Value]]] = []
    for entity in range(entity_count):
        answers = [
            sample[entity]
            for sample in sampled_slots
            if entity < len(sample) and sample[entity] is not None
        ]
        if 2 * len(answers) <= len(sampled_slots):
            merged.append(None)
            continue
        width = max(len(answer) for answer in answers)
        cells: List[Value] = []
        for index in range(width):
            ballot = [answer[index] for answer in answers if index < len(answer)]
            cells.append(majority_vote(ballot))
        merged.append(cells)
    return merged


def vote_verdicts(
    sampled_verdicts: Sequence[Sequence[Optional[bool]]],
) -> List[Optional[bool]]:
    """Merge k sampled judgement answers by per-entity majority."""
    if not sampled_verdicts:
        return []
    entity_count = max(len(sample) for sample in sampled_verdicts)
    merged: List[Optional[bool]] = []
    for entity in range(entity_count):
        ballot = [
            sample[entity]
            for sample in sampled_verdicts
            if entity < len(sample) and sample[entity] is not None
        ]
        if not ballot:
            merged.append(None)
            continue
        yes = sum(1 for verdict in ballot if verdict)
        no = len(ballot) - yes
        if yes == no:
            merged.append(None)
        else:
            merged.append(yes > no)
    return merged
