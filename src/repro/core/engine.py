"""The public engine API.

Typical use::

    from repro import LLMStorageEngine, EngineConfig
    from repro.llm import SimulatedLLM, World

    engine = LLMStorageEngine(model)
    engine.register_virtual_table(countries_schema, row_estimate=195)
    result = engine.execute(
        "SELECT name, population FROM countries "
        "WHERE continent = 'Europe' ORDER BY population DESC LIMIT 5"
    )
    print(result.render())
    print(engine.explain("SELECT COUNT(*) FROM countries"))

No rows are ever stored: every query is compiled into retrieval prompts
answered by the model plus local relational compute over the answers.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

if TYPE_CHECKING:
    from repro.relational.table import Table

from repro.config import EngineConfig
from repro.core.executor import PlanExecutor
from repro.core.operators import ModelClient
from repro.core.results import QueryResult
from repro.core.session import EngineSession
from repro.core.validation import Validator
from repro.core.virtual import ColumnConstraint, VirtualTable
from repro.llm.accounting import Budget, PriceModel, UsageMeter, UsageSnapshot
from repro.llm.cache import resolve_model_name
from repro.llm.interface import LanguageModel
from repro.plan.cost import TableStats
from repro.plan.explain import explain_plan
from repro.plan.optimizer import Optimizer
from repro.relational.catalog import Catalog
from repro.relational.schema import TableSchema
from repro.runtime.scheduler import (
    CancellationToken,
    QueryOutcome,
    QueryScheduler,
)
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.sql.printer import print_statement
from repro.storage.normalize import canonical_sql_key
from repro.storage.tier import StorageTier


class LLMStorageEngine:
    """SQL over virtual tables stored in a language model."""

    name = "decomposed"

    def __init__(
        self,
        model: LanguageModel,
        config: EngineConfig = EngineConfig(),
        price_model: PriceModel = PriceModel(),
        budget: Optional[Budget] = None,
        storage: Optional[StorageTier] = None,
    ):
        self._session = EngineSession(
            model=model,
            config=config,
            price_model=price_model,
            budget=budget,
            storage=storage,
        )
        self._config = config
        self._catalog = Catalog()
        self._virtuals: Dict[str, VirtualTable] = {}
        self._materialized: Dict[str, "Table"] = {}
        self._catalog_scope = ""
        # Tables already warned about for DEFAULT_ROW_COUNT pricing —
        # the warning fires once per table per engine, not per query.
        self._warned_default_guess: set = set()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_virtual_table(
        self,
        schema: TableSchema,
        row_estimate: Optional[int] = None,
        constraints: Optional[Dict[str, ColumnConstraint]] = None,
    ) -> None:
        """Declare a virtual table: schema + optional stats/constraints."""
        virtual = VirtualTable.build(
            schema, row_estimate=row_estimate, constraints=constraints
        )
        self._catalog.register_virtual(schema)
        self._virtuals[schema.name.lower()] = virtual
        # A registration changes what queries can mean: the catalog
        # fingerprint moves, invalidating every stored fragment/result
        # of the old catalog — without wiping a shared persistent store
        # (a restarted process re-registering the same catalog lands on
        # the same fingerprint and reuses it).
        self._refresh_catalog_scope()

    def register_materialized_table(self, table) -> None:
        """Register a locally-stored table for hybrid queries.

        Materialized tables cost zero model calls and can drive
        lookup-joins into virtual tables (e.g. join your CSV of customer
        countries against the model-stored ``countries``).
        """
        self._catalog.register_table(table)
        self._materialized[table.schema.name.lower()] = table
        self._refresh_catalog_scope()

    def register_world_schemas(self, world, use_true_counts: bool = True) -> None:
        """Register every table of a world as virtual.

        A convenience for experiments: the engine receives the schemas
        (and, as a practitioner would, rough row-count estimates) but no
        data — all rows still come from the model.
        """
        for schema in world.schemas():
            estimate = world.row_count(schema.name) if use_true_counts else None
            self.register_virtual_table(schema, row_estimate=estimate)

    def _refresh_catalog_scope(self) -> None:
        """Recompute the catalog fingerprint keying stored entries.

        A stable digest of everything registered — virtual schemas
        (columns, keys, descriptions, constraints, row estimates) and
        materialized tables including their rows.  Storage keys carry
        it, so entries materialized under one catalog are invisible
        under any other, while two processes (or a restart) registering
        identical catalogs share entries byte-for-byte.  Deliberately
        built from sorted primitives, never ``repr`` of sets, so the
        digest is identical across processes regardless of hash
        randomization.
        """

        def describe_schema(schema: TableSchema) -> tuple:
            return (
                schema.name.lower(),
                tuple(
                    (c.name, c.dtype.value, c.nullable, c.description)
                    for c in schema.columns
                ),
                schema.primary_key,
                schema.description,
            )

        parts: list = []
        for name in sorted(self._virtuals):
            virtual = self._virtuals[name]
            constraints = []
            for column in sorted(virtual.constraints):
                constraint = virtual.constraints[column]
                allowed = (
                    tuple(sorted(map(repr, constraint.allowed_values)))
                    if constraint.allowed_values is not None
                    else None
                )
                constraints.append(
                    (
                        column.lower(),
                        constraint.min_value,
                        constraint.max_value,
                        allowed,
                        constraint.max_length,
                    )
                )
            parts.append(
                (
                    "virtual",
                    describe_schema(virtual.schema),
                    virtual.stats.row_count,
                    tuple(constraints),
                )
            )
        for name in sorted(self._materialized):
            table = self._materialized[name]
            parts.append(
                (
                    "table",
                    describe_schema(table.schema),
                    tuple(tuple(row) for row in table.rows),
                )
            )
        digest = hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()
        self._catalog_scope = digest[:16]
        # Re-anchor the statistics catalog: stats are keyed by catalog
        # fingerprint (a changed registration means different tables /
        # estimates, so old observations must not leak in), under a
        # leading "stats" component that keeps them outside the
        # generation-stamped cache namespace — cache invalidation drops
        # answers, not what was learned about the data.
        scope = self._session.storage.scope
        self._session.stats_catalog.set_scope(
            (
                "stats",
                scope.level,
                scope.tenant,
                resolve_model_name(self._session.model),
                self._catalog_scope,
            )
        )

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def catalog_scope(self) -> str:
        """Fingerprint of the registered catalog, as used in storage keys."""
        return self._catalog_scope

    @property
    def config(self) -> EngineConfig:
        return self._config

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, sql: Union[str, ast.Statement]) -> QueryResult:
        """Execute a query; returns rows plus per-query usage."""
        return self._execute_statement(sql, self._session.query_meter())

    def execute_many(
        self,
        statements: Sequence[Union[str, ast.Statement]],
        jobs: Optional[int] = None,
        priorities: Optional[Sequence[int]] = None,
        timeout_s: Optional[Union[float, Sequence[Optional[float]]]] = None,
        collect_outcomes: bool = False,
    ) -> Union[List[QueryResult], List[QueryOutcome]]:
        """Serve many statements concurrently against this one session.

        Up to ``jobs`` statements (default
        :attr:`~repro.config.EngineConfig.serve_jobs`) run at once,
        admitted FIFO (``priorities`` reorders admission, higher first).
        All queries share the session's single ``max_in_flight``
        dispatcher budget, prompt cache, storage tier, and cross-query
        single-flight registry — overlapping queries pay for each
        identical scan page / lookup batch once.  Results are
        byte-identical to executing the statements serially, in input
        order; each :class:`QueryResult` carries *its own* attributed
        usage (the per-query meters sum to the session meter exactly,
        except wall-clock: the session clock advances by the batch's
        elapsed critical path, not the sum of overlapped per-query
        walls).

        ``timeout_s`` (scalar or per-statement) cancels a query at its
        next model call once exceeded; the rest of the batch is
        unaffected.  Failures raise the first error in input order
        after the batch settles, unless ``collect_outcomes=True``, in
        which case per-query :class:`~repro.runtime.scheduler.\
QueryOutcome` objects are returned instead.
        """
        statements = list(statements)
        if jobs is None:
            jobs = self._config.serve_jobs
        scheduler = QueryScheduler(
            run_query=self._execute_statement,
            session_meter=self._session.meter,
            jobs=jobs,
            # With continuous batching the shared slot pool, not the
            # per-query dispatcher budget, bounds simultaneous model
            # calls — the batch makespan prices against it.
            max_in_flight=self._session.serving_slots,
            registry=(
                self._session.obs.registry
                if self._session.obs.enabled
                else None
            ),
        )
        outcomes = scheduler.execute(
            statements, priorities=priorities, timeout_s=timeout_s
        )
        if collect_outcomes:
            return outcomes
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
        return [outcome.result for outcome in outcomes]

    def _execute_statement(
        self,
        sql: Union[str, ast.Statement],
        meter: UsageMeter,
        cancel: Optional[CancellationToken] = None,
        tracer=None,
        use_result_cache: bool = True,
        analyze_sink: Optional[dict] = None,
    ) -> QueryResult:
        """One statement through parse → bind → plan → execute.

        ``meter`` is the query's own child meter (usage rolls up into
        the session); ``cancel`` is checked before every model call.
        ``tracer`` overrides the session's tracer (EXPLAIN ANALYZE
        forces a real one even when tracing is off);
        ``use_result_cache=False`` bypasses the result-cache *read*
        only — the computed result is still written back;
        ``analyze_sink`` receives the physical plan under ``"plan"``.
        """
        sql_text = sql if isinstance(sql, str) else print_statement(sql)
        obs = self._session.obs
        if tracer is None:
            tracer = obs.query_tracer(sql_text)
        with tracer.span("query"):
            result = self._run_statement(
                sql, sql_text, meter, cancel, tracer,
                use_result_cache, analyze_sink,
            )
        if tracer.enabled and tracer.trace is not None:
            result.trace = tracer.trace
            if obs.enabled:
                obs.record_query(sql_text, result.usage, tracer.trace)
        return result

    def _run_statement(
        self,
        sql: Union[str, ast.Statement],
        sql_text: str,
        meter: UsageMeter,
        cancel: Optional[CancellationToken],
        tracer,
        use_result_cache: bool,
        analyze_sink: Optional[dict],
    ) -> QueryResult:
        with tracer.span("parse"):
            statement = parse(sql) if isinstance(sql, str) else sql

        with tracer.span("bind"):
            bound = Binder(self._catalog).bind(statement)

        storage = self._session.storage
        result_key = None
        if storage.result_cache_active(self._config):
            result_key = StorageTier.result_key(
                resolve_model_name(self._session.model),
                self._config,
                canonical_sql_key(bound.query),
                catalog=self._catalog_scope,
            )
        if result_key is not None and use_result_cache:
            with tracer.span("storage", kind="result") as probe:
                cached = storage.get_result(result_key)
                probe.set_tag(
                    "outcome", "hit" if cached is not None else "miss"
                )
            if cached is not None:
                from repro.relational.table import Table

                meter.record_result_cache_hit(calls_saved=cached.calls)
                return QueryResult(
                    # Rows were validated when stored; skip re-validation
                    # on the hot path whose purpose is cheap repeats.
                    table=Table.from_validated(cached.schema, cached.rows),
                    usage=UsageSnapshot(
                        result_cache_hits=1, calls_saved=cached.calls
                    ),
                    explain_text=cached.explain_text,
                    warnings=list(cached.warnings),
                    sql=sql_text,
                    engine_name=self.name,
                )

        with tracer.span("optimize"):
            optimizer = self._optimizer()
            plan = optimizer.plan(bound)
        if analyze_sink is not None:
            analyze_sink["plan"] = plan
        stats_warnings = []
        for table in sorted(
            optimizer.default_guess_tables - self._warned_default_guess
        ):
            self._warned_default_guess.add(table)
            stats_warnings.append(
                f"stats[default-guess]: table {table!r} priced off the "
                f"default row-count guess; register a row_estimate or "
                f"run with --adaptive to learn the real cardinality"
            )

        validator = Validator(enabled=self._config.enable_validation)
        # Under continuous batching the shared slot pool is the
        # admission control: the FlightBudget semaphore would cap
        # coalesced waves at max_in_flight, so it stays out of the
        # stack and the batcher's slots bound raw calls instead.
        batcher = self._session.batcher
        client = ModelClient(
            model=self._session.model,
            meter=meter,
            config=self._config,
            cache=self._session.cache,
            validator=validator,
            storage=storage,
            dedup=self._session.dedup,
            flight_budget=(
                None if batcher is not None else self._session.flight_budget
            ),
            batcher=batcher,
            cancel=cancel,
            catalog_scope=self._catalog_scope,
            tracer=tracer,
            registry=(
                self._session.obs.registry
                if self._session.obs.enabled
                else None
            ),
            stats_catalog=self._session.stats_catalog,
        )
        # Rebind the trace clock to the query's simulated wall: span
        # timestamps become model milliseconds, deterministic at any
        # max_in_flight (setup spans before this read as time 0).
        tracer.set_clock(client.ledger.now)
        executor = PlanExecutor(client, self._virtuals, self._materialized)

        try:
            with tracer.span("execute"):
                table = executor.execute(plan)
        finally:
            client.close()
            self._session.stats_catalog.flush()
        # The child meter *is* the attribution: no session-level
        # snapshot differencing, which misattributes when queries
        # interleave on one session.
        usage = meter.snapshot()

        warnings = stats_warnings + list(client.warnings)
        if validator.report.nulled_cells:
            warnings.append(
                f"validation nulled {validator.report.nulled_cells} cell(s)"
            )
            warnings.extend(validator.report.notes[:3])
        explain_text = explain_plan(plan)
        if result_key is not None:
            storage.put_result(
                result_key,
                schema=table.schema,
                rows=table.rows,
                explain_text=explain_text,
                warnings=warnings,
                calls=usage.calls,
            )
        return QueryResult(
            table=table,
            usage=usage,
            explain_text=explain_text,
            warnings=warnings,
            sql=sql_text,
            engine_name=self.name,
        )

    def explain(
        self, sql: Union[str, ast.Statement], analyze: bool = False
    ) -> str:
        """Plan a query; with ``analyze=True``, execute it and render
        estimated vs actual rows/pages/calls/wall per plan step.

        The analyze path always runs the plan (the result-cache read is
        bypassed so there are real spans to report; the computed result
        is still written back) under a query-local tracer, so it works
        whether or not session tracing is enabled.
        """
        if not analyze:
            statement = parse(sql) if isinstance(sql, str) else sql
            bound = Binder(self._catalog).bind(statement)
            return explain_plan(self._optimizer().plan(bound))

        from repro.obs.analyze import explain_analyze
        from repro.obs.trace import QueryTrace, QueryTracer

        sql_text = sql if isinstance(sql, str) else print_statement(sql)
        tracer = QueryTracer(QueryTrace(statement=sql_text))
        sink: dict = {}
        result = self._execute_statement(
            sql,
            self._session.query_meter(),
            tracer=tracer,
            use_result_cache=False,
            analyze_sink=sink,
        )
        return explain_analyze(sink["plan"], tracer.trace, result.usage)

    def plan(self, sql: Union[str, ast.Statement]):
        """The raw plan object (used by the cost-model experiments)."""
        statement = parse(sql) if isinstance(sql, str) else sql
        bound = Binder(self._catalog).bind(statement)
        return self._optimizer().plan(bound)

    def _optimizer(self) -> Optimizer:
        from repro.plan.cost import TableStats

        stats = {
            name: virtual.stats for name, virtual in self._virtuals.items()
        }
        for name, table in self._materialized.items():
            stats[name] = TableStats(row_count=len(table))
        storage = self._session.storage
        return Optimizer(
            self._catalog,
            stats,
            self._config,
            storage=storage if storage.materialize_active(self._config) else None,
            storage_scope=StorageTier.fragment_scope(
                resolve_model_name(self._session.model),
                self._config,
                self._catalog_scope,
            ),
            # Consultation is gated on enable_adaptive; recording is
            # not — a static session still learns (``.stats``) but its
            # plans never move.
            stats_catalog=(
                self._session.stats_catalog
                if self._config.enable_adaptive
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def usage(self) -> UsageSnapshot:
        """Cumulative usage across all queries of this engine."""
        return self._session.usage()

    @property
    def transport_description(self) -> str:
        """One line naming the active model transport and batching mode."""
        return self._session.describe_transport()

    def close(self) -> None:
        """Release serving resources (the continuous-batching pool).

        Idempotent.  Only needed when ``enable_continuous_batching`` is
        on — a closed pool rejects further raw model calls.
        """
        self._session.close()

    @property
    def observability(self):
        """The session's tracing/metrics hub (inactive by default)."""
        return self._session.obs

    def metrics_report(self) -> str:
        """Human-readable metrics + slow-query report (``.metrics``)."""
        return self._session.obs.render_report()

    @property
    def stats_catalog(self):
        """The session's online statistics catalog (always recording)."""
        return self._session.stats_catalog

    def stats_report(self) -> str:
        """Human-readable observed statistics (``.stats`` REPL command)."""
        return self._session.stats_catalog.describe()

    def prometheus_metrics(self) -> str:
        """The metrics registry in Prometheus text exposition format."""
        return self._session.obs.registry.to_prometheus()

    def export_trace(self, path) -> int:
        """Write buffered query traces as JSON lines; returns the span
        count written (0 when tracing is disabled)."""
        from repro.obs.export import write_trace_jsonl

        return write_trace_jsonl(path, self._session.obs.traces)

    def reset_usage(self) -> None:
        self._session.reset_usage()

    def clear_cache(self) -> None:
        """Drop the prompt cache and every materialized fragment/result."""
        self._session.clear_cache()

    @property
    def cache_stats(self):
        return self._session.cache.stats

    @property
    def storage(self) -> StorageTier:
        """The session's materialization tier (mode ``off`` when unused)."""
        return self._session.storage

    @property
    def storage_stats(self):
        return self._session.storage.snapshot()
