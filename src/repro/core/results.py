"""Query results with full accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.llm.accounting import UsageSnapshot
from repro.relational.table import Table

if TYPE_CHECKING:
    from repro.obs.trace import QueryTrace


@dataclass
class QueryResult:
    """What an engine returns for one query.

    Attributes:
        table: the result rows.
        usage: model usage attributed to this query (calls, tokens,
            simulated latency, dollar cost).
        explain_text: the plan that produced the result (empty for
            baselines without plans).
        warnings: anomalies encountered (malformed lines, guard trips,
            nulled implausible values, ...).
        sql: the query as received.
        engine_name: which engine produced this result.
        trace: the query's span tree when tracing was enabled
            (``None`` otherwise).
    """

    table: Table
    usage: UsageSnapshot
    explain_text: str = ""
    warnings: List[str] = field(default_factory=list)
    sql: str = ""
    engine_name: str = ""
    trace: Optional["QueryTrace"] = None

    @property
    def rows(self):
        return self.table.rows

    @property
    def column_names(self):
        return self.table.schema.column_names

    def render(self, max_rows: int = 20) -> str:
        """Result table plus a usage footer (for examples and docs)."""
        parts = [self.table.render_text(max_rows=max_rows)]
        parts.append(f"-- {self.usage.render()}")
        if self.warnings:
            parts.append(f"-- {len(self.warnings)} warning(s); first: {self.warnings[0]}")
        return "\n".join(parts)
