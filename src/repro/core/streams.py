"""Streaming row pipeline: pull-based pages with early termination.

The paper's dominant cost driver is how many tuples the model is asked
to produce.  A materialize-everything executor pays for every page of
an enumeration even when the consumer needs five rows; the streaming
pipeline lets retrieval operators produce rows *page by page* and lets
consumers stop the producer as soon as they have enough.

Three pieces compose:

* :class:`RowStream` — a pull iterator of row pages over one retrieval
  step.  Closing it early propagates into the producing generator
  (``GeneratorExit``), which is where operators write back
  partial-coverage fragments and account skipped pages, so early exit
  never loses paid-for work and never poisons the storage tier.
* :func:`materialized_stream` — adapts an already-local row set (a
  fragment serve, a hybrid local table) to the same page interface.
* :class:`RowQuota` — the consumer side: "stop once the local statement
  can already produce N output rows from the prefix".  The probe runs
  exact local compute, so satisfaction is decided on *output* rows
  (post-filter, post-dedup), not raw fetched rows.

Early exit is sound because eligible plans are prefix-stable: with no
aggregation, grouping, or local ordering, every input row maps to at
most one output row independently of later rows, and a deterministic
enumeration makes the streamed pages an exact prefix of the pages the
materialized path would fetch.  The first N output rows of the prefix
are therefore the first N output rows of the full scan — results stay
byte-identical; only the page count changes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.relational.types import Value

#: One page of validated rows.
Page = List[List[Value]]


class RowStream:
    """A pull-based stream of row pages from one retrieval step.

    Wraps a page iterator (usually a generator owned by an operator).
    Iteration yields non-empty pages; :meth:`close` stops the producer
    early — a generator producer observes ``GeneratorExit`` and runs
    its cleanup (fragment writeback, skipped-page accounting) exactly
    once, whether the stream was drained or cut short.
    """

    def __init__(self, columns: Sequence[str], pages: Iterable[Page]):
        self.columns: Tuple[str, ...] = tuple(columns)
        self._pages: Iterator[Page] = iter(pages)
        self._finished = False
        self.pages_yielded = 0
        self.rows_yielded = 0

    def next_page(self) -> Optional[Page]:
        """The next non-empty page, or None once the producer is done."""
        if self._finished:
            return None
        for page in self._pages:
            if not page:
                continue
            self.pages_yielded += 1
            self.rows_yielded += len(page)
            return page
        self._finished = True
        return None

    def __iter__(self) -> Iterator[Page]:
        while True:
            page = self.next_page()
            if page is None:
                return
            yield page

    @property
    def exhausted(self) -> bool:
        """True once the producer signalled it has no further pages."""
        return self._finished

    def close(self) -> None:
        """Stop the producer; safe to call after exhaustion (no-op)."""
        closer = getattr(self._pages, "close", None)
        if closer is not None:
            closer()
        self._finished = True

    def drain(self) -> List[List[Value]]:
        """Every remaining row (the materialized consumption mode)."""
        rows: List[List[Value]] = []
        for page in self:
            rows.extend(page)
        return rows


def materialized_stream(
    columns: Sequence[str],
    rows: Sequence[Sequence[Value]],
    page_size: int,
) -> RowStream:
    """A stream over rows that are already local (zero model traffic)."""
    size = max(1, page_size)

    def pages() -> Iterator[Page]:
        for start in range(0, len(rows), size):
            yield [list(row) for row in rows[start : start + size]]

    return RowStream(columns, pages())


class RowQuota:
    """An early-exit condition installed by a streaming consumer.

    ``needed`` is the number of *output* rows after which the producer
    may stop; ``probe`` maps the rows fetched so far to the number of
    output rows the local statement would produce from them.  The probe
    is monotone for eligible (prefix-stable) statements, so the first
    prefix that satisfies the quota already determines the final
    answer.
    """

    def __init__(self, needed: int, probe: Callable[[List[List[Value]]], int]):
        if needed < 1:
            raise ValueError(f"row quota must be >= 1; got {needed}")
        self.needed = needed
        self._probe = probe

    def satisfied(self, rows: List[List[Value]]) -> bool:
        return self._probe(rows) >= self.needed


def take_until(stream: RowStream, quota: Optional[RowQuota]) -> List[List[Value]]:
    """Consume ``stream`` until ``quota`` is satisfied (or it ends).

    Always leaves the stream closed, so producer cleanup (partial
    fragment writeback, page accounting) runs exactly once.  With no
    quota this is a plain drain.
    """
    if quota is None:
        return stream.drain()
    rows: List[List[Value]] = []
    try:
        for page in stream:
            rows.extend(page)
            if quota.satisfied(rows):
                break
    finally:
        stream.close()
    return rows
