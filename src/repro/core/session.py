"""Session state shared across the queries of one engine instance.

The session owns the usage meter (cumulative accounting, optional
budget), the prompt cache (reuse *across* queries is intentional:
repeated lookups of the same entities are a dominant cost in interactive
workloads), and the storage tier (:mod:`repro.storage`), which
materializes retrieved fragments and whole results so repeated traffic
stops paying model calls at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.config import EngineConfig
from repro.llm.accounting import Budget, PriceModel, UsageMeter, UsageSnapshot
from repro.llm.cache import PromptCache
from repro.llm.interface import LanguageModel
from repro.storage.tier import StorageTier


@dataclass
class EngineSession:
    """Model handle plus cumulative accounting, cache, and storage."""

    model: LanguageModel
    config: EngineConfig = field(default_factory=EngineConfig)
    price_model: PriceModel = field(default_factory=PriceModel)
    budget: Optional[Budget] = None
    storage: Optional[StorageTier] = None

    def __post_init__(self):
        self.meter = UsageMeter(self.price_model, self.budget)
        self.cache = PromptCache()
        if self.storage is None:
            self.storage = StorageTier.from_config(self.config)

    def usage(self) -> UsageSnapshot:
        """Cumulative usage, with the storage tier's counters folded in."""
        snapshot = self.meter.snapshot()
        storage = self.storage.snapshot()
        return replace(
            snapshot,
            result_cache_hits=storage.result_hits,
            fragment_hits=storage.fragment_hits,
            calls_saved=storage.calls_saved,
        )

    def reset_usage(self) -> None:
        self.meter.reset()
        self.storage.reset_counters()

    def clear_cache(self) -> None:
        self.cache.clear()
        self.storage.clear()
