"""Session state shared across the queries of one engine instance.

The session owns the usage meter (cumulative accounting, optional
budget) and the prompt cache (reuse *across* queries is intentional:
repeated lookups of the same entities are a dominant cost in interactive
workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import EngineConfig
from repro.llm.accounting import Budget, PriceModel, UsageMeter, UsageSnapshot
from repro.llm.cache import PromptCache
from repro.llm.interface import LanguageModel


@dataclass
class EngineSession:
    """Model handle plus cumulative accounting and cache."""

    model: LanguageModel
    config: EngineConfig = field(default_factory=EngineConfig)
    price_model: PriceModel = field(default_factory=PriceModel)
    budget: Optional[Budget] = None

    def __post_init__(self):
        self.meter = UsageMeter(self.price_model, self.budget)
        self.cache = PromptCache()

    def usage(self) -> UsageSnapshot:
        return self.meter.snapshot()

    def reset_usage(self) -> None:
        self.meter.reset()

    def clear_cache(self) -> None:
        self.cache.clear()
