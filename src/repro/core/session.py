"""Session state shared across the queries of one engine instance.

The session owns the usage meter (cumulative accounting, optional
budget), the prompt cache (reuse *across* queries is intentional:
repeated lookups of the same entities are a dominant cost in interactive
workloads), and the storage tier (:mod:`repro.storage`), which
materializes retrieved fragments and whole results so repeated traffic
stops paying model calls at all.

Under concurrent serving the session is additionally the sharing
boundary: one :class:`~repro.runtime.scheduler.FlightBudget` caps total
in-flight model calls across every query of the session at
``max_in_flight``, and one
:class:`~repro.runtime.scheduler.CrossQueryDedup` registry lets
overlapping queries join each other's identical in-flight calls instead
of paying twice.  Both are wired into every query — a session queried
from plain threads gets the same guarantees as one behind the
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.config import EngineConfig
from repro.llm.accounting import Budget, PriceModel, UsageMeter, UsageSnapshot
from repro.llm.cache import PromptCache, resolve_model_name
from repro.llm.interface import LanguageModel
from repro.llm.transport import as_transport, transport_label
from repro.obs.hub import Observability
from repro.runtime.batching import ContinuousBatcher
from repro.runtime.scheduler import CrossQueryDedup, FlightBudget
from repro.stats import StatisticsCatalog
from repro.storage.tier import StorageTier


@dataclass
class EngineSession:
    """Model handle plus cumulative accounting, cache, and storage."""

    model: LanguageModel
    config: EngineConfig = field(default_factory=EngineConfig)
    price_model: PriceModel = field(default_factory=PriceModel)
    budget: Optional[Budget] = None
    storage: Optional[StorageTier] = None

    def __post_init__(self):
        self.meter = UsageMeter(self.price_model, self.budget)
        self.cache = PromptCache()
        self.dedup = CrossQueryDedup()
        self.flight_budget = FlightBudget(self.config.max_in_flight)
        if self.storage is None:
            self.storage = StorageTier.from_config(self.config)
        # Observability is wired only when enabled: the meter observer,
        # tier counters, and in-flight gauges otherwise stay detached,
        # so the disabled path records nothing and checks nothing.
        self.obs = Observability.from_config(self.config)
        if self.obs.enabled:
            self.meter.set_observer(self.obs)
            self.storage.attach_registry(self.obs.registry)
            self.flight_budget.attach_registry(self.obs.registry)
        # Continuous batching: one shared slot pool per session, fed by
        # every query's BatchingGate.  When active, it replaces the
        # FlightBudget as the session's admission control for raw model
        # calls (the engine stops handing the budget to ModelClients),
        # so the pool's ``batch_slots`` — not ``max_in_flight`` — is
        # the serving layer's concurrency bound.
        self.batcher: Optional[ContinuousBatcher] = None
        if self.config.enable_continuous_batching:
            self.batcher = ContinuousBatcher(
                as_transport(self.model),
                slots=self.config.batch_slots,
                registry=(self.obs.registry if self.obs.enabled else None),
            )
        # Online statistics catalog: always recording (``.stats`` shows
        # what was observed either way); the optimizer only *consults*
        # it under ``enable_adaptive``.  Persistence piggybacks on the
        # sqlite storage file as its own logical store — and only when
        # adaptive is on, so a static session neither reads nor writes
        # stats rows and stays byte/cost-identical to before.
        stats_backend = None
        if (
            self.config.enable_adaptive
            and self.config.storage_backend == "sqlite"
            and self.config.storage_path
        ):
            from repro.storage.persistent import (
                SqliteBackend,
                StorageBackendError,
            )

            try:
                stats_backend = SqliteBackend(
                    self.config.storage_path,
                    self.config.storage_budget_bytes,
                    store="stats",
                )
            except StorageBackendError:
                stats_backend = None  # memory-only catalog; never an error
        self.stats_catalog = StatisticsCatalog(stats_backend)

    def query_meter(self, forward_wall: bool = True) -> UsageMeter:
        """A child meter attributing one query's usage.

        Everything the query records rolls up into the session meter;
        ``forward_wall=False`` (the serving layer) keeps the query's
        critical path out of the session clock, which then receives one
        batch makespan instead of a sum of overlapped walls.
        """
        return self.meter.child(forward_wall=forward_wall)

    @property
    def serving_slots(self) -> int:
        """Concurrent-model-call width the serving layer prices against.

        With continuous batching the shared pool is the bound (its
        slots are what limit simultaneous raw calls); otherwise the
        classic ``max_in_flight`` dispatcher budget is.
        """
        if self.batcher is not None:
            return max(self.config.max_in_flight, self.config.batch_slots)
        return self.config.max_in_flight

    def describe_transport(self) -> str:
        """One line naming the model boundary (``.storage``, demos)."""
        if getattr(self.model, "is_transport", False):
            text = self.model.describe()
        else:
            text = f"in-process {resolve_model_name(self.model)}"
        if self.batcher is not None:
            text += (
                f"; continuous batching over {self.batcher.slots} slot(s)"
            )
        return text

    def close(self) -> None:
        """Release serving resources (the continuous batcher's task)."""
        if self.batcher is not None:
            self.batcher.close()

    def usage(self) -> UsageSnapshot:
        """Cumulative usage, with the storage tier's counters folded in."""
        snapshot = self.meter.snapshot()
        storage = self.storage.snapshot()
        return replace(
            snapshot,
            result_cache_hits=storage.result_hits,
            fragment_hits=storage.fragment_hits,
            calls_saved=storage.calls_saved,
            persistent_hits=storage.persistent_hits,
            persistent_misses=storage.persistent_misses,
            invalidations=storage.invalidations,
            latency_summary=self.obs.latency_summary(),
            transport=transport_label(self.model),
        )

    def reset_usage(self) -> None:
        self.meter.reset()
        self.storage.reset_counters()

    def clear_cache(self) -> None:
        self.cache.clear()
        self.storage.clear()
