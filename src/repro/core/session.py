"""Session state shared across the queries of one engine instance.

The session owns the usage meter (cumulative accounting, optional
budget), the prompt cache (reuse *across* queries is intentional:
repeated lookups of the same entities are a dominant cost in interactive
workloads), and the storage tier (:mod:`repro.storage`), which
materializes retrieved fragments and whole results so repeated traffic
stops paying model calls at all.

Under concurrent serving the session is additionally the sharing
boundary: one :class:`~repro.runtime.scheduler.FlightBudget` caps total
in-flight model calls across every query of the session at
``max_in_flight``, and one
:class:`~repro.runtime.scheduler.CrossQueryDedup` registry lets
overlapping queries join each other's identical in-flight calls instead
of paying twice.  Both are wired into every query — a session queried
from plain threads gets the same guarantees as one behind the
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.config import EngineConfig
from repro.llm.accounting import Budget, PriceModel, UsageMeter, UsageSnapshot
from repro.llm.cache import PromptCache
from repro.llm.interface import LanguageModel
from repro.obs.hub import Observability
from repro.runtime.scheduler import CrossQueryDedup, FlightBudget
from repro.storage.tier import StorageTier


@dataclass
class EngineSession:
    """Model handle plus cumulative accounting, cache, and storage."""

    model: LanguageModel
    config: EngineConfig = field(default_factory=EngineConfig)
    price_model: PriceModel = field(default_factory=PriceModel)
    budget: Optional[Budget] = None
    storage: Optional[StorageTier] = None

    def __post_init__(self):
        self.meter = UsageMeter(self.price_model, self.budget)
        self.cache = PromptCache()
        self.dedup = CrossQueryDedup()
        self.flight_budget = FlightBudget(self.config.max_in_flight)
        if self.storage is None:
            self.storage = StorageTier.from_config(self.config)
        # Observability is wired only when enabled: the meter observer,
        # tier counters, and in-flight gauges otherwise stay detached,
        # so the disabled path records nothing and checks nothing.
        self.obs = Observability.from_config(self.config)
        if self.obs.enabled:
            self.meter.set_observer(self.obs)
            self.storage.attach_registry(self.obs.registry)
            self.flight_budget.attach_registry(self.obs.registry)

    def query_meter(self, forward_wall: bool = True) -> UsageMeter:
        """A child meter attributing one query's usage.

        Everything the query records rolls up into the session meter;
        ``forward_wall=False`` (the serving layer) keeps the query's
        critical path out of the session clock, which then receives one
        batch makespan instead of a sum of overlapped walls.
        """
        return self.meter.child(forward_wall=forward_wall)

    def usage(self) -> UsageSnapshot:
        """Cumulative usage, with the storage tier's counters folded in."""
        snapshot = self.meter.snapshot()
        storage = self.storage.snapshot()
        return replace(
            snapshot,
            result_cache_hits=storage.result_hits,
            fragment_hits=storage.fragment_hits,
            calls_saved=storage.calls_saved,
            persistent_hits=storage.persistent_hits,
            persistent_misses=storage.persistent_misses,
            invalidations=storage.invalidations,
            latency_summary=self.obs.latency_summary(),
        )

    def reset_usage(self) -> None:
        self.meter.reset()
        self.storage.reset_counters()

    def clear_cache(self) -> None:
        self.cache.clear()
        self.storage.clear()
