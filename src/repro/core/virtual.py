"""Virtual table registrations.

A virtual table is a schema (plus optional statistics and value
constraints) whose rows live in the model.  The description fields of
the schema matter: they are shipped verbatim in prompts and are the only
"documentation" the model gets about what the table means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.errors import SchemaError
from repro.plan.cost import DEFAULT_ROW_COUNT, TableStats
from repro.relational.schema import TableSchema
from repro.relational.types import Value


@dataclass(frozen=True)
class ColumnConstraint:
    """Plausibility bounds for validating retrieved values.

    Attributes:
        min_value / max_value: inclusive numeric range.
        allowed_values: closed categorical domain.
        max_length: maximum text length.
    """

    min_value: Optional[float] = None
    max_value: Optional[float] = None
    allowed_values: Optional[frozenset] = None
    max_length: Optional[int] = None

    def check(self, value: Value) -> bool:
        """True if ``value`` is plausible under this constraint."""
        if value is None:
            return True
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if self.min_value is not None and value < self.min_value:
                return False
            if self.max_value is not None and value > self.max_value:
                return False
        if isinstance(value, str):
            if self.max_length is not None and len(value) > self.max_length:
                return False
        if self.allowed_values is not None and value not in self.allowed_values:
            return False
        return True


@dataclass
class VirtualTable:
    """One registered virtual table."""

    schema: TableSchema
    stats: TableStats = field(default_factory=TableStats)
    constraints: Dict[str, ColumnConstraint] = field(default_factory=dict)

    def __post_init__(self):
        if not self.schema.primary_key:
            raise SchemaError(
                f"virtual table {self.schema.name!r} needs a primary key so "
                f"the engine can address rows in lookup prompts"
            )
        for column in self.constraints:
            if not self.schema.has_column(column):
                raise SchemaError(
                    f"constraint on unknown column {column!r} of "
                    f"{self.schema.name!r}"
                )

    @staticmethod
    def build(
        schema: TableSchema,
        row_estimate: Optional[int] = None,
        constraints: Optional[Dict[str, ColumnConstraint]] = None,
    ) -> "VirtualTable":
        return VirtualTable(
            schema=schema,
            stats=TableStats(
                row_count=row_estimate or DEFAULT_ROW_COUNT,
                default_guess=row_estimate is None,
            ),
            constraints=dict(constraints or {}),
        )

    def constraint_for(self, column: str) -> Optional[ColumnConstraint]:
        for name, constraint in self.constraints.items():
            if name.lower() == column.lower():
                return constraint
        return None
