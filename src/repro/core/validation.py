"""Validation of retrieved values.

Parsed cells already have the right storage type (the parsers coerce).
Validation adds *plausibility*: user-declared per-column constraints
(numeric ranges, categorical domains) catch the wild confabulations a
model produces when it does not know a value.  An implausible cell is
nulled rather than repaired — downstream SQL then treats it as missing,
which is the behaviour a careful practitioner wants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.virtual import VirtualTable
from repro.relational.types import Value


@dataclass
class ValidationReport:
    """Counts of validation outcomes for one query."""

    checked_cells: int = 0
    nulled_cells: int = 0
    notes: List[str] = field(default_factory=list)

    def merge(self, other: "ValidationReport") -> None:
        self.checked_cells += other.checked_cells
        self.nulled_cells += other.nulled_cells
        self.notes.extend(other.notes)


class Validator:
    """Applies a virtual table's constraints to retrieved rows."""

    def __init__(self, enabled: bool = True):
        self._enabled = enabled
        self.report = ValidationReport()

    def validate_cell(
        self,
        value: Value,
        table: VirtualTable,
        column_name: str,
    ) -> Value:
        """Return the value, or None if it violates the column constraint."""
        if not self._enabled or value is None:
            return value
        self.report.checked_cells += 1
        constraint = table.constraint_for(column_name)
        if constraint is None or constraint.check(value):
            return value
        self.report.nulled_cells += 1
        if len(self.report.notes) < 20:
            self.report.notes.append(
                f"nulled implausible {table.schema.name}.{column_name} = {value!r}"
            )
        return None

    def validate_row(
        self,
        cells: Sequence[Value],
        table: VirtualTable,
        column_names: Sequence[str],
    ) -> List[Value]:
        """Validate each cell of a retrieved row."""
        return [
            self.validate_cell(value, table, name)
            for value, name in zip(cells, column_names)
        ]
