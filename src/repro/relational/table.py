"""In-memory table: a schema plus a list of row tuples."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.schema import TableSchema
from repro.relational.types import Value


class Table:
    """An ordered bag of rows conforming to a :class:`TableSchema`.

    Rows are tuples in schema column order.  The class is deliberately
    small: it is the currency between the ground-truth executor, the
    simulated LLM's world, and the evaluation metrics.
    """

    def __init__(self, schema: TableSchema, rows: Optional[Iterable[Sequence[Value]]] = None):
        self.schema = schema
        self._rows: List[Tuple[Value, ...]] = []
        if rows is not None:
            for row in rows:
                self.insert(row)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_validated(
        cls, schema: TableSchema, rows: Iterable[Sequence[Value]]
    ) -> "Table":
        """Construct without re-validating rows.

        For rows that already passed :meth:`TableSchema.validate_row`
        against this schema (e.g. a cached query result being
        re-served) — skips the per-row validation pass that
        :meth:`insert` would repeat.
        """
        table = cls(schema)
        table._rows = [tuple(row) for row in rows]
        return table

    @classmethod
    def from_dicts(
        cls, schema: TableSchema, records: Iterable[Mapping[str, Value]]
    ) -> "Table":
        """Build a table from mappings of column name to value."""
        table = cls(schema)
        names = schema.column_names
        for record in records:
            unknown = set(record) - set(names)
            if unknown:
                raise SchemaError(
                    f"record has unknown columns {sorted(unknown)} "
                    f"for table {schema.name!r}"
                )
            table.insert(tuple(record.get(name) for name in names))
        return table

    def insert(self, row: Sequence[Value], *, coerce: bool = False) -> None:
        """Validate and append one row."""
        self._rows.append(self.schema.validate_row(row, coerce=coerce))

    # -- access -------------------------------------------------------------------

    @property
    def rows(self) -> List[Tuple[Value, ...]]:
        """The underlying row list (do not mutate)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple[Value, ...]]:
        return iter(self._rows)

    def column_values(self, name: str) -> List[Value]:
        """All values of one column, in row order."""
        index = self.schema.column_index(name)
        return [row[index] for row in self._rows]

    def to_dicts(self) -> List[Dict[str, Value]]:
        """Rows as dictionaries keyed by column name."""
        return [self.schema.row_as_dict(row) for row in self._rows]

    # -- keyed access -------------------------------------------------------------

    def key_of(self, row: Sequence[Value]) -> Tuple[Value, ...]:
        """Primary-key projection of a row."""
        if not self.schema.primary_key:
            raise SchemaError(f"table {self.schema.name!r} has no primary key")
        return tuple(row[i] for i in self.schema.key_indices())

    def build_key_index(self) -> Dict[Tuple[Value, ...], Tuple[Value, ...]]:
        """Map primary key tuple -> full row (last write wins)."""
        return {self.key_of(row): row for row in self._rows}

    def lookup(self, key: Tuple[Value, ...]) -> Optional[Tuple[Value, ...]]:
        """Linear-scan primary key lookup (tables here are small)."""
        indices = self.schema.key_indices()
        for row in self._rows:
            if tuple(row[i] for i in indices) == key:
                return row
        return None

    # -- utility ---------------------------------------------------------------------

    def sorted_rows(self) -> List[Tuple[Value, ...]]:
        """Rows sorted with NULLs first; used for order-insensitive equality."""

        def sort_key(row: Tuple[Value, ...]):
            return tuple(
                (value is not None, _rankable(value)) for value in row
            )

        return sorted(self._rows, key=sort_key)

    def render_text(self, max_rows: int = 20) -> str:
        """Fixed-width text rendering for examples and reports."""
        names = self.schema.column_names
        shown = self._rows[:max_rows]
        cells = [[_display(value) for value in row] for row in shown]
        widths = [len(name) for name in names]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(name.ljust(widths[i]) for i, name in enumerate(names))
        rule = "-+-".join("-" * width for width in widths)
        lines = [header, rule]
        for row in cells:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={len(self._rows)})"


def _rankable(value: Value):
    """Make heterogeneous values sortable: numbers before text before bools."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (3, int(value))
    if isinstance(value, (int, float)):
        return (1, float(value))
    return (2, str(value))


def _display(value: Value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
