"""Aggregate function accumulators.

Standard SQL semantics: aggregates skip NULL inputs; ``COUNT(*)`` counts
rows; aggregates over an empty (or all-NULL) input yield NULL except COUNT
which yields 0.  ``DISTINCT`` deduplicates input values before
accumulation.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.errors import ExecutionError
from repro.relational.types import Value


class Accumulator:
    """Base class: feed values with :meth:`add`, read with :meth:`result`."""

    def add(self, value: Value) -> None:
        raise NotImplementedError

    def result(self) -> Value:
        raise NotImplementedError


class CountAccumulator(Accumulator):
    """COUNT(expr): counts non-NULL inputs."""

    def __init__(self):
        self._count = 0

    def add(self, value: Value) -> None:
        if value is not None:
            self._count += 1

    def result(self) -> Value:
        return self._count


class CountStarAccumulator(Accumulator):
    """COUNT(*): counts rows including NULLs."""

    def __init__(self):
        self._count = 0

    def add(self, value: Value) -> None:
        self._count += 1

    def result(self) -> Value:
        return self._count


class SumAccumulator(Accumulator):
    """SUM(expr): integer sums stay int, any float input promotes."""

    def __init__(self):
        self._total: Optional[float] = None
        self._all_int = True

    def add(self, value: Value) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"SUM expects numbers, got {value!r}")
        if isinstance(value, float):
            self._all_int = False
        self._total = value if self._total is None else self._total + value

    def result(self) -> Value:
        if self._total is None:
            return None
        return int(self._total) if self._all_int else float(self._total)


class AvgAccumulator(Accumulator):
    """AVG(expr): always returns REAL."""

    def __init__(self):
        self._total = 0.0
        self._count = 0

    def add(self, value: Value) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"AVG expects numbers, got {value!r}")
        self._total += float(value)
        self._count += 1

    def result(self) -> Value:
        if self._count == 0:
            return None
        return self._total / self._count


class MinAccumulator(Accumulator):
    """MIN(expr) over numbers or text (not mixed)."""

    def __init__(self):
        self._best: Value = None

    def add(self, value: Value) -> None:
        if value is None:
            return
        if self._best is None or compare_values(value, self._best) < 0:
            self._best = value

    def result(self) -> Value:
        return self._best


class MaxAccumulator(Accumulator):
    """MAX(expr) over numbers or text (not mixed)."""

    def __init__(self):
        self._best: Value = None

    def add(self, value: Value) -> None:
        if value is None:
            return
        if self._best is None or compare_values(value, self._best) > 0:
            self._best = value

    def result(self) -> Value:
        return self._best


class DistinctAccumulator(Accumulator):
    """Wraps another accumulator, forwarding each distinct value once."""

    def __init__(self, inner: Accumulator):
        self._inner = inner
        self._seen: Set[Tuple[str, Value]] = set()

    def add(self, value: Value) -> None:
        if value is None:
            self._inner.add(value)
            return
        marker = (type(value).__name__, value)
        if marker in self._seen:
            return
        self._seen.add(marker)
        self._inner.add(value)

    def result(self) -> Value:
        return self._inner.result()


def compare_values(left: Value, right: Value) -> int:
    """Three-way comparison for MIN/MAX; numbers and text are not mixed.

    Public contract: partial-aggregate merges (:mod:`repro.core.partial_agg`)
    must order values exactly as the reference accumulators do.
    """
    left_num = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_num = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_num and right_num:
        return (left > right) - (left < right)
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    raise ExecutionError(
        f"cannot compare {type(left).__name__} with {type(right).__name__} "
        f"in MIN/MAX"
    )


#: Aggregate names, mapped to zero-argument accumulator factories.
_FACTORIES = {
    "COUNT": CountAccumulator,
    "SUM": SumAccumulator,
    "AVG": AvgAccumulator,
    "MIN": MinAccumulator,
    "MAX": MaxAccumulator,
}


def is_aggregate_function(name: str) -> bool:
    """True if ``name`` names an aggregate."""
    return name.upper() in _FACTORIES


def aggregate_names() -> List[str]:
    return sorted(_FACTORIES)


def create_accumulator(name: str, *, star: bool = False, distinct: bool = False) -> Accumulator:
    """Instantiate an accumulator for aggregate ``name``.

    ``star`` selects COUNT(*) semantics; ``distinct`` wraps the accumulator
    in value deduplication (invalid for COUNT(*)).
    """
    canonical = name.upper()
    if canonical not in _FACTORIES:
        raise ExecutionError(f"unknown aggregate function {name!r}")
    if star:
        if canonical != "COUNT":
            raise ExecutionError(f"{canonical}(*) is not valid SQL")
        if distinct:
            raise ExecutionError("COUNT(DISTINCT *) is not valid SQL")
        return CountStarAccumulator()
    accumulator = _FACTORIES[canonical]()
    if distinct:
        return DistinctAccumulator(accumulator)
    return accumulator
