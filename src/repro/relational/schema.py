"""Column and table schema definitions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.types import DataType, Value, coerce_value, is_instance_of


@dataclass(frozen=True)
class Column:
    """A column definition.

    Attributes:
        name: column name (case-sensitive as written, matched
            case-insensitively during binding).
        dtype: storage type.
        nullable: whether NULL values are allowed.
        description: natural-language gloss; surfaced verbatim in prompts so
            the language model knows what the column means.
    """

    name: str
    dtype: DataType
    nullable: bool = True
    description: str = ""

    def render_ddl(self) -> str:
        """``name TYPE [NOT NULL]`` fragment used in DDL and prompts."""
        text = f"{self.name} {self.dtype.value}"
        if not self.nullable:
            text += " NOT NULL"
        return text


@dataclass(frozen=True)
class TableSchema:
    """Schema of a (physical or virtual) table.

    Attributes:
        name: table name.
        columns: ordered column definitions.
        primary_key: names of the key columns (subset of ``columns``);
            virtual tables require a key so lookup prompts can address rows.
        description: natural-language gloss surfaced in prompts.
    """

    name: str
    columns: Tuple[Column, ...]
    primary_key: Tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self):
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        seen = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            seen.add(lowered)
        for key in self.primary_key:
            if key.lower() not in seen:
                raise SchemaError(
                    f"primary key column {key!r} is not a column of {self.name!r}"
                )

    @staticmethod
    def build(
        name: str,
        columns: Sequence[Tuple[str, DataType]] | Sequence[Column],
        primary_key: Sequence[str] = (),
        description: str = "",
    ) -> "TableSchema":
        """Convenience constructor from ``(name, dtype)`` pairs or Columns."""
        built: List[Column] = []
        for item in columns:
            if isinstance(item, Column):
                built.append(item)
            else:
                col_name, dtype = item
                built.append(Column(name=col_name, dtype=dtype))
        return TableSchema(
            name=name,
            columns=tuple(built),
            primary_key=tuple(primary_key),
            description=description,
        )

    # -- lookups -------------------------------------------------------------

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return self.find_column(name) is not None

    def find_column(self, name: str) -> Optional[Column]:
        """Case-insensitive column lookup."""
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        return None

    def column(self, name: str) -> Column:
        found = self.find_column(name)
        if found is None:
            raise SchemaError(f"no column {name!r} in table {self.name!r}")
        return found

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def key_indices(self) -> List[int]:
        return [self.column_index(name) for name in self.primary_key]

    def render_ddl(self) -> str:
        """CREATE TABLE-style rendering used in docs and prompts."""
        body = ", ".join(column.render_ddl() for column in self.columns)
        if self.primary_key:
            body += f", PRIMARY KEY ({', '.join(self.primary_key)})"
        return f"CREATE TABLE {self.name} ({body})"

    def render_signature(self) -> str:
        """Compact ``name(col TYPE, ...)`` form used inside prompts."""
        body = ", ".join(f"{c.name} {c.dtype.value}" for c in self.columns)
        return f"{self.name}({body})"

    # -- row validation --------------------------------------------------------

    def validate_row(self, row: Sequence[Value], *, coerce: bool = False) -> Tuple[Value, ...]:
        """Check (optionally coerce) a row against this schema.

        Returns the validated row tuple; raises :class:`SchemaError` when a
        value has the wrong type (or violates NOT NULL).
        """
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row arity {len(row)} does not match "
                f"{len(self.columns)} columns of {self.name!r}"
            )
        output: List[Value] = []
        for value, column in zip(row, self.columns):
            if value is None:
                if not column.nullable:
                    raise SchemaError(
                        f"NULL in NOT NULL column {column.name!r} of {self.name!r}"
                    )
                output.append(None)
                continue
            if is_instance_of(value, column.dtype):
                output.append(value)
                continue
            # Integers are acceptable in REAL columns without explicit coercion.
            if column.dtype is DataType.REAL and isinstance(value, int) and not isinstance(value, bool):
                output.append(float(value))
                continue
            if coerce:
                coerced = coerce_value(value, column.dtype)
                if coerced is None:
                    raise SchemaError(
                        f"cannot coerce {value!r} to {column.dtype.value} "
                        f"for column {column.name!r} of {self.name!r}"
                    )
                output.append(coerced)
                continue
            raise SchemaError(
                f"value {value!r} has wrong type for column "
                f"{column.name!r} ({column.dtype.value}) of {self.name!r}"
            )
        return tuple(output)

    def row_as_dict(self, row: Sequence[Value]) -> Dict[str, Value]:
        """Zip a row tuple with column names."""
        return {column.name: value for column, value in zip(self.columns, row)}
