"""Expression evaluation with SQL three-valued logic.

The evaluator is shared by every execution path in the repository:

* the ground-truth reference executor,
* the local compute operators of the hybrid (LLM) plans,
* the simulated language model itself, which re-parses predicates shipped
  inside prompts and evaluates them against its world knowledge.

Having exactly one implementation of NULL semantics is what makes the
zero-noise equivalence property (DESIGN.md §5) testable.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, Mapping, Optional

from repro.errors import ExecutionError
from repro.relational import functions
from repro.relational.aggregates import is_aggregate_function
from repro.relational.types import DataType, Value, coerce_value
from repro.sql import ast
from repro.sql.printer import print_expression

#: Signature of the hook used to run subqueries: (query, outer_scope) -> Table
SubqueryExecutor = Callable[[ast.Query, "Scope"], "object"]


class Scope:
    """Resolves column references to values. Scopes chain for correlation."""

    def resolve(self, table: Optional[str], name: str) -> Value:
        raise NotImplementedError

    def can_resolve(self, table: Optional[str], name: str) -> bool:
        raise NotImplementedError


class EmptyScope(Scope):
    """Scope with no columns (literal-only expressions)."""

    def resolve(self, table: Optional[str], name: str) -> Value:
        label = f"{table}.{name}" if table else name
        raise ExecutionError(f"unknown column {label!r} (empty scope)")

    def can_resolve(self, table: Optional[str], name: str) -> bool:
        return False


EMPTY_SCOPE = EmptyScope()


class RowScope(Scope):
    """Scope over one row of one or more bound tables.

    ``bindings`` maps binding name (table name or alias) to a mapping of
    column name to value.  Both levels are matched case-insensitively.
    An optional ``parent`` provides outer-query columns for correlated
    subqueries.
    """

    def __init__(
        self,
        bindings: Mapping[str, Mapping[str, Value]],
        parent: Optional[Scope] = None,
    ):
        self._bindings: Dict[str, Dict[str, Value]] = {
            binding.lower(): {column.lower(): value for column, value in columns.items()}
            for binding, columns in bindings.items()
        }
        self._parent = parent

    def resolve(self, table: Optional[str], name: str) -> Value:
        lowered = name.lower()
        if table is not None:
            columns = self._bindings.get(table.lower())
            if columns is not None and lowered in columns:
                return columns[lowered]
            if self._parent is not None:
                return self._parent.resolve(table, name)
            raise ExecutionError(f"unknown column {table}.{name}")
        matches = [
            columns[lowered] for columns in self._bindings.values() if lowered in columns
        ]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise ExecutionError(f"ambiguous column name {name!r}")
        if self._parent is not None:
            return self._parent.resolve(table, name)
        raise ExecutionError(f"unknown column {name!r}")

    def can_resolve(self, table: Optional[str], name: str) -> bool:
        lowered = name.lower()
        if table is not None:
            columns = self._bindings.get(table.lower())
            if columns is not None and lowered in columns:
                return True
        else:
            count = sum(
                1 for columns in self._bindings.values() if lowered in columns
            )
            if count == 1:
                return True
            if count > 1:
                return True  # ambiguous, but resolvable-with-error downstream
        if self._parent is not None:
            return self._parent.can_resolve(table, name)
        return False


def is_true(value: Value) -> bool:
    """SQL WHERE semantics: only TRUE passes (NULL and FALSE do not)."""
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise ExecutionError(f"boolean context requires a boolean, got {value!r}")


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern to an anchored regular expression."""
    pieces = ["^"]
    for ch in pattern:
        if ch == "%":
            pieces.append(".*")
        elif ch == "_":
            pieces.append(".")
        else:
            pieces.append(re.escape(ch))
    pieces.append("$")
    return re.compile("".join(pieces), re.DOTALL)


def _is_number(value: Value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_values(left: Value, right: Value) -> Optional[int]:
    """SQL comparison: None if either side is NULL, else -1/0/+1.

    Numbers compare across int/float; text with text; bool with bool.
    Mixed-type comparisons raise :class:`ExecutionError` — upstream
    validation coerces LLM output to schema types before evaluation.
    """
    if left is None or right is None:
        return None
    if _is_number(left) and _is_number(right):
        return (left > right) - (left < right)
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    if isinstance(left, bool) and isinstance(right, bool):
        return (left > right) - (left < right)
    raise ExecutionError(
        f"cannot compare {type(left).__name__} with {type(right).__name__}"
    )


class Evaluator:
    """Evaluates expression ASTs against a :class:`Scope`.

    Args:
        subquery_executor: hook invoked for every subquery node; receives
            the subquery AST and the current scope (for correlation) and
            must return a :class:`~repro.relational.table.Table`.
        aggregate_values: precomputed aggregate results for the current
            group, keyed by the printed form of the aggregate call.  The
            grouping executor populates this; expressions evaluated outside
            a grouping context must not contain aggregates.
    """

    def __init__(
        self,
        subquery_executor: Optional[SubqueryExecutor] = None,
        aggregate_values: Optional[Dict[str, Value]] = None,
    ):
        self._run_subquery = subquery_executor
        self._aggregate_values = aggregate_values

    def with_aggregates(self, aggregate_values: Dict[str, Value]) -> "Evaluator":
        """A copy of this evaluator carrying per-group aggregate results."""
        return Evaluator(self._run_subquery, aggregate_values)

    # -- dispatcher ------------------------------------------------------------

    def evaluate(self, expr: ast.Expr, scope: Scope) -> Value:
        method = getattr(self, f"_eval_{type(expr).__name__.lower()}", None)
        if method is None:
            raise ExecutionError(f"cannot evaluate {type(expr).__name__} node")
        return method(expr, scope)

    # -- leaves ------------------------------------------------------------------

    def _eval_literal(self, expr: ast.Literal, scope: Scope) -> Value:
        return expr.value

    def _eval_columnref(self, expr: ast.ColumnRef, scope: Scope) -> Value:
        return scope.resolve(expr.table, expr.name)

    def _eval_star(self, expr: ast.Star, scope: Scope) -> Value:
        raise ExecutionError("'*' is only valid in a select list or COUNT(*)")

    # -- operators -----------------------------------------------------------------

    def _eval_binaryop(self, expr: ast.BinaryOp, scope: Scope) -> Value:
        op = expr.op
        if op == "AND":
            return self._eval_and(expr, scope)
        if op == "OR":
            return self._eval_or(expr, scope)
        left = self.evaluate(expr.left, scope)
        right = self.evaluate(expr.right, scope)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            ordering = compare_values(left, right)
            if ordering is None:
                return None
            if op == "=":
                return ordering == 0
            if op == "<>":
                return ordering != 0
            if op == "<":
                return ordering < 0
            if op == "<=":
                return ordering <= 0
            if op == ">":
                return ordering > 0
            return ordering >= 0
        if op == "||":
            if left is None or right is None:
                return None
            return _text(left) + _text(right)
        return self._eval_arithmetic(op, left, right)

    def _eval_and(self, expr: ast.BinaryOp, scope: Scope) -> Value:
        left = _as_bool(self.evaluate(expr.left, scope))
        if left is False:
            return False
        right = _as_bool(self.evaluate(expr.right, scope))
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True

    def _eval_or(self, expr: ast.BinaryOp, scope: Scope) -> Value:
        left = _as_bool(self.evaluate(expr.left, scope))
        if left is True:
            return True
        right = _as_bool(self.evaluate(expr.right, scope))
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    def _eval_arithmetic(self, op: str, left: Value, right: Value) -> Value:
        if left is None or right is None:
            return None
        if not _is_number(left) or not _is_number(right):
            raise ExecutionError(
                f"arithmetic {op!r} requires numbers, got {left!r} and {right!r}"
            )
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None  # SQLite-compatible: division by zero yields NULL
            return left / right
        if op == "%":
            if right == 0:
                return None
            if isinstance(left, int) and isinstance(right, int):
                return math.fmod(left, right).__int__()
            return math.fmod(left, right)
        raise ExecutionError(f"unknown arithmetic operator {op!r}")

    def _eval_unaryop(self, expr: ast.UnaryOp, scope: Scope) -> Value:
        operand = self.evaluate(expr.operand, scope)
        if expr.op == "NOT":
            value = _as_bool(operand)
            if value is None:
                return None
            return not value
        if expr.op == "-":
            if operand is None:
                return None
            if not _is_number(operand):
                raise ExecutionError(f"unary minus requires a number, got {operand!r}")
            return -operand
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    # -- predicates --------------------------------------------------------------

    def _eval_between(self, expr: ast.Between, scope: Scope) -> Value:
        operand = self.evaluate(expr.operand, scope)
        low = self.evaluate(expr.low, scope)
        high = self.evaluate(expr.high, scope)
        lower_cmp = compare_values(operand, low)
        upper_cmp = compare_values(operand, high)
        if lower_cmp is None or upper_cmp is None:
            return None
        inside = lower_cmp >= 0 and upper_cmp <= 0
        return not inside if expr.negated else inside

    def _eval_inlist(self, expr: ast.InList, scope: Scope) -> Value:
        operand = self.evaluate(expr.operand, scope)
        if operand is None:
            return None
        saw_null = False
        for item in expr.items:
            value = self.evaluate(item, scope)
            ordering = compare_values(operand, value)
            if ordering is None:
                saw_null = True
            elif ordering == 0:
                return False if expr.negated else True
        if saw_null:
            return None
        return True if expr.negated else False

    def _eval_insubquery(self, expr: ast.InSubquery, scope: Scope) -> Value:
        operand = self.evaluate(expr.operand, scope)
        if operand is None:
            return None
        table = self._execute_subquery(expr.query, scope)
        if len(table.schema.columns) != 1:
            raise ExecutionError("IN subquery must return exactly one column")
        saw_null = False
        for row in table:
            ordering = compare_values(operand, row[0])
            if ordering is None:
                saw_null = True
            elif ordering == 0:
                return False if expr.negated else True
        if saw_null:
            return None
        return True if expr.negated else False

    def _eval_exists(self, expr: ast.Exists, scope: Scope) -> Value:
        table = self._execute_subquery(expr.query, scope)
        found = len(table) > 0
        return not found if expr.negated else found

    def _eval_scalarsubquery(self, expr: ast.ScalarSubquery, scope: Scope) -> Value:
        table = self._execute_subquery(expr.query, scope)
        if len(table.schema.columns) != 1:
            raise ExecutionError("scalar subquery must return exactly one column")
        if len(table) == 0:
            return None
        if len(table) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        return table.rows[0][0]

    def _eval_isnull(self, expr: ast.IsNull, scope: Scope) -> Value:
        value = self.evaluate(expr.operand, scope)
        result = value is None
        return not result if expr.negated else result

    def _eval_like(self, expr: ast.Like, scope: Scope) -> Value:
        operand = self.evaluate(expr.operand, scope)
        pattern = self.evaluate(expr.pattern, scope)
        if operand is None or pattern is None:
            return None
        if not isinstance(operand, str) or not isinstance(pattern, str):
            raise ExecutionError("LIKE requires text operands")
        matched = like_to_regex(pattern).match(operand) is not None
        return not matched if expr.negated else matched

    def _eval_casewhen(self, expr: ast.CaseWhen, scope: Scope) -> Value:
        if expr.operand is not None:
            subject = self.evaluate(expr.operand, scope)
            for condition, result in expr.branches:
                candidate = self.evaluate(condition, scope)
                ordering = compare_values(subject, candidate)
                if ordering == 0:
                    return self.evaluate(result, scope)
        else:
            for condition, result in expr.branches:
                if is_true(self.evaluate(condition, scope)):
                    return self.evaluate(result, scope)
        if expr.else_result is not None:
            return self.evaluate(expr.else_result, scope)
        return None

    # -- functions -----------------------------------------------------------------

    def _eval_functioncall(self, expr: ast.FunctionCall, scope: Scope) -> Value:
        name = expr.name.upper()
        if is_aggregate_function(name):
            if self._aggregate_values is None:
                raise ExecutionError(
                    f"aggregate {name} used outside a grouping context"
                )
            key = print_expression(expr)
            if key not in self._aggregate_values:
                raise ExecutionError(
                    f"aggregate {key} was not computed for this group"
                )
            return self._aggregate_values[key]
        if expr.distinct:
            raise ExecutionError("DISTINCT is only valid in aggregate calls")
        args = [self.evaluate(arg, scope) for arg in expr.args]
        return functions.call_scalar(name, args)

    def _eval_cast(self, expr: ast.Cast, scope: Scope) -> Value:
        value = self.evaluate(expr.operand, scope)
        return coerce_value(value, DataType.from_name(expr.type_name))

    # -- subquery plumbing --------------------------------------------------------

    def _execute_subquery(self, query: ast.Query, scope: Scope):
        if self._run_subquery is None:
            raise ExecutionError("subqueries are not supported in this context")
        return self._run_subquery(query, scope)


def _as_bool(value: Value) -> Optional[bool]:
    """Coerce to 3VL boolean; numbers count as truthy/falsy (SQLite-style)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise ExecutionError(f"boolean context requires a boolean, got {value!r}")


def _text(value: Value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def evaluate_constant(expr: ast.Expr) -> Value:
    """Evaluate an expression that references no columns or subqueries."""
    return Evaluator().evaluate(expr, EMPTY_SCOPE)
