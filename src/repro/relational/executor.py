"""Reference SQL executor over materialized tables.

This is the ground-truth engine: a direct, correctness-first interpreter
of the AST.  It supports the full parsed subset — joins, grouping,
HAVING, DISTINCT, ORDER BY (aliases, positions, expressions), LIMIT,
set operations, and correlated subqueries — and is used (a) as the oracle
that evaluation metrics compare against, and (b) inside the simulated
language model, which "knows" its world by running queries over it.

Semantics notes (shared with the hybrid engine, see DESIGN.md §5):

* SQL three-valued logic throughout; WHERE/HAVING keep rows only when the
  predicate is TRUE.
* GROUP BY groups compare int/float numerically (1 groups with 1.0).
* Non-grouped columns in a grouped select resolve from a representative
  row (SQLite-style permissiveness).
* ORDER BY sorts NULLs first ascending, last descending, unless
  ``NULLS FIRST/LAST`` overrides.
* INTERSECT/EXCEPT use set semantics; UNION honours ALL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExecutionError
from repro.relational.aggregates import create_accumulator
from repro.relational.catalog import Catalog
from repro.relational.expressions import (
    EMPTY_SCOPE,
    Evaluator,
    RowScope,
    Scope,
    is_true,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType, Value, infer_type
from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.printer import print_expression

#: One FROM-clause row: binding name -> column name -> value.
BindingRow = Dict[str, Dict[str, Value]]


@dataclass
class FromResult:
    """Rows produced by a FROM clause plus the ordered binding layout."""

    bindings: List[Tuple[str, List[str]]]
    rows: List[BindingRow]


def hashable_value(value: Value):
    """Type-tagged, numerically-normalized form for grouping/dedup.

    Public contract: partial-aggregate grouping
    (:mod:`repro.core.partial_agg`) must key groups exactly as the
    reference executor does (1 groups with 1.0, not with True).
    """
    if value is None:
        return ("null",)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("num", float(value))
    return ("text", value)


#: Internal alias (historical name).
_hashable = hashable_value


def _row_marker(row: Sequence[Value]) -> Tuple:
    return tuple(_hashable(value) for value in row)


def _sort_rank(value: Value):
    """Total order over heterogeneous values for ORDER BY."""
    if value is None:
        return (0, 0.0)
    if isinstance(value, bool):
        return (1, float(value))
    if isinstance(value, (int, float)):
        return (1, float(value))
    return (2, str(value))


class ReferenceExecutor:
    """Executes statements against a catalog of materialized tables."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._evaluator = Evaluator(subquery_executor=self._execute_subquery)

    # -- public API ------------------------------------------------------------

    def execute(self, statement: Union[str, ast.Statement]) -> Table:
        """Execute SQL text or a parsed statement; returns a result Table."""
        if isinstance(statement, str):
            statement = parse(statement)
        return self._execute_statement(statement, EMPTY_SCOPE)

    # -- statement dispatch -------------------------------------------------------

    def _execute_statement(self, statement: ast.Statement, outer: Scope) -> Table:
        if isinstance(statement, ast.Query):
            return self._execute_query(statement, outer)
        if isinstance(statement, ast.SetOperation):
            return self._execute_set_operation(statement, outer)
        raise ExecutionError(f"cannot execute {type(statement).__name__}")

    def _execute_subquery(self, query: ast.Query, outer: Scope) -> Table:
        return self._execute_query(query, outer)

    # -- set operations --------------------------------------------------------------

    def _execute_set_operation(self, setop: ast.SetOperation, outer: Scope) -> Table:
        left = self._execute_statement(setop.left, outer)
        right = self._execute_query(setop.right, outer)
        if len(left.schema.columns) != len(right.schema.columns):
            raise ExecutionError(
                f"{setop.op.upper()} operands have different column counts "
                f"({len(left.schema.columns)} vs {len(right.schema.columns)})"
            )
        if setop.op == "union":
            rows = list(left.rows) + list(right.rows)
            if not setop.all:
                rows = _dedupe(rows)
        elif setop.op == "intersect":
            right_markers = {_row_marker(row) for row in right.rows}
            rows = _dedupe(
                [row for row in left.rows if _row_marker(row) in right_markers]
            )
        elif setop.op == "except":
            right_markers = {_row_marker(row) for row in right.rows}
            rows = _dedupe(
                [row for row in left.rows if _row_marker(row) not in right_markers]
            )
        else:
            raise ExecutionError(f"unknown set operation {setop.op!r}")

        names = left.schema.column_names
        if setop.order_by:
            rows = self._order_output_rows(rows, names, setop.order_by)
        rows = _apply_limit(rows, setop.limit, setop.offset)
        return _build_result_table(names, rows)

    # -- single query -------------------------------------------------------------------

    def _execute_query(self, query: ast.Query, outer: Scope) -> Table:
        from_result = self._execute_from(query.from_clause, outer)

        if query.where is not None:
            kept = []
            for row in from_result.rows:
                scope = RowScope(row, parent=outer)
                if is_true(self._evaluator.evaluate(query.where, scope)):
                    kept.append(row)
            from_result = FromResult(from_result.bindings, kept)

        select_items = self._expand_stars(query.select, from_result.bindings)
        names = self._output_names(select_items)

        needs_grouping = bool(query.group_by) or self._contains_any_aggregate(
            select_items, query
        )
        if needs_grouping:
            output_rows, order_scopes = self._execute_grouped(
                query, select_items, from_result, outer
            )
        else:
            if query.having is not None:
                raise ExecutionError("HAVING requires GROUP BY or aggregates")
            output_rows = []
            order_scopes: List[Tuple[Scope, Optional[Evaluator]]] = []
            for row in from_result.rows:
                scope = RowScope(row, parent=outer)
                output_rows.append(
                    tuple(
                        self._evaluator.evaluate(item.expr, scope)
                        for item in select_items
                    )
                )
                order_scopes.append((scope, None))

        if query.distinct:
            output_rows, order_scopes = _dedupe_with(output_rows, order_scopes)

        if query.order_by:
            output_rows = self._order_rows(
                output_rows, order_scopes, names, query.order_by
            )

        output_rows = _apply_limit(output_rows, query.limit, query.offset)
        return _build_result_table(names, output_rows)

    # -- FROM evaluation ------------------------------------------------------------------

    def _execute_from(
        self, clause: Optional[ast.TableRef], outer: Scope
    ) -> FromResult:
        if clause is None:
            return FromResult(bindings=[], rows=[{}])
        return self._eval_table_ref(clause, outer)

    def _eval_table_ref(self, ref: ast.TableRef, outer: Scope) -> FromResult:
        if isinstance(ref, ast.NamedTable):
            table = self._catalog.table(ref.name)
            binding = ref.binding_name
            columns = table.schema.column_names
            rows = [
                {binding: dict(zip(columns, row))} for row in table.rows
            ]
            return FromResult(bindings=[(binding, columns)], rows=rows)
        if isinstance(ref, ast.SubqueryTable):
            table = self._execute_query(ref.query, EMPTY_SCOPE)
            columns = table.schema.column_names
            rows = [
                {ref.alias: dict(zip(columns, row))} for row in table.rows
            ]
            return FromResult(bindings=[(ref.alias, columns)], rows=rows)
        if isinstance(ref, ast.Join):
            return self._eval_join(ref, outer)
        raise ExecutionError(f"cannot evaluate table reference {type(ref).__name__}")

    def _eval_join(self, join: ast.Join, outer: Scope) -> FromResult:
        left = self._eval_table_ref(join.left, outer)
        right = self._eval_table_ref(join.right, outer)
        left_names = {name for name, _ in left.bindings}
        for name, _ in right.bindings:
            if name in left_names:
                raise ExecutionError(f"duplicate table name or alias {name!r}")
        bindings = left.bindings + right.bindings

        combined: List[BindingRow] = []
        if join.kind == "cross":
            for lrow in left.rows:
                for rrow in right.rows:
                    combined.append({**lrow, **rrow})
            return FromResult(bindings, combined)

        null_right: BindingRow = {
            name: {column: None for column in columns}
            for name, columns in right.bindings
        }
        for lrow in left.rows:
            matched = False
            for rrow in right.rows:
                candidate = {**lrow, **rrow}
                scope = RowScope(candidate, parent=outer)
                if join.condition is None or is_true(
                    self._evaluator.evaluate(join.condition, scope)
                ):
                    combined.append(candidate)
                    matched = True
            if join.kind == "left" and not matched:
                combined.append({**lrow, **null_right})
        return FromResult(bindings, combined)

    # -- select list ---------------------------------------------------------------------

    def _expand_stars(
        self,
        select: List[ast.SelectItem],
        bindings: List[Tuple[str, List[str]]],
    ) -> List[ast.SelectItem]:
        expanded: List[ast.SelectItem] = []
        for item in select:
            if isinstance(item.expr, ast.Star):
                targets = bindings
                if item.expr.table is not None:
                    wanted = item.expr.table.lower()
                    targets = [
                        (name, cols)
                        for name, cols in bindings
                        if name.lower() == wanted
                    ]
                    if not targets:
                        raise ExecutionError(
                            f"unknown table {item.expr.table!r} in select list"
                        )
                if not targets:
                    raise ExecutionError("SELECT * requires a FROM clause")
                for name, columns in targets:
                    for column in columns:
                        expanded.append(
                            ast.SelectItem(
                                expr=ast.ColumnRef(name=column, table=name)
                            )
                        )
            else:
                expanded.append(item)
        return expanded

    def _output_names(self, select_items: List[ast.SelectItem]) -> List[str]:
        names: List[str] = []
        used: Dict[str, int] = {}
        for item in select_items:
            if item.alias:
                base = item.alias
            elif isinstance(item.expr, ast.ColumnRef):
                base = item.expr.name
            else:
                base = print_expression(item.expr)
            lowered = base.lower()
            count = used.get(lowered, 0)
            used[lowered] = count + 1
            names.append(base if count == 0 else f"{base}_{count + 1}")
        return names

    # -- grouping ------------------------------------------------------------------------

    def _contains_any_aggregate(
        self, select_items: List[ast.SelectItem], query: ast.Query
    ) -> bool:
        exprs = [item.expr for item in select_items]
        if query.having is not None:
            exprs.append(query.having)
        exprs.extend(item.expr for item in query.order_by)
        return any(ast.contains_aggregate(expr) for expr in exprs)

    def _collect_aggregates(
        self, select_items: List[ast.SelectItem], query: ast.Query
    ) -> Dict[str, ast.FunctionCall]:
        exprs = [item.expr for item in select_items]
        if query.having is not None:
            exprs.append(query.having)
        exprs.extend(item.expr for item in query.order_by)
        found: Dict[str, ast.FunctionCall] = {}
        for expr in exprs:
            for node in ast.walk_expression(expr):
                if ast.is_aggregate_call(node):
                    found[print_expression(node)] = node
        return found

    def _execute_grouped(
        self,
        query: ast.Query,
        select_items: List[ast.SelectItem],
        from_result: FromResult,
        outer: Scope,
    ) -> Tuple[List[Tuple[Value, ...]], List[Tuple[Scope, Optional[Evaluator]]]]:
        aggregates = self._collect_aggregates(select_items, query)

        # Group rows, preserving first-seen order.
        groups: Dict[Tuple, List[BindingRow]] = {}
        order: List[Tuple] = []
        for row in from_result.rows:
            scope = RowScope(row, parent=outer)
            if query.group_by:
                key = tuple(
                    _hashable(self._evaluator.evaluate(expr, scope))
                    for expr in query.group_by
                )
            else:
                key = ()
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)

        if not query.group_by and not groups:
            # Aggregates over an empty input produce exactly one row.
            groups[()] = []
            order.append(())

        output_rows: List[Tuple[Value, ...]] = []
        order_scopes: List[Tuple[Scope, Optional[Evaluator]]] = []
        for key in order:
            member_rows = groups[key]
            agg_values: Dict[str, Value] = {}
            for printed, call in aggregates.items():
                accumulator = self._build_accumulator(call)
                for row in member_rows:
                    scope = RowScope(row, parent=outer)
                    if call.args and isinstance(call.args[0], ast.Star):
                        accumulator.add(1)
                    elif call.args:
                        accumulator.add(
                            self._evaluator.evaluate(call.args[0], scope)
                        )
                    else:
                        raise ExecutionError(
                            f"aggregate {call.name} requires an argument"
                        )
                agg_values[printed] = accumulator.result()

            representative: BindingRow
            if member_rows:
                representative = member_rows[0]
            else:
                representative = {
                    name: {column: None for column in columns}
                    for name, columns in from_result.bindings
                }
            scope = RowScope(representative, parent=outer)
            grouped_evaluator = self._evaluator.with_aggregates(agg_values)

            if query.having is not None and not is_true(
                grouped_evaluator.evaluate(query.having, scope)
            ):
                continue

            output_rows.append(
                tuple(
                    grouped_evaluator.evaluate(item.expr, scope)
                    for item in select_items
                )
            )
            order_scopes.append((scope, grouped_evaluator))
        return output_rows, order_scopes

    def _build_accumulator(self, call: ast.FunctionCall):
        if len(call.args) != 1:
            raise ExecutionError(f"aggregate {call.name} takes exactly one argument")
        star = isinstance(call.args[0], ast.Star)
        return create_accumulator(call.name, star=star, distinct=call.distinct)

    # -- ordering -------------------------------------------------------------------------

    def _order_rows(
        self,
        rows: List[Tuple[Value, ...]],
        scopes: List[Tuple[Scope, Optional[Evaluator]]],
        names: List[str],
        order_by: List[ast.OrderItem],
    ) -> List[Tuple[Value, ...]]:
        lowered_names = [name.lower() for name in names]

        def key_values(index: int) -> List[Value]:
            row = rows[index]
            scope, grouped_evaluator = scopes[index]
            evaluator = grouped_evaluator or self._evaluator
            values = []
            for item in order_by:
                values.append(
                    self._order_key_value(
                        item.expr, row, lowered_names, scope, evaluator
                    )
                )
            return values

        return _sorted_by_keys(rows, key_values, order_by)

    def _order_output_rows(
        self,
        rows: List[Tuple[Value, ...]],
        names: List[str],
        order_by: List[ast.OrderItem],
    ) -> List[Tuple[Value, ...]]:
        """Order rows of a set operation: only names/positions available."""
        lowered_names = [name.lower() for name in names]

        def key_values(index: int) -> List[Value]:
            row = rows[index]
            values = []
            for item in order_by:
                value = self._positional_or_named(item.expr, row, lowered_names)
                if value is _MISSING:
                    raise ExecutionError(
                        "ORDER BY on a set operation must use output column "
                        "names or positions"
                    )
                values.append(value)
            return values

        return _sorted_by_keys(rows, key_values, order_by)

    def _order_key_value(
        self,
        expr: ast.Expr,
        row: Tuple[Value, ...],
        lowered_names: List[str],
        scope: Scope,
        evaluator: Evaluator,
    ) -> Value:
        value = self._positional_or_named(expr, row, lowered_names)
        if value is not _MISSING:
            return value
        return evaluator.evaluate(expr, scope)

    def _positional_or_named(
        self, expr: ast.Expr, row: Tuple[Value, ...], lowered_names: List[str]
    ):
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(row):
                raise ExecutionError(
                    f"ORDER BY position {position} is out of range"
                )
            return row[position - 1]
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            lowered = expr.name.lower()
            if lowered in lowered_names:
                return row[lowered_names.index(lowered)]
        return _MISSING


_MISSING = object()


def _sorted_by_keys(rows, key_values, order_by: List[ast.OrderItem]):
    import functools

    indexed = list(range(len(rows)))
    all_keys = [key_values(i) for i in indexed]

    def compare(a: int, b: int) -> int:
        for item, left, right in zip(order_by, all_keys[a], all_keys[b]):
            outcome = _compare_order_values(left, right, item)
            if outcome != 0:
                return outcome
        return a - b  # stable

    return [rows[i] for i in sorted(indexed, key=functools.cmp_to_key(compare))]


def _compare_order_values(left: Value, right: Value, item: ast.OrderItem) -> int:
    if left is None and right is None:
        return 0
    nulls_last = item.nulls_last
    if nulls_last is None:
        nulls_last = item.descending  # SQLite: NULL is smallest
    if left is None:
        return 1 if nulls_last else -1
    if right is None:
        return -1 if nulls_last else 1
    left_rank = _sort_rank(left)
    right_rank = _sort_rank(right)
    if left_rank < right_rank:
        outcome = -1
    elif left_rank > right_rank:
        outcome = 1
    else:
        outcome = 0
    return -outcome if item.descending else outcome


def _dedupe(rows: List[Tuple[Value, ...]]) -> List[Tuple[Value, ...]]:
    seen = set()
    output = []
    for row in rows:
        marker = _row_marker(row)
        if marker not in seen:
            seen.add(marker)
            output.append(row)
    return output


def _dedupe_with(rows, companions):
    seen = set()
    out_rows = []
    out_companions = []
    for row, companion in zip(rows, companions):
        marker = _row_marker(row)
        if marker not in seen:
            seen.add(marker)
            out_rows.append(row)
            out_companions.append(companion)
    return out_rows, out_companions


def _apply_limit(rows, limit: Optional[int], offset: Optional[int]):
    start = offset or 0
    if limit is None:
        return rows[start:]
    return rows[start : start + limit]


def _infer_column_type(values: List[Value]) -> DataType:
    present = [infer_type(v) for v in values if v is not None]
    if not present:
        return DataType.TEXT
    unique = set(present)
    if unique == {DataType.INTEGER}:
        return DataType.INTEGER
    if unique <= {DataType.INTEGER, DataType.REAL}:
        return DataType.REAL
    if len(unique) == 1:
        return unique.pop()
    return DataType.TEXT


def _build_result_table(names: List[str], rows: List[Tuple[Value, ...]]) -> Table:
    columns = []
    for index, name in enumerate(names):
        values = [row[index] for row in rows]
        columns.append(Column(name=name, dtype=_infer_column_type(values)))
    schema = TableSchema(name="result", columns=tuple(columns))
    normalized = []
    for row in rows:
        normalized.append(
            tuple(
                _normalize_for_type(value, column.dtype)
                for value, column in zip(row, columns)
            )
        )
    return Table(schema, normalized)


def _normalize_for_type(value: Value, dtype: DataType) -> Value:
    if value is None:
        return None
    if dtype is DataType.REAL and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if dtype is DataType.TEXT and not isinstance(value, str):
        if isinstance(value, bool):
            return "true" if value else "false"
        return str(value)
    return value
