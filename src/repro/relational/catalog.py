"""Catalog: the registry of table schemas and (optionally) their data.

The same catalog type serves two roles:

* for the ground-truth engine, every entry carries a materialized
  :class:`~repro.relational.table.Table`;
* for the LLM engine, entries are *virtual*: schema only, data answered by
  the language model at query time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import CatalogError
from repro.relational.schema import TableSchema
from repro.relational.table import Table


class TableKind(enum.Enum):
    """Whether a table's rows are stored or answered by the model."""

    MATERIALIZED = "materialized"
    VIRTUAL = "virtual"


@dataclass
class CatalogEntry:
    """One catalog registration."""

    schema: TableSchema
    kind: TableKind
    table: Optional[Table] = None

    def __post_init__(self):
        if self.kind is TableKind.MATERIALIZED and self.table is None:
            raise CatalogError(
                f"materialized table {self.schema.name!r} registered without data"
            )
        if self.kind is TableKind.VIRTUAL and self.table is not None:
            raise CatalogError(
                f"virtual table {self.schema.name!r} must not carry data"
            )


class Catalog:
    """Case-insensitive name → entry registry."""

    def __init__(self):
        self._entries: Dict[str, CatalogEntry] = {}

    def register_table(self, table: Table) -> None:
        """Register a materialized table."""
        self._register(
            CatalogEntry(schema=table.schema, kind=TableKind.MATERIALIZED, table=table)
        )

    def register_virtual(self, schema: TableSchema) -> None:
        """Register a virtual (LLM-answered) table."""
        self._register(CatalogEntry(schema=schema, kind=TableKind.VIRTUAL))

    def _register(self, entry: CatalogEntry) -> None:
        key = entry.schema.name.lower()
        if key in self._entries:
            raise CatalogError(f"table {entry.schema.name!r} is already registered")
        self._entries[key] = entry

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._entries:
            raise CatalogError(f"no table named {name!r}")
        del self._entries[key]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries

    def entry(self, name: str) -> CatalogEntry:
        key = name.lower()
        if key not in self._entries:
            known = ", ".join(sorted(self._entries)) or "(none)"
            raise CatalogError(f"no table named {name!r}; known tables: {known}")
        return self._entries[key]

    def schema(self, name: str) -> TableSchema:
        return self.entry(name).schema

    def table(self, name: str) -> Table:
        """The materialized data of ``name``; error for virtual tables."""
        entry = self.entry(name)
        if entry.table is None:
            raise CatalogError(f"table {name!r} is virtual and has no stored rows")
        return entry.table

    def names(self) -> List[str]:
        return sorted(entry.schema.name for entry in self._entries.values())

    def __iter__(self) -> Iterator[CatalogEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
