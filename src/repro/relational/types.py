"""SQL data types and value coercion.

The engine supports four storage types.  Values are plain Python objects:
``int``, ``float``, ``str``, ``bool`` and ``None`` for SQL NULL.  All
coercions used by CAST and by LLM-response validation live here so the
rules are identical everywhere.
"""

from __future__ import annotations

import enum
import math
from typing import Optional, Union

Value = Union[int, float, str, bool, None]


class DataType(enum.Enum):
    """Storage type of a column."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Map a SQL type name (as parsed) to a DataType."""
        upper = name.upper()
        aliases = {
            "INTEGER": cls.INTEGER,
            "INT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
        }
        if upper not in aliases:
            raise ValueError(f"unknown SQL type name: {name!r}")
        return aliases[upper]


def infer_type(value: Value) -> Optional[DataType]:
    """Infer the DataType of a Python value; None for SQL NULL."""
    if value is None:
        return None
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.REAL
    if isinstance(value, str):
        return DataType.TEXT
    raise TypeError(f"unsupported Python value type: {type(value).__name__}")


def is_instance_of(value: Value, dtype: DataType) -> bool:
    """True if ``value`` already has storage type ``dtype`` (NULL fits all)."""
    if value is None:
        return True
    if dtype is DataType.BOOLEAN:
        return isinstance(value, bool)
    if dtype is DataType.INTEGER:
        return isinstance(value, int) and not isinstance(value, bool)
    if dtype is DataType.REAL:
        return isinstance(value, float)
    if dtype is DataType.TEXT:
        return isinstance(value, str)
    return False


_TRUE_WORDS = frozenset({"true", "t", "yes", "y", "1"})
_FALSE_WORDS = frozenset({"false", "f", "no", "n", "0"})


def coerce_value(value: Value, dtype: DataType, *, strict: bool = False) -> Value:
    """Coerce ``value`` to ``dtype``.

    Non-strict mode (the default) follows CAST semantics and additionally
    accepts the loose text forms an LLM emits ("1,234", "true", "3.5 ").
    Returns ``None`` when the value cannot be represented (non-strict), or
    raises ``ValueError`` (strict).
    """
    if value is None:
        return None
    if is_instance_of(value, dtype):
        return value
    try:
        if dtype is DataType.TEXT:
            if isinstance(value, bool):
                return "true" if value else "false"
            if isinstance(value, float) and value.is_integer():
                return str(value)
            return str(value)
        if dtype is DataType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float):
                if math.isnan(value) or math.isinf(value):
                    raise ValueError("non-finite float")
                return int(value)
            if isinstance(value, str):
                text = value.strip().replace(",", "")
                if not text:
                    raise ValueError("empty string")
                return int(float(text)) if "." in text or "e" in text.lower() else int(text)
            return int(value)
        if dtype is DataType.REAL:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                text = value.strip().replace(",", "")
                if not text:
                    raise ValueError("empty string")
                return float(text)
            return float(value)
        if dtype is DataType.BOOLEAN:
            if isinstance(value, (int, float)):
                return bool(value)
            if isinstance(value, str):
                word = value.strip().lower()
                if word in _TRUE_WORDS:
                    return True
                if word in _FALSE_WORDS:
                    return False
                raise ValueError(f"not a boolean word: {value!r}")
    except (ValueError, TypeError):
        if strict:
            raise
        return None
    raise TypeError(f"unknown data type: {dtype}")


def values_equal(left: Value, right: Value, *, float_tolerance: float = 0.0) -> bool:
    """Equality used by metrics: numeric cross-type, optional tolerance.

    NULLs compare equal to each other here (metric semantics, not SQL).
    """
    if left is None and right is None:
        return True
    if left is None or right is None:
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        if float_tolerance > 0.0:
            scale = max(abs(float(left)), abs(float(right)), 1.0)
            return abs(float(left) - float(right)) <= float_tolerance * scale
        return float(left) == float(right)
    return left == right
