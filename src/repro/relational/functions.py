"""Scalar function library.

All functions follow SQL NULL propagation: any NULL argument yields NULL,
except where SQL defines otherwise (COALESCE, NULLIF, CONCAT).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro.errors import ExecutionError
from repro.relational.types import Value


def _null_prop(fn: Callable[..., Value]) -> Callable[..., Value]:
    """Wrap a function so any NULL argument short-circuits to NULL."""

    def wrapper(*args: Value) -> Value:
        if any(arg is None for arg in args):
            return None
        return fn(*args)

    return wrapper


def _as_text(value: Value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(value)
    return str(value)


def _fn_upper(value: Value) -> Value:
    return _as_text(value).upper()


def _fn_lower(value: Value) -> Value:
    return _as_text(value).lower()


def _fn_length(value: Value) -> Value:
    return len(_as_text(value))


def _fn_abs(value: Value) -> Value:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ExecutionError(f"ABS expects a number, got {value!r}")
    return abs(value)


def _fn_round(*args: Value) -> Value:
    if not args or len(args) > 2:
        raise ExecutionError("ROUND takes one or two arguments")
    value = args[0]
    digits = args[1] if len(args) == 2 else 0
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ExecutionError(f"ROUND expects a number, got {value!r}")
    if not isinstance(digits, int) or isinstance(digits, bool):
        raise ExecutionError(f"ROUND digits must be an integer, got {digits!r}")
    result = round(float(value) + 0.0, digits)
    return float(result)


def _fn_floor(value: Value) -> Value:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ExecutionError(f"FLOOR expects a number, got {value!r}")
    return int(math.floor(value))


def _fn_ceil(value: Value) -> Value:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ExecutionError(f"CEIL expects a number, got {value!r}")
    return int(math.ceil(value))


def _fn_substr(*args: Value) -> Value:
    if len(args) not in (2, 3):
        raise ExecutionError("SUBSTR takes two or three arguments")
    text = _as_text(args[0])
    start = args[1]
    if not isinstance(start, int) or isinstance(start, bool):
        raise ExecutionError("SUBSTR start must be an integer")
    # SQL SUBSTR is 1-based; 0 and negative starts follow SQLite semantics
    # loosely: clamp to the beginning.
    begin = max(start - 1, 0) if start > 0 else 0
    if len(args) == 3:
        count = args[2]
        if not isinstance(count, int) or isinstance(count, bool):
            raise ExecutionError("SUBSTR length must be an integer")
        if count < 0:
            count = 0
        return text[begin : begin + count]
    return text[begin:]


def _fn_trim(value: Value) -> Value:
    return _as_text(value).strip()


def _fn_replace(value: Value, old: Value, new: Value) -> Value:
    return _as_text(value).replace(_as_text(old), _as_text(new))


def _fn_coalesce(*args: Value) -> Value:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _fn_nullif(left: Value, right: Value) -> Value:
    if left is None:
        return None
    if right is not None and left == right:
        return None
    return left


def _fn_concat(*args: Value) -> Value:
    # SQL CONCAT skips NULLs (MySQL returns NULL; we follow the more
    # forgiving CONCAT_WS-like behaviour that LLM post-processing prefers).
    return "".join(_as_text(arg) for arg in args if arg is not None)


def _fn_sqrt(value: Value) -> Value:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ExecutionError(f"SQRT expects a number, got {value!r}")
    if value < 0:
        return None
    return math.sqrt(value)


def _fn_power(base: Value, exponent: Value) -> Value:
    for arg in (base, exponent):
        if not isinstance(arg, (int, float)) or isinstance(arg, bool):
            raise ExecutionError(f"POWER expects numbers, got {arg!r}")
    try:
        result = math.pow(base, exponent)
    except (OverflowError, ValueError):
        return None
    return result


def _fn_sign(value: Value) -> Value:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ExecutionError(f"SIGN expects a number, got {value!r}")
    return (value > 0) - (value < 0)


_REGISTRY: Dict[str, Callable[..., Value]] = {
    "UPPER": _null_prop(_fn_upper),
    "LOWER": _null_prop(_fn_lower),
    "LENGTH": _null_prop(_fn_length),
    "ABS": _null_prop(_fn_abs),
    "ROUND": _null_prop(_fn_round),
    "FLOOR": _null_prop(_fn_floor),
    "CEIL": _null_prop(_fn_ceil),
    "CEILING": _null_prop(_fn_ceil),
    "SUBSTR": _null_prop(_fn_substr),
    "SUBSTRING": _null_prop(_fn_substr),
    "TRIM": _null_prop(_fn_trim),
    "REPLACE": _null_prop(_fn_replace),
    "COALESCE": _fn_coalesce,
    "NULLIF": _fn_nullif,
    "CONCAT": _fn_concat,
    "SQRT": _null_prop(_fn_sqrt),
    "POWER": _null_prop(_fn_power),
    "POW": _null_prop(_fn_power),
    "SIGN": _null_prop(_fn_sign),
}

_ARITY: Dict[str, Optional[List[int]]] = {
    "UPPER": [1],
    "LOWER": [1],
    "LENGTH": [1],
    "ABS": [1],
    "ROUND": [1, 2],
    "FLOOR": [1],
    "CEIL": [1],
    "CEILING": [1],
    "SUBSTR": [2, 3],
    "SUBSTRING": [2, 3],
    "TRIM": [1],
    "REPLACE": [3],
    "COALESCE": None,  # variadic, >= 1
    "NULLIF": [2],
    "CONCAT": None,
    "SQRT": [1],
    "POWER": [2],
    "POW": [2],
    "SIGN": [1],
}


def is_scalar_function(name: str) -> bool:
    """True if ``name`` is a registered scalar function."""
    return name.upper() in _REGISTRY


def scalar_function_names() -> List[str]:
    """Sorted canonical names (for docs and binder error messages)."""
    return sorted(_REGISTRY)


def call_scalar(name: str, args: List[Value]) -> Value:
    """Invoke a scalar function with arity checking."""
    canonical = name.upper()
    if canonical not in _REGISTRY:
        raise ExecutionError(f"unknown scalar function {name!r}")
    allowed = _ARITY[canonical]
    if allowed is not None and len(args) not in allowed:
        raise ExecutionError(
            f"{canonical} takes {' or '.join(map(str, allowed))} arguments, "
            f"got {len(args)}"
        )
    if allowed is None and not args:
        raise ExecutionError(f"{canonical} requires at least one argument")
    return _REGISTRY[canonical](*args)
