"""In-memory relational substrate.

Provides the data model (types, schemas, tables, catalog), a 3-valued-logic
expression evaluator, scalar and aggregate function libraries, classical
physical operators, and a reference SQL executor used both as the
ground-truth baseline and as the compute layer underneath the LLM engine.
"""

from repro.relational.types import DataType, coerce_value, infer_type
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.catalog import Catalog, CatalogEntry
from repro.relational.executor import ReferenceExecutor

__all__ = [
    "DataType",
    "coerce_value",
    "infer_type",
    "Column",
    "TableSchema",
    "Table",
    "Catalog",
    "CatalogEntry",
    "ReferenceExecutor",
]
