"""Experiment harness: build engines, run workloads, collect metrics.

Engines are built fresh per experiment cell (a fresh cache and meter),
evaluated against the materialized oracle, and summarized per query
class.  Queries an engine cannot plan or execute score zero — an engine
that errors on a supported workload has failed that query, exactly as a
paper's evaluation would count it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baselines.direct import DirectPromptEngine
from repro.baselines.materialized import MaterializedEngine
from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.errors import ReproError
from repro.eval.metrics import (
    DEFAULT_TOLERANCE,
    MetricSummary,
    TupleMetrics,
    exact_match,
    scalar_relative_error,
    tuple_metrics,
)
from repro.eval.workloads import QUERY_CLASSES, WorkloadQuery
from repro.eval.worlds import constraints_for
from repro.llm.accounting import UsageSnapshot
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.llm.world import World

EngineFactory = Callable[[], object]


@dataclass
class QueryEvaluation:
    """Outcome of one query on one engine."""

    query: WorkloadQuery
    metrics: TupleMetrics
    exact: bool
    scalar_error: Optional[float]
    usage: UsageSnapshot
    failed: bool = False
    failure: str = ""
    warnings: List[str] = field(default_factory=list)


@dataclass
class WorkloadEvaluation:
    """Outcome of a whole workload on one engine."""

    engine_name: str
    evaluations: List[QueryEvaluation] = field(default_factory=list)

    def summary(self, query_class: Optional[str] = None) -> MetricSummary:
        summary = MetricSummary()
        for evaluation in self.evaluations:
            if query_class is not None and evaluation.query.query_class != query_class:
                continue
            summary.add(
                metrics=evaluation.metrics,
                exact=evaluation.exact,
                scalar_error=evaluation.scalar_error,
                calls=evaluation.usage.calls,
                tokens=evaluation.usage.total_tokens,
                latency_ms=evaluation.usage.latency_ms,
                cost_usd=evaluation.usage.cost_usd,
            )
        return summary

    def summaries_by_class(self) -> Dict[str, MetricSummary]:
        return {name: self.summary(name) for name in QUERY_CLASSES}


# ---------------------------------------------------------------------------
# Engine construction
# ---------------------------------------------------------------------------


def build_model(
    world: World, noise: NoiseConfig = NoiseConfig(), seed: int = 0
) -> SimulatedLLM:
    """The simulated model over a world."""
    return SimulatedLLM(world, noise=noise, seed=seed)


def build_decomposed(
    model: SimulatedLLM,
    world: World,
    config: EngineConfig = EngineConfig(),
    with_constraints: bool = True,
    name: Optional[str] = None,
) -> LLMStorageEngine:
    """The decomposed engine registered for a world's schemas."""
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema,
            row_estimate=world.row_count(schema.name),
            constraints=(
                constraints_for(world, schema.name) if with_constraints else None
            ),
        )
    if name:
        engine.name = name
    return engine


def build_direct(
    model: SimulatedLLM, world: World, config: EngineConfig = EngineConfig()
) -> DirectPromptEngine:
    """The direct-prompting baseline registered for a world's schemas."""
    engine = DirectPromptEngine(model, config=config)
    engine.register_world_schemas(world)
    return engine


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def evaluate_query(
    engine,
    oracle: MaterializedEngine,
    query: WorkloadQuery,
    tolerance: float = DEFAULT_TOLERANCE,
) -> QueryEvaluation:
    """Run one query on an engine and score it against the oracle."""
    truth = oracle.execute(query.sql).rows
    try:
        result = engine.execute(query.sql)
        predicted = result.rows
        usage = result.usage
        warnings = list(result.warnings)
        failed = False
        failure = ""
    except ReproError as exc:
        predicted = []
        usage = UsageSnapshot()
        warnings = []
        failed = True
        failure = str(exc)
    metrics = tuple_metrics(predicted, truth, tolerance)
    return QueryEvaluation(
        query=query,
        metrics=metrics,
        exact=exact_match(predicted, truth, tolerance),
        scalar_error=scalar_relative_error(predicted, truth),
        usage=usage,
        failed=failed,
        failure=failure,
        warnings=warnings,
    )


def evaluate_engine_on_workload(
    engine,
    world: World,
    queries: List[WorkloadQuery],
    tolerance: float = DEFAULT_TOLERANCE,
) -> WorkloadEvaluation:
    """Run a workload on one engine; score every query."""
    oracle = MaterializedEngine(world)
    outcome = WorkloadEvaluation(engine_name=getattr(engine, "name", "engine"))
    for query in queries:
        outcome.evaluations.append(
            evaluate_query(engine, oracle, query, tolerance=tolerance)
        )
    return outcome
