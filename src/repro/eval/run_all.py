"""Regenerate every evaluation artifact.

Usage::

    python -m repro.eval.run_all [--quick] [--only table2,figure3]
    REPRO_RESULTS_DIR=out python -m repro.eval.run_all

Writes one text artifact per table/figure under ``results/`` and prints
each to stdout.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.experiments import EXPERIMENTS
from repro.eval.reporting import artifact_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="shrink sweeps (CI-sized run)"
    )
    parser.add_argument(
        "--only",
        default="",
        help="comma-separated experiment ids (default: all)",
    )
    args = parser.parse_args(argv)

    wanted = [name.strip() for name in args.only.split(",") if name.strip()]
    unknown = [name for name in wanted if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    selected = wanted or list(EXPERIMENTS)

    for name in selected:
        runner, filename = EXPERIMENTS[name]
        started = time.time()
        artifact = runner(quick=args.quick)
        elapsed = time.time() - started
        path = artifact.save(artifact_path(filename))
        print(artifact.render_text())
        print(f"[{name}] saved {path} ({elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
