"""Synthetic worlds: the ground truth the simulated model "knows".

Three worlds with different shapes:

* **geography** — an embedded, realistic country/city snapshot (the
  knowledge-lookup workload the paper's line of work motivates with);
* **movies** — a generated film catalog with a directors dimension
  (text-heavy, skewed numerics, FK joins); size is a parameter so the
  truncation/selectivity sweeps can scale it;
* **company** — employees/departments (classic SQL-textbook shape with
  salaries for aggregation workloads).

Everything is deterministic: embedded data is static; generated data
uses ``numpy.random.default_rng`` with fixed seeds.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.virtual import ColumnConstraint
from repro.llm.world import World
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType

# ---------------------------------------------------------------------------
# geography — embedded snapshot (populations in thousands, area in 1000 km²,
# gdp in billions USD; values are rounded public figures, which is all the
# accuracy a parametric model would have anyway)
# ---------------------------------------------------------------------------

_COUNTRIES = [
    # name, continent, population (thousands), area (1000 km2), gdp ($B)
    ("France", "Europe", 68000, 644, 2780),
    ("Germany", "Europe", 84000, 358, 4070),
    ("Italy", "Europe", 59000, 301, 2010),
    ("Spain", "Europe", 47600, 506, 1400),
    ("Portugal", "Europe", 10300, 92, 252),
    ("Norway", "Europe", 5400, 385, 482),
    ("Sweden", "Europe", 10500, 450, 585),
    ("Finland", "Europe", 5500, 338, 281),
    ("Poland", "Europe", 37700, 313, 688),
    ("Greece", "Europe", 10400, 132, 219),
    ("Netherlands", "Europe", 17700, 42, 991),
    ("Belgium", "Europe", 11600, 31, 578),
    ("Switzerland", "Europe", 8700, 41, 818),
    ("Austria", "Europe", 9000, 84, 471),
    ("Ireland", "Europe", 5100, 70, 529),
    ("Iceland", "Europe", 370, 103, 28),
    ("Denmark", "Europe", 5900, 43, 395),
    ("Czechia", "Europe", 10500, 79, 290),
    ("Hungary", "Europe", 9700, 93, 178),
    ("Romania", "Europe", 19000, 238, 301),
    ("Japan", "Asia", 125000, 378, 4230),
    ("China", "Asia", 1412000, 9597, 17960),
    ("India", "Asia", 1408000, 3287, 3390),
    ("South Korea", "Asia", 51700, 100, 1670),
    ("Vietnam", "Asia", 98200, 331, 409),
    ("Thailand", "Asia", 71600, 513, 495),
    ("Indonesia", "Asia", 273800, 1905, 1320),
    ("Malaysia", "Asia", 33600, 331, 407),
    ("Philippines", "Asia", 113900, 300, 404),
    ("Pakistan", "Asia", 231400, 881, 375),
    ("Bangladesh", "Asia", 169400, 148, 460),
    ("Turkey", "Asia", 84800, 784, 906),
    ("Israel", "Asia", 9400, 22, 522),
    ("Saudi Arabia", "Asia", 35900, 2150, 1110),
    ("Brazil", "South America", 214300, 8516, 1920),
    ("Argentina", "South America", 45800, 2780, 631),
    ("Chile", "South America", 19500, 756, 301),
    ("Colombia", "South America", 51500, 1142, 343),
    ("Peru", "South America", 33700, 1285, 242),
    ("Uruguay", "South America", 3400, 176, 71),
    ("Nigeria", "Africa", 213400, 924, 477),
    ("Egypt", "Africa", 109300, 1001, 476),
    ("Kenya", "Africa", 53000, 580, 113),
    ("South Africa", "Africa", 59400, 1221, 405),
    ("Morocco", "Africa", 37100, 447, 134),
    ("Ethiopia", "Africa", 120300, 1104, 127),
    ("Ghana", "Africa", 32800, 239, 77),
    ("United States", "North America", 332000, 9834, 25460),
    ("Canada", "North America", 38200, 9985, 2140),
    ("Mexico", "North America", 126700, 1964, 1410),
    ("Cuba", "North America", 11300, 110, 107),
    ("Guatemala", "North America", 17100, 109, 95),
    ("Australia", "Oceania", 25700, 7692, 1680),
    ("New Zealand", "Oceania", 5100, 268, 247),
    ("Fiji", "Oceania", 900, 18, 5),
]

_CITIES = [
    # city, country, population (thousands), is_capital
    ("Paris", "France", 2161, True),
    ("Lyon", "France", 522, False),
    ("Marseille", "France", 870, False),
    ("Berlin", "Germany", 3645, True),
    ("Munich", "Germany", 1488, False),
    ("Hamburg", "Germany", 1841, False),
    ("Rome", "Italy", 2873, True),
    ("Milan", "Italy", 1352, False),
    ("Madrid", "Spain", 3223, True),
    ("Barcelona", "Spain", 1620, False),
    ("Lisbon", "Portugal", 505, True),
    ("Oslo", "Norway", 697, True),
    ("Stockholm", "Sweden", 975, True),
    ("Helsinki", "Finland", 656, True),
    ("Warsaw", "Poland", 1790, True),
    ("Krakow", "Poland", 779, False),
    ("Athens", "Greece", 664, True),
    ("Amsterdam", "Netherlands", 872, True),
    ("Rotterdam", "Netherlands", 651, False),
    ("Brussels", "Belgium", 185, True),
    ("Zurich", "Switzerland", 434, False),
    ("Bern", "Switzerland", 134, True),
    ("Vienna", "Austria", 1897, True),
    ("Dublin", "Ireland", 554, True),
    ("Reykjavik", "Iceland", 131, True),
    ("Copenhagen", "Denmark", 632, True),
    ("Prague", "Czechia", 1309, True),
    ("Budapest", "Hungary", 1752, True),
    ("Bucharest", "Romania", 1883, True),
    ("Tokyo", "Japan", 13960, True),
    ("Osaka", "Japan", 2691, False),
    ("Kyoto", "Japan", 1464, False),
    ("Beijing", "China", 21540, True),
    ("Shanghai", "China", 24870, False),
    ("Shenzhen", "China", 12590, False),
    ("Delhi", "India", 16787, True),
    ("Mumbai", "India", 12442, False),
    ("Bangalore", "India", 8443, False),
    ("Seoul", "South Korea", 9776, True),
    ("Busan", "South Korea", 3448, False),
    ("Hanoi", "Vietnam", 8053, True),
    ("Bangkok", "Thailand", 10539, True),
    ("Jakarta", "Indonesia", 10562, True),
    ("Kuala Lumpur", "Malaysia", 1808, True),
    ("Manila", "Philippines", 1780, True),
    ("Karachi", "Pakistan", 14910, False),
    ("Islamabad", "Pakistan", 1015, True),
    ("Dhaka", "Bangladesh", 8906, True),
    ("Ankara", "Turkey", 5663, True),
    ("Istanbul", "Turkey", 15460, False),
    ("Jerusalem", "Israel", 936, True),
    ("Riyadh", "Saudi Arabia", 7676, True),
    ("Brasilia", "Brazil", 3055, True),
    ("Sao Paulo", "Brazil", 12330, False),
    ("Rio de Janeiro", "Brazil", 6748, False),
    ("Buenos Aires", "Argentina", 3076, True),
    ("Santiago", "Chile", 6160, True),
    ("Bogota", "Colombia", 7413, True),
    ("Lima", "Peru", 9752, True),
    ("Montevideo", "Uruguay", 1319, True),
    ("Abuja", "Nigeria", 1236, True),
    ("Lagos", "Nigeria", 14862, False),
    ("Cairo", "Egypt", 9540, True),
    ("Nairobi", "Kenya", 4397, True),
    ("Cape Town", "South Africa", 4618, False),
    ("Pretoria", "South Africa", 741, True),
    ("Rabat", "Morocco", 577, True),
    ("Casablanca", "Morocco", 3360, False),
    ("Addis Ababa", "Ethiopia", 3860, True),
    ("Accra", "Ghana", 2291, True),
    ("Washington", "United States", 705, True),
    ("New York", "United States", 8380, False),
    ("Los Angeles", "United States", 3990, False),
    ("Chicago", "United States", 2706, False),
    ("Ottawa", "Canada", 994, True),
    ("Toronto", "Canada", 2930, False),
    ("Vancouver", "Canada", 675, False),
    ("Mexico City", "Mexico", 9209, True),
    ("Havana", "Cuba", 2130, True),
    ("Guatemala City", "Guatemala", 995, True),
    ("Canberra", "Australia", 431, True),
    ("Sydney", "Australia", 5312, False),
    ("Melbourne", "Australia", 5078, False),
    ("Wellington", "New Zealand", 212, True),
    ("Auckland", "New Zealand", 1571, False),
    ("Suva", "Fiji", 94, True),
]


def geography_world() -> World:
    """The embedded country/city snapshot."""
    countries = TableSchema(
        name="countries",
        columns=(
            Column("name", DataType.TEXT, nullable=False, description="country name"),
            Column("continent", DataType.TEXT, description="continent the country is in"),
            Column("population", DataType.INTEGER, description="population in thousands"),
            Column("area", DataType.INTEGER, description="land area in thousands of km^2"),
            Column("gdp", DataType.INTEGER, description="nominal GDP in billions of USD"),
        ),
        primary_key=("name",),
        description="Sovereign countries with rounded public statistics",
    )
    cities = TableSchema(
        name="cities",
        columns=(
            Column("city", DataType.TEXT, nullable=False, description="city name"),
            Column("country", DataType.TEXT, description="country the city is in"),
            Column("city_population", DataType.INTEGER, description="city proper population in thousands"),
            Column("is_capital", DataType.BOOLEAN, description="whether the city is the national capital"),
        ),
        primary_key=("city",),
        description="Major world cities",
    )
    return World(
        "geography",
        [
            Table(countries, _COUNTRIES),
            Table(cities, _CITIES),
        ],
        description="countries and major cities with rounded public statistics",
    )


# ---------------------------------------------------------------------------
# movies — generated catalog
# ---------------------------------------------------------------------------

_DIRECTOR_FIRST = [
    "Ava", "Noah", "Mara", "Liam", "Ingrid", "Hugo", "Sofia", "Akira", "Elena",
    "Marcus", "Petra", "Dmitri", "Yuki", "Carmen", "Felix",
]
_DIRECTOR_LAST = [
    "Lindqvist", "Moretti", "Tanaka", "Okafor", "Kovacs", "Dubois", "Alvarez",
    "Novak", "Eriksen", "Marchetti", "Silva", "Haas", "Petrov", "Ferreira",
]
_TITLE_HEAD = [
    "Midnight", "Silent", "Crimson", "Golden", "Broken", "Electric", "Winter",
    "Burning", "Hollow", "Distant", "Velvet", "Savage", "Paper", "Iron",
    "Glass", "Wild",
]
_TITLE_TAIL = [
    "Harbor", "Echoes", "Garden", "Horizon", "Letters", "Empire", "Orchard",
    "Shadows", "Station", "Voyage", "Reverie", "Frontier", "Monarch",
    "Tides", "Labyrinth", "Circuit",
]
_GENRES = ["drama", "thriller", "comedy", "sci-fi", "documentary", "noir"]
_DIRECTOR_COUNTRIES = [
    "France", "Italy", "Japan", "Nigeria", "Hungary", "Spain", "Brazil",
    "Sweden", "Germany", "United States",
]


def movies_world(n_movies: int = 240, seed: int = 11) -> World:
    """A generated film catalog with a directors dimension table."""
    rng = np.random.default_rng(seed)
    directors: List[tuple] = []
    names = []
    for first in _DIRECTOR_FIRST:
        for last in _DIRECTOR_LAST:
            names.append(f"{first} {last}")
    rng.shuffle(names)
    director_count = 30
    for name in names[:director_count]:
        directors.append(
            (
                name,
                _DIRECTOR_COUNTRIES[int(rng.integers(len(_DIRECTOR_COUNTRIES)))],
                int(rng.integers(1935, 1985)),
            )
        )

    titles = []
    for head in _TITLE_HEAD:
        for tail in _TITLE_TAIL:
            titles.append(f"{head} {tail}")
    if n_movies > len(titles):
        extra = []
        for head in _TITLE_HEAD:
            for tail in _TITLE_TAIL:
                extra.append(f"The {head} {tail}")
        titles = titles + extra
    if n_movies > len(titles):
        raise ValueError(f"movies_world supports at most {len(titles)} movies")
    rng.shuffle(titles)

    movies: List[tuple] = []
    for title in titles[:n_movies]:
        director = directors[int(rng.integers(director_count))][0]
        year = int(rng.integers(1965, 2024))
        genre = _GENRES[int(rng.integers(len(_GENRES)))]
        rating = round(float(rng.uniform(3.2, 9.4)), 1)
        # Log-normal-ish gross in millions, skewed like real box office.
        gross = round(float(np.exp(rng.normal(2.8, 1.1))), 1)
        runtime = int(rng.integers(78, 205))
        movies.append((title, director, year, genre, rating, gross, runtime))

    movies_schema = TableSchema(
        name="movies",
        columns=(
            Column("title", DataType.TEXT, nullable=False, description="film title"),
            Column("director", DataType.TEXT, description="director's full name"),
            Column("year", DataType.INTEGER, description="release year"),
            Column("genre", DataType.TEXT, description="primary genre"),
            Column("rating", DataType.REAL, description="average critic rating, 0-10"),
            Column("gross", DataType.REAL, description="worldwide gross in millions USD"),
            Column("runtime", DataType.INTEGER, description="runtime in minutes"),
        ),
        primary_key=("title",),
        description="A film catalog",
    )
    directors_schema = TableSchema(
        name="directors",
        columns=(
            Column("name", DataType.TEXT, nullable=False, description="director's full name"),
            Column("country", DataType.TEXT, description="country of origin"),
            Column("born", DataType.INTEGER, description="year of birth"),
        ),
        primary_key=("name",),
        description="Film directors",
    )
    return World(
        "movies",
        [Table(movies_schema, movies), Table(directors_schema, directors)],
        description="a film catalog with a directors dimension",
    )


# ---------------------------------------------------------------------------
# company — employees/departments
# ---------------------------------------------------------------------------

_EMP_FIRST = [
    "Alice", "Bruno", "Chen", "Dara", "Emil", "Farah", "Goran", "Hana",
    "Ivan", "Jolan", "Kiran", "Lena", "Mika", "Nadia", "Omar", "Priya",
    "Quinn", "Rosa", "Sven", "Tara",
]
_EMP_LAST = [
    "Abe", "Bergman", "Castillo", "Dorsey", "Engel", "Fontaine", "Guerra",
    "Hoffman", "Iqbal", "Jansen", "Keller", "Lindgren", "Maro", "Nilsen",
    "Oduya", "Price",
]
_DEPARTMENTS = [
    ("Engineering", "Berlin", 12_000_000),
    ("Sales", "London", 7_500_000),
    ("Marketing", "Paris", 4_200_000),
    ("Finance", "Zurich", 5_600_000),
    ("Support", "Lisbon", 2_300_000),
    ("Research", "Copenhagen", 8_800_000),
    ("Operations", "Rotterdam", 3_900_000),
    ("Legal", "Vienna", 2_700_000),
]
_ROLES = ["analyst", "engineer", "manager", "specialist", "lead", "associate"]


def company_world(n_employees: int = 160, seed: int = 23) -> World:
    """Employees and departments with salary data."""
    rng = np.random.default_rng(seed)
    names = []
    for first in _EMP_FIRST:
        for last in _EMP_LAST:
            names.append(f"{first} {last}")
    rng.shuffle(names)
    if n_employees > len(names):
        raise ValueError(f"company_world supports at most {len(names)} employees")

    employees: List[tuple] = []
    for index, name in enumerate(names[:n_employees]):
        department = _DEPARTMENTS[int(rng.integers(len(_DEPARTMENTS)))][0]
        role = _ROLES[int(rng.integers(len(_ROLES)))]
        salary = int(rng.integers(38, 185)) * 1000
        hired = int(rng.integers(2005, 2024))
        remote = bool(rng.integers(0, 2))
        employees.append((name, department, role, salary, hired, remote))

    employees_schema = TableSchema(
        name="employees",
        columns=(
            Column("name", DataType.TEXT, nullable=False, description="employee full name"),
            Column("department", DataType.TEXT, description="department the employee works in"),
            Column("role", DataType.TEXT, description="job role"),
            Column("salary", DataType.INTEGER, description="annual salary in USD"),
            Column("hired", DataType.INTEGER, description="year of hire"),
            Column("remote", DataType.BOOLEAN, description="works remotely"),
        ),
        primary_key=("name",),
        description="Employees of a mid-size company",
    )
    departments_schema = TableSchema(
        name="departments",
        columns=(
            Column("dept_name", DataType.TEXT, nullable=False, description="department name"),
            Column("hq_city", DataType.TEXT, description="city of the department HQ"),
            Column("budget", DataType.INTEGER, description="annual budget in USD"),
        ),
        primary_key=("dept_name",),
        description="Company departments",
    )
    return World(
        "company",
        [
            Table(employees_schema, employees),
            Table(departments_schema, _DEPARTMENTS),
        ],
        description="employees and departments of a mid-size company",
    )


def all_worlds() -> Dict[str, World]:
    """The three standard evaluation worlds."""
    return {
        "geography": geography_world(),
        "movies": movies_world(),
        "company": company_world(),
    }


# ---------------------------------------------------------------------------
# Constraints derived from world statistics (practitioner knowledge)
# ---------------------------------------------------------------------------

#: Categorical domains larger than this are not turned into constraints.
_MAX_CATEGORICAL = 40


def constraints_for(world: World, table_name: str) -> Dict[str, ColumnConstraint]:
    """Plausibility constraints a practitioner would configure.

    Numeric columns get a generous range around the observed one (an
    order-of-magnitude confabulation falls outside it; an honest rounded
    value does not).  Low-cardinality text columns get closed domains,
    except key-like columns.
    """
    table = world.table(table_name)
    schema = table.schema
    keys = {name.lower() for name in schema.primary_key}
    constraints: Dict[str, ColumnConstraint] = {}
    for column in schema.columns:
        if column.name.lower() in keys:
            continue
        values = [v for v in table.column_values(column.name) if v is not None]
        if not values:
            continue
        if column.dtype in (DataType.INTEGER, DataType.REAL):
            low = min(values)
            high = max(values)
            span = max(abs(high - low), abs(high), 1.0)
            constraints[column.name] = ColumnConstraint(
                min_value=low - 0.5 * span, max_value=high + 0.5 * span
            )
        elif column.dtype is DataType.TEXT:
            domain = set(values)
            if len(domain) <= _MAX_CATEGORICAL:
                constraints[column.name] = ColumnConstraint(
                    allowed_values=frozenset(domain)
                )
    return constraints
