"""Evaluation: metrics, synthetic worlds, workloads, experiment harness.

``python -m repro.eval.run_all`` regenerates every table and figure of
the evaluation into ``results/``; individual experiments live in
:mod:`repro.eval.experiments` and are also wrapped by the benchmark
suite under ``benchmarks/``.
"""

from repro.eval.metrics import (
    MetricSummary,
    TupleMetrics,
    exact_match,
    scalar_relative_error,
    tuple_metrics,
)
from repro.eval.worlds import (
    all_worlds,
    company_world,
    constraints_for,
    geography_world,
    movies_world,
)
from repro.eval.workloads import WorkloadQuery, workload_for, QUERY_CLASSES
from repro.eval.harness import EngineFactory, QueryEvaluation, evaluate_engine_on_workload
from repro.eval.reporting import ResultTable, Series

__all__ = [
    "MetricSummary",
    "TupleMetrics",
    "exact_match",
    "scalar_relative_error",
    "tuple_metrics",
    "all_worlds",
    "company_world",
    "constraints_for",
    "geography_world",
    "movies_world",
    "WorkloadQuery",
    "workload_for",
    "QUERY_CLASSES",
    "EngineFactory",
    "QueryEvaluation",
    "evaluate_engine_on_workload",
    "ResultTable",
    "Series",
]
