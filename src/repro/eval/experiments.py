"""Experiment runners: one function per table/figure of the evaluation.

Each runner builds fresh engines, executes its workload, and returns a
:class:`~repro.eval.reporting.ResultTable` (tables) or
:class:`~repro.eval.reporting.Series` (figures).  ``quick=True`` shrinks
sweeps for the benchmark suite; the default sizes regenerate the full
artifacts (``python -m repro.eval.run_all``).

Experiment index (see DESIGN.md §4): Table 1 workload census, Table 2
per-class accuracy, Figure 3 truncation, Figure 4 pushdown, Table 3
mitigation ablation, Figure 5 voting frontier, Figure 6 join strategy
crossover, Table 4 cost-model fidelity, Figure 7 noise robustness.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import EngineConfig
from repro.eval import harness
from repro.eval.metrics import DEFAULT_TOLERANCE
from repro.eval.reporting import ResultTable, Series
from repro.eval.workloads import QUERY_CLASSES, WorkloadQuery, workload_for
from repro.eval.worlds import all_worlds, geography_world, movies_world
from repro.llm.noise import NoiseConfig

#: Default noise used by the accuracy experiments (the "realistic" model).
DEFAULT_NOISE = NoiseConfig()

#: Seed used everywhere unless an experiment sweeps it.
SEED = 7


# ---------------------------------------------------------------------------
# Table 1 — workload census
# ---------------------------------------------------------------------------


def table1_workloads(quick: bool = False) -> ResultTable:
    """Worlds and workloads used throughout the evaluation."""
    table = ResultTable(
        title="Table 1: evaluation worlds and workloads",
        columns=["world", "tables", "rows", "cells"] + QUERY_CLASSES,
    )
    for name, world in all_worlds().items():
        queries = workload_for(world)
        per_class = {
            cls: sum(1 for q in queries if q.query_class == cls)
            for cls in QUERY_CLASSES
        }
        total_rows = sum(world.row_count(t) for t in world.table_names())
        table.add_row(
            name,
            len(world.table_names()),
            total_rows,
            world.total_cells(),
            *[per_class[cls] for cls in QUERY_CLASSES],
        )
    return table


# ---------------------------------------------------------------------------
# Table 2 — per-class accuracy of the three engines
# ---------------------------------------------------------------------------


def table2_accuracy(quick: bool = False, seed: int = SEED) -> ResultTable:
    """Tuple-F1 per query class: direct vs naive vs optimized decomposed."""
    worlds = all_worlds()
    seeds = [seed] if quick else [seed, seed + 10, seed + 20]
    if quick:
        worlds = {"geography": worlds["geography"]}
    table = ResultTable(
        title="Table 2: accuracy (tuple F1) per query class",
        columns=["engine"] + QUERY_CLASSES + ["mean F1", "exact", "calls/query"],
    )
    engine_rows: Dict[str, List[harness.WorkloadEvaluation]] = {
        "direct": [],
        "naive": [],
        "decomposed": [],
    }
    for world in worlds.values():
        queries = workload_for(world)
        for run_seed in seeds:
            model = harness.build_model(world, DEFAULT_NOISE, run_seed)
            engines = {
                "direct": harness.build_direct(model, world),
                "naive": harness.build_decomposed(
                    model, world, EngineConfig.naive(), name="naive"
                ),
                "decomposed": harness.build_decomposed(model, world),
            }
            for name, engine in engines.items():
                engine_rows[name].append(
                    harness.evaluate_engine_on_workload(engine, world, queries)
                )
    for name, evaluations in engine_rows.items():
        merged = harness.WorkloadEvaluation(engine_name=name)
        for evaluation in evaluations:
            merged.evaluations.extend(evaluation.evaluations)
        by_class = merged.summaries_by_class()
        overall = merged.summary()
        table.add_row(
            name,
            *[by_class[cls].mean_f1 for cls in QUERY_CLASSES],
            overall.mean_f1,
            overall.exact_rate,
            overall.mean_calls,
        )
    table.add_note(
        f"noise: gap={DEFAULT_NOISE.knowledge_gap_rate}, "
        f"sampling={DEFAULT_NOISE.sampling_error_rate}; seed={seed}; "
        f"tolerance={DEFAULT_TOLERANCE}"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 3 — recall collapse under output truncation
# ---------------------------------------------------------------------------


def figure3_truncation(quick: bool = False, seed: int = SEED) -> Series:
    """Recall vs requested result size with a fixed output budget."""
    sizes = [5, 10, 20, 40, 80, 160] if not quick else [5, 20, 80]
    world = movies_world()
    model = harness.build_model(world, NoiseConfig.perfect(), seed)
    budget_config = EngineConfig().with_(max_output_tokens=256)
    direct = harness.build_direct(model, world, budget_config)
    decomposed = harness.build_decomposed(model, world, budget_config)
    oracle = harness.MaterializedEngine(world)

    series = Series(
        title="Figure 3: recall vs result size (output budget 256 tokens)",
        columns=["limit", "direct recall", "decomposed recall",
                 "direct calls", "decomposed calls"],
    )
    for limit in sizes:
        sql = f"SELECT title, year FROM movies ORDER BY title LIMIT {limit}"
        query = WorkloadQuery(
            query_id=f"fig3-{limit}", sql=sql, query_class="topk",
            world_name=world.name,
        )
        d_eval = harness.evaluate_query(direct, oracle, query)
        e_eval = harness.evaluate_query(decomposed, oracle, query)
        series.add_row(
            limit,
            d_eval.metrics.recall,
            e_eval.metrics.recall,
            d_eval.usage.calls,
            e_eval.usage.calls,
        )
    series.add_note("zero-noise model: differences are purely structural")
    return series


# ---------------------------------------------------------------------------
# Figure 4 — predicate pushdown: calls/tokens vs selectivity
# ---------------------------------------------------------------------------


def figure4_pushdown(quick: bool = False, seed: int = SEED) -> Series:
    """Cost of a filter scan with and without predicate pushdown."""
    world = movies_world()
    total = world.row_count("movies")
    thresholds = [2020, 2010, 2000, 1990, 1980, 1965]
    if quick:
        thresholds = [2015, 1995, 1965]
    model = harness.build_model(world, DEFAULT_NOISE, seed)
    oracle = harness.MaterializedEngine(world)

    series = Series(
        title="Figure 4: pushdown on/off — calls and tokens vs selectivity",
        columns=[
            "selectivity", "pushdown calls", "no-pushdown calls",
            "pushdown tokens", "no-pushdown tokens",
            "pushdown F1", "no-pushdown F1",
        ],
    )
    for threshold in thresholds:
        sql = f"SELECT title, rating FROM movies WHERE year >= {threshold}"
        matching = len(
            oracle.execute(f"SELECT title FROM movies WHERE year >= {threshold}").rows
        )
        query = WorkloadQuery(
            query_id=f"fig4-{threshold}", sql=sql, query_class="filter",
            world_name=world.name,
        )
        with_pd = harness.build_decomposed(model, world)
        without_pd = harness.build_decomposed(
            model, world, EngineConfig().with_(enable_pushdown=False),
            name="no-pushdown",
        )
        on_eval = harness.evaluate_query(with_pd, oracle, query)
        off_eval = harness.evaluate_query(without_pd, oracle, query)
        series.add_row(
            round(matching / total, 3),
            on_eval.usage.calls,
            off_eval.usage.calls,
            on_eval.usage.total_tokens,
            off_eval.usage.total_tokens,
            on_eval.metrics.f1,
            off_eval.metrics.f1,
        )
    return series


# ---------------------------------------------------------------------------
# Table 3 — mitigation ablation
# ---------------------------------------------------------------------------


def table3_ablation(quick: bool = False, seed: int = SEED) -> ResultTable:
    """Voting / validation / caching / batching ablation on a lookup-heavy
    workload under elevated sampling noise."""
    world = geography_world()
    noise = DEFAULT_NOISE.with_sampling_error(0.18)
    queries = [
        q for q in workload_for(world) if q.query_class in ("lookup", "join")
    ]
    if quick:
        queries = queries[:4]
    # Run the workload twice: an interactive session repeats lookups,
    # which is what the cache row is about.
    queries = queries + queries

    configurations = [
        ("full (votes=3)", EngineConfig().with_(votes=3), True),
        ("votes=1", EngineConfig(), True),
        ("votes=5", EngineConfig().with_(votes=5), True),
        ("no validation", EngineConfig().with_(votes=3, enable_validation=False), False),
        ("no cache", EngineConfig().with_(votes=3, enable_cache=False), True),
        ("batch=1", EngineConfig().with_(votes=3, lookup_batch_size=1), True),
    ]
    table = ResultTable(
        title="Table 3: mitigation ablation (lookup+join workload, "
        "sampling error 0.18)",
        columns=["configuration", "F1", "exact", "calls", "tokens", "cost $"],
    )
    for label, config, constraints in configurations:
        model = harness.build_model(world, noise, seed)
        engine = harness.build_decomposed(
            model, world, config, with_constraints=constraints, name=label
        )
        outcome = harness.evaluate_engine_on_workload(engine, world, queries)
        summary = outcome.summary()
        table.add_row(
            label,
            summary.mean_f1,
            summary.exact_rate,
            summary.total_calls,
            summary.total_tokens,
            summary.total_cost_usd,
        )
    return table


# ---------------------------------------------------------------------------
# Figure 5 — voting cost/accuracy frontier
# ---------------------------------------------------------------------------


def figure5_voting(quick: bool = False, seed: int = SEED) -> Series:
    """Accuracy and cost as the vote count k grows."""
    vote_counts = [1, 3, 5, 7, 9] if not quick else [1, 3, 5]
    world = geography_world()
    noise = DEFAULT_NOISE.with_sampling_error(0.20)
    queries = [q for q in workload_for(world) if q.query_class == "lookup"]

    series = Series(
        title="Figure 5: self-consistency voting — accuracy vs cost "
        "(sampling error 0.20)",
        columns=["votes k", "F1", "exact", "calls", "tokens"],
    )
    for votes in vote_counts:
        model = harness.build_model(world, noise, seed)
        engine = harness.build_decomposed(
            model, world, EngineConfig().with_(votes=votes), name=f"votes={votes}"
        )
        outcome = harness.evaluate_engine_on_workload(engine, world, queries)
        summary = outcome.summary()
        series.add_row(
            votes,
            summary.mean_f1,
            summary.exact_rate,
            summary.total_calls,
            summary.total_tokens,
        )
    series.add_note(
        "knowledge gaps bound attainable accuracy; voting only removes "
        "sampling errors"
    )
    return series


# ---------------------------------------------------------------------------
# Figure 6 — join strategy crossover
# ---------------------------------------------------------------------------


def figure6_joins(quick: bool = False, seed: int = SEED) -> Series:
    """Lookup-join vs enumerate-join cost as build-side selectivity grows."""
    world = geography_world()
    thresholds = [12000, 8000, 5000, 3000, 1500, 500, 0]
    if quick:
        thresholds = [8000, 2000, 0]
    model = harness.build_model(world, NoiseConfig.perfect(), seed)
    oracle = harness.MaterializedEngine(world)

    series = Series(
        title="Figure 6: join strategy — calls vs number of join keys",
        columns=[
            "join keys", "lookup-join calls", "enumerate-join calls",
            "lookup tokens", "enumerate tokens", "optimizer choice",
        ],
    )
    for threshold in thresholds:
        sql = (
            "SELECT c.city, k.continent FROM cities c JOIN countries k "
            f"ON k.name = c.country WHERE c.city_population > {threshold}"
        )
        keys = len(
            oracle.execute(
                "SELECT DISTINCT country FROM cities "
                f"WHERE city_population > {threshold}"
            ).rows
        )
        query = WorkloadQuery(
            query_id=f"fig6-{threshold}", sql=sql, query_class="join",
            world_name=world.name,
        )
        lookup_engine = harness.build_decomposed(model, world, name="lookup-join")
        enum_engine = harness.build_decomposed(
            model, world, EngineConfig().with_(enable_lookup_join=False),
            name="enumerate-join",
        )
        lookup_eval = harness.evaluate_query(lookup_engine, oracle, query)
        enum_eval = harness.evaluate_query(enum_engine, oracle, query)
        plan = lookup_engine.plan(sql)
        choice = "lookup" if any(
            step.kind == "lookup" for step in getattr(plan, "steps", [])
        ) else "scan"
        series.add_row(
            keys,
            lookup_eval.usage.calls,
            enum_eval.usage.calls,
            lookup_eval.usage.total_tokens,
            enum_eval.usage.total_tokens,
            choice,
        )
    return series


# ---------------------------------------------------------------------------
# Table 4 — cost-model fidelity
# ---------------------------------------------------------------------------


def table4_costmodel(quick: bool = False, seed: int = SEED) -> ResultTable:
    """Estimated vs actual model calls for the optimized plans."""
    from scipy import stats as scipy_stats

    worlds = all_worlds()
    if quick:
        worlds = {"geography": worlds["geography"]}
    table = ResultTable(
        title="Table 4: cost model fidelity (estimated vs actual calls)",
        columns=["query", "est calls", "actual calls", "est tokens", "actual tokens"],
    )
    estimated: List[float] = []
    actual: List[float] = []
    for world in worlds.values():
        model = harness.build_model(world, NoiseConfig.perfect(), seed)
        engine = harness.build_decomposed(
            model, world, EngineConfig().with_(enable_cache=False)
        )
        for query in workload_for(world):
            try:
                plan = engine.plan(query.sql)
                result = engine.execute(query.sql)
            except Exception:
                continue
            estimate = plan.estimate
            estimated.append(estimate.calls)
            actual.append(float(result.usage.calls))
            table.add_row(
                query.query_id,
                estimate.calls,
                result.usage.calls,
                estimate.total_tokens,
                result.usage.total_tokens,
            )
    if len(estimated) >= 3:
        rho, _ = scipy_stats.spearmanr(estimated, actual)
        table.add_note(f"Spearman rank correlation (calls): {rho:.3f}")
    return table


# ---------------------------------------------------------------------------
# Figure 7 — noise robustness
# ---------------------------------------------------------------------------


def figure7_noise(quick: bool = False, seed: int = SEED) -> Series:
    """Mean F1 of each engine as the knowledge-gap rate grows."""
    gaps = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5] if not quick else [0.0, 0.1, 0.3]
    world = geography_world()
    queries = workload_for(world)
    if quick:
        queries = queries[:8]

    series = Series(
        title="Figure 7: robustness — mean tuple F1 vs knowledge-gap rate",
        columns=["gap rate", "direct F1", "naive F1", "decomposed F1"],
    )
    for gap in gaps:
        noise = DEFAULT_NOISE.with_gap(gap)
        model = harness.build_model(world, noise, seed)
        engines = {
            "direct": harness.build_direct(model, world),
            "naive": harness.build_decomposed(
                model, world, EngineConfig.naive(), name="naive"
            ),
            "decomposed": harness.build_decomposed(model, world),
        }
        scores = {}
        for name, engine in engines.items():
            outcome = harness.evaluate_engine_on_workload(engine, world, queries)
            scores[name] = outcome.summary().mean_f1
        series.add_row(gap, scores["direct"], scores["naive"], scores["decomposed"])
    return series


# ---------------------------------------------------------------------------
# Figure 8 — lookup batching
# ---------------------------------------------------------------------------


def figure8_batching(quick: bool = False, seed: int = SEED) -> Series:
    """Calls/tokens vs entities per lookup call (batch-size ablation)."""
    batch_sizes = [1, 2, 4, 8, 16, 32] if not quick else [1, 8, 32]
    world = geography_world()
    sql = (
        "SELECT c.city, k.continent, k.gdp FROM cities c "
        "JOIN countries k ON k.name = c.country WHERE c.city_population > 500"
    )
    query = WorkloadQuery(
        query_id="fig8", sql=sql, query_class="join", world_name=world.name
    )
    oracle = harness.MaterializedEngine(world)
    model = harness.build_model(world, DEFAULT_NOISE, seed)

    series = Series(
        title="Figure 8: lookup batching — cost vs entities per call",
        columns=["batch size", "calls", "prompt tokens", "completion tokens", "F1"],
    )
    for batch in batch_sizes:
        engine = harness.build_decomposed(
            model, world,
            EngineConfig().with_(lookup_batch_size=batch, enable_cache=False),
            name=f"batch={batch}",
        )
        evaluation = harness.evaluate_query(engine, oracle, query)
        series.add_row(
            batch,
            evaluation.usage.calls,
            evaluation.usage.prompt_tokens,
            evaluation.usage.completion_tokens,
            evaluation.metrics.f1,
        )
    series.add_note(
        "batch size feeds the cost model: at tiny batches lookup-joins "
        "stop paying off and the optimizer falls back to enumerate-joins "
        "(identical cost rows); once lookups win, framing overhead "
        "amortizes with batch size at constant accuracy"
    )
    return series


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS = {
    "table1": (table1_workloads, "table1_workloads.txt"),
    "table2": (table2_accuracy, "table2_accuracy.txt"),
    "figure3": (figure3_truncation, "figure3_truncation.txt"),
    "figure4": (figure4_pushdown, "figure4_pushdown.txt"),
    "table3": (table3_ablation, "table3_ablation.txt"),
    "figure5": (figure5_voting, "figure5_voting.txt"),
    "figure6": (figure6_joins, "figure6_joins.txt"),
    "table4": (table4_costmodel, "table4_costmodel.txt"),
    "figure7": (figure7_noise, "figure7_noise.txt"),
    "figure8": (figure8_batching, "figure8_batching.txt"),
}
