"""Plain-text tables and series for reporting experiment results.

The paper artifacts are tables and line plots; offline we render both as
aligned text (a Series is a table whose first column is the x-axis).
Every experiment writes one artifact file under ``results/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Union

Cell = Union[str, int, float, bool, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return f"{value:.1f}"
        if abs(value) >= 100:
            return f"{value:.0f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class ResultTable:
    """A titled table of results."""

    title: str
    columns: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render_text(self) -> str:
        cells = [[_format_cell(cell) for cell in row] for row in self.rows]
        widths = [len(name) for name in self.columns]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = " | ".join(
            name.ljust(widths[index]) for index, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in cells:
            lines.append(
                " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def save(self, path: str) -> str:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render_text() + "\n")
        return path

    def column_values(self, name: str) -> List[Cell]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


@dataclass
class Series(ResultTable):
    """A figure rendered as a table: first column is the x axis."""

    def render_text(self) -> str:
        return super().render_text()


def results_dir() -> str:
    """Directory experiment artifacts are written into."""
    return os.environ.get("REPRO_RESULTS_DIR", "results")


def artifact_path(name: str) -> str:
    return os.path.join(results_dir(), name)


def save_metrics(bench_name: str, metrics: dict) -> str:
    """Write one benchmark's machine-readable metrics.

    Lands as ``BENCH_<name>.json`` under :func:`results_dir`; the CI
    bench runner (``benchmarks/run_benchmarks.py``) consolidates these
    files into ``BENCH_results.json`` and gates the recorded floors in
    ``benchmarks/baseline.json`` against them.
    """
    import json

    path = artifact_path(f"BENCH_{bench_name}.json")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
