"""Query workloads per world, tagged by query class.

Five classes, matching how this line of work slices its accuracy tables:

* ``lookup`` — point queries addressing one entity by key;
* ``filter`` — selections returning multiple rows;
* ``join`` — FK joins across two virtual tables;
* ``aggregate`` — COUNT/SUM/AVG, with and without GROUP BY;
* ``topk`` — ORDER BY ... LIMIT queries.

Queries that need concrete entity values take them from the world's
ground truth deterministically (fixed row indices), so workloads are
stable across runs while staying valid if world generation changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import WorkloadError
from repro.llm.world import World

#: Query class identifiers, in reporting order.
QUERY_CLASSES = ["lookup", "filter", "join", "aggregate", "topk"]


@dataclass(frozen=True)
class WorkloadQuery:
    """One evaluation query."""

    query_id: str
    sql: str
    query_class: str
    world_name: str

    def __post_init__(self):
        if self.query_class not in QUERY_CLASSES:
            raise WorkloadError(f"unknown query class {self.query_class!r}")


def _q(world: str, query_class: str, number: int, sql: str) -> WorkloadQuery:
    return WorkloadQuery(
        query_id=f"{world}-{query_class}-{number}",
        sql=sql,
        query_class=query_class,
        world_name=world,
    )


# ---------------------------------------------------------------------------
# geography
# ---------------------------------------------------------------------------


def _geography_workload(world: World) -> List[WorkloadQuery]:
    name = "geography"
    return [
        _q(name, "lookup", 1, "SELECT population FROM countries WHERE name = 'France'"),
        _q(name, "lookup", 2, "SELECT continent, gdp FROM countries WHERE name = 'Japan'"),
        _q(name, "lookup", 3, "SELECT city_population FROM cities WHERE city = 'Nairobi'"),
        _q(name, "lookup", 4, "SELECT is_capital, country FROM cities WHERE city = 'Sydney'"),
        _q(
            name, "filter", 1,
            "SELECT name FROM countries WHERE continent = 'Europe' AND population > 10000",
        ),
        _q(
            name, "filter", 2,
            "SELECT city FROM cities WHERE is_capital = TRUE AND city_population > 5000",
        ),
        _q(
            name, "filter", 3,
            "SELECT name, gdp FROM countries WHERE gdp BETWEEN 200 AND 600",
        ),
        _q(
            name, "filter", 4,
            "SELECT city, country FROM cities WHERE city LIKE 'B%' AND city_population > 1000",
        ),
        _q(
            name, "join", 1,
            "SELECT c.city, k.continent FROM cities c JOIN countries k "
            "ON k.name = c.country WHERE c.city_population > 8000",
        ),
        _q(
            name, "join", 2,
            "SELECT c.city, k.gdp FROM cities c JOIN countries k "
            "ON k.name = c.country WHERE c.is_capital = TRUE AND k.continent = 'Africa'",
        ),
        _q(
            name, "join", 3,
            "SELECT c.city FROM cities c JOIN countries k ON k.name = c.country "
            "WHERE k.population > 200000 AND c.is_capital = TRUE",
        ),
        _q(name, "aggregate", 1, "SELECT COUNT(*) FROM countries WHERE continent = 'Asia'"),
        _q(
            name, "aggregate", 2,
            "SELECT continent, COUNT(*) AS n, SUM(population) AS total_pop "
            "FROM countries GROUP BY continent ORDER BY continent",
        ),
        _q(
            name, "aggregate", 3,
            "SELECT AVG(gdp) FROM countries WHERE continent = 'Europe'",
        ),
        _q(
            name, "aggregate", 4,
            "SELECT COUNT(*) FROM cities WHERE is_capital = TRUE AND city_population < 1000",
        ),
        _q(
            name, "topk", 1,
            "SELECT name, population FROM countries ORDER BY population DESC LIMIT 5",
        ),
        _q(
            name, "topk", 2,
            "SELECT city, city_population FROM cities WHERE country = 'Japan' "
            "ORDER BY city_population DESC LIMIT 2",
        ),
        _q(
            name, "topk", 3,
            "SELECT name FROM countries WHERE continent = 'Europe' "
            "ORDER BY gdp DESC LIMIT 3",
        ),
    ]


# ---------------------------------------------------------------------------
# movies
# ---------------------------------------------------------------------------


def _movies_workload(world: World) -> List[WorkloadQuery]:
    name = "movies"
    movies = world.table("movies")
    directors = world.table("directors")
    # Deterministic sample entities from the ground truth.
    title_a = movies.rows[3][0]
    title_b = movies.rows[17][0]
    director_a = directors.rows[2][0]
    director_b = directors.rows[7][0]
    return [
        _q(name, "lookup", 1, f"SELECT year, director FROM movies WHERE title = '{title_a}'"),
        _q(name, "lookup", 2, f"SELECT rating, genre FROM movies WHERE title = '{title_b}'"),
        _q(name, "lookup", 3, f"SELECT country, born FROM directors WHERE name = '{director_a}'"),
        _q(
            name, "filter", 1,
            "SELECT title FROM movies WHERE genre = 'sci-fi' AND year >= 2000",
        ),
        _q(
            name, "filter", 2,
            "SELECT title, rating FROM movies WHERE rating >= 8.5",
        ),
        _q(
            name, "filter", 3,
            "SELECT title FROM movies WHERE runtime BETWEEN 90 AND 100 AND genre = 'drama'",
        ),
        _q(
            name, "join", 1,
            "SELECT m.title, d.country FROM movies m JOIN directors d "
            "ON d.name = m.director WHERE m.rating >= 8.8",
        ),
        _q(
            name, "join", 2,
            f"SELECT m.title, m.year FROM movies m JOIN directors d "
            f"ON d.name = m.director WHERE d.name = '{director_b}'",
        ),
        _q(
            name, "join", 3,
            "SELECT m.title, d.born FROM movies m JOIN directors d "
            "ON d.name = m.director WHERE m.gross > 120 AND d.country = 'France'",
        ),
        _q(name, "aggregate", 1, "SELECT COUNT(*) FROM movies WHERE genre = 'noir'"),
        _q(
            name, "aggregate", 2,
            "SELECT genre, COUNT(*) AS n, AVG(rating) AS avg_rating "
            "FROM movies GROUP BY genre ORDER BY genre",
        ),
        _q(
            name, "aggregate", 3,
            "SELECT SUM(gross) FROM movies WHERE year >= 2010",
        ),
        _q(
            name, "topk", 1,
            "SELECT title, rating FROM movies ORDER BY rating DESC LIMIT 5",
        ),
        _q(
            name, "topk", 2,
            "SELECT title, gross FROM movies WHERE genre = 'thriller' "
            "ORDER BY gross DESC LIMIT 3",
        ),
    ]


# ---------------------------------------------------------------------------
# company
# ---------------------------------------------------------------------------


def _company_workload(world: World) -> List[WorkloadQuery]:
    name = "company"
    employees = world.table("employees")
    employee_a = employees.rows[5][0]
    employee_b = employees.rows[31][0]
    return [
        _q(name, "lookup", 1, f"SELECT salary, department FROM employees WHERE name = '{employee_a}'"),
        _q(name, "lookup", 2, f"SELECT role, hired FROM employees WHERE name = '{employee_b}'"),
        _q(name, "lookup", 3, "SELECT budget, hq_city FROM departments WHERE dept_name = 'Research'"),
        _q(
            name, "filter", 1,
            "SELECT name FROM employees WHERE department = 'Engineering' AND salary > 120000",
        ),
        _q(
            name, "filter", 2,
            "SELECT name, hired FROM employees WHERE hired >= 2020 AND remote = TRUE",
        ),
        _q(
            name, "filter", 3,
            "SELECT name, salary FROM employees WHERE role = 'manager' AND salary BETWEEN 90000 AND 150000",
        ),
        _q(
            name, "join", 1,
            "SELECT e.name, d.hq_city FROM employees e JOIN departments d "
            "ON d.dept_name = e.department WHERE e.salary > 150000",
        ),
        _q(
            name, "join", 2,
            "SELECT e.name, d.budget FROM employees e JOIN departments d "
            "ON d.dept_name = e.department WHERE d.hq_city = 'Berlin' AND e.role = 'lead'",
        ),
        _q(name, "aggregate", 1, "SELECT COUNT(*) FROM employees WHERE remote = TRUE"),
        _q(
            name, "aggregate", 2,
            "SELECT department, COUNT(*) AS heads, AVG(salary) AS avg_salary "
            "FROM employees GROUP BY department ORDER BY department",
        ),
        _q(
            name, "aggregate", 3,
            "SELECT MAX(salary) FROM employees WHERE department = 'Finance'",
        ),
        _q(
            name, "topk", 1,
            "SELECT name, salary FROM employees ORDER BY salary DESC LIMIT 5",
        ),
        _q(
            name, "topk", 2,
            "SELECT dept_name, budget FROM departments ORDER BY budget DESC LIMIT 3",
        ),
    ]


_BUILDERS = {
    "geography": _geography_workload,
    "movies": _movies_workload,
    "company": _company_workload,
}


def workload_for(world: World) -> List[WorkloadQuery]:
    """The standard workload of a world."""
    builder = _BUILDERS.get(world.name)
    if builder is None:
        raise WorkloadError(
            f"no workload defined for world {world.name!r} "
            f"(known: {', '.join(sorted(_BUILDERS))})"
        )
    return builder(world)


def queries_by_class(queries: List[WorkloadQuery]) -> Dict[str, List[WorkloadQuery]]:
    """Group a workload by query class, in reporting order."""
    grouped: Dict[str, List[WorkloadQuery]] = {name: [] for name in QUERY_CLASSES}
    for query in queries:
        grouped[query.query_class].append(query)
    return grouped
