"""Accuracy metrics.

The primary metric is **tuple F1** under bag semantics with a relative
numeric tolerance: a predicted row matches a truth row when every cell
matches (text exactly, numbers within tolerance).  Matching is a maximum
bipartite pairing computed greedily — exact for bags because equality is
transitive within the tolerance classes used here.

For aggregate answers the harness also reports mean **scalar relative
error**, and **exact match** gives the strict execution-accuracy view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.relational.types import Value, values_equal

#: Default relative tolerance for numeric cells (5 %): an engine that
#: reports a population within 5 % of truth is counted correct, matching
#: how this literature scores approximate factual retrieval.
DEFAULT_TOLERANCE = 0.05

Row = Tuple[Value, ...]


@dataclass(frozen=True)
class TupleMetrics:
    """Precision/recall/F1 over result tuples (bag semantics)."""

    true_positives: int
    predicted: int
    expected: int

    @property
    def precision(self) -> float:
        return self.true_positives / self.predicted if self.predicted else (
            1.0 if not self.expected else 0.0
        )

    @property
    def recall(self) -> float:
        return self.true_positives / self.expected if self.expected else (
            1.0 if not self.predicted else 0.0
        )

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2 * precision * recall / (precision + recall)


def rows_match(left: Row, right: Row, tolerance: float) -> bool:
    """Cell-wise row equality with relative numeric tolerance."""
    if len(left) != len(right):
        return False
    return all(
        values_equal(a, b, float_tolerance=tolerance) for a, b in zip(left, right)
    )


def tuple_metrics(
    predicted: Sequence[Row],
    expected: Sequence[Row],
    tolerance: float = DEFAULT_TOLERANCE,
) -> TupleMetrics:
    """Bag-semantics tuple matching between two result sets."""
    remaining = list(expected)
    true_positives = 0
    for row in predicted:
        for index, candidate in enumerate(remaining):
            if rows_match(tuple(row), tuple(candidate), tolerance):
                true_positives += 1
                del remaining[index]
                break
    return TupleMetrics(
        true_positives=true_positives,
        predicted=len(predicted),
        expected=len(expected),
    )


def exact_match(
    predicted: Sequence[Row],
    expected: Sequence[Row],
    tolerance: float = 0.0,
    ordered: bool = False,
) -> bool:
    """Strict execution accuracy: same bag (or sequence) of rows."""
    if len(predicted) != len(expected):
        return False
    if ordered:
        return all(
            rows_match(tuple(p), tuple(e), tolerance)
            for p, e in zip(predicted, expected)
        )
    metrics = tuple_metrics(predicted, expected, tolerance)
    return metrics.true_positives == len(expected)


def scalar_relative_error(
    predicted: Sequence[Row], expected: Sequence[Row]
) -> Optional[float]:
    """Relative error for 1x1 numeric answers; None when not applicable."""
    if len(expected) != 1 or len(expected[0]) != 1:
        return None
    truth = expected[0][0]
    if not isinstance(truth, (int, float)) or isinstance(truth, bool):
        return None
    if len(predicted) != 1 or len(predicted[0]) != 1:
        return 1.0
    guess = predicted[0][0]
    if not isinstance(guess, (int, float)) or isinstance(guess, bool):
        return 1.0
    scale = max(abs(float(truth)), 1e-12)
    return min(1.0, abs(float(guess) - float(truth)) / scale)


@dataclass
class MetricSummary:
    """Aggregates per-query metrics into workload-level numbers."""

    f1_values: List[float] = field(default_factory=list)
    precision_values: List[float] = field(default_factory=list)
    recall_values: List[float] = field(default_factory=list)
    exact_values: List[bool] = field(default_factory=list)
    scalar_errors: List[float] = field(default_factory=list)
    calls: List[int] = field(default_factory=list)
    tokens: List[int] = field(default_factory=list)
    latency_ms: List[float] = field(default_factory=list)
    cost_usd: List[float] = field(default_factory=list)

    def add(
        self,
        metrics: TupleMetrics,
        exact: bool,
        scalar_error: Optional[float],
        calls: int,
        tokens: int,
        latency_ms: float,
        cost_usd: float,
    ) -> None:
        self.f1_values.append(metrics.f1)
        self.precision_values.append(metrics.precision)
        self.recall_values.append(metrics.recall)
        self.exact_values.append(exact)
        if scalar_error is not None:
            self.scalar_errors.append(scalar_error)
        self.calls.append(calls)
        self.tokens.append(tokens)
        self.latency_ms.append(latency_ms)
        self.cost_usd.append(cost_usd)

    @property
    def count(self) -> int:
        return len(self.f1_values)

    @staticmethod
    def _mean(values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_f1(self) -> float:
        return self._mean(self.f1_values)

    @property
    def mean_precision(self) -> float:
        return self._mean(self.precision_values)

    @property
    def mean_recall(self) -> float:
        return self._mean(self.recall_values)

    @property
    def exact_rate(self) -> float:
        return self._mean([1.0 if value else 0.0 for value in self.exact_values])

    @property
    def mean_scalar_error(self) -> Optional[float]:
        return self._mean(self.scalar_errors) if self.scalar_errors else None

    @property
    def mean_calls(self) -> float:
        return self._mean(self.calls)

    @property
    def total_calls(self) -> int:
        return sum(self.calls)

    @property
    def mean_tokens(self) -> float:
        return self._mean(self.tokens)

    @property
    def total_tokens(self) -> int:
        return sum(self.tokens)

    @property
    def mean_latency_ms(self) -> float:
        return self._mean(self.latency_ms)

    @property
    def total_cost_usd(self) -> float:
        return sum(self.cost_usd)
