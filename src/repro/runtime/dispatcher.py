"""Concurrent model-call scheduler.

The dispatcher is the single gate between plan operators and the model
stack (cache → meter).  Operators hand it *waves* — batches of
independent completion requests (vote samples, lookup batches, parallel
plan steps feed it from separate threads) — and get parsed results back
in submission order.

Guarantees:

* **Determinism.**  The simulated model is deterministic per
  ``(prompt, sample_index)``, every request carries both, and parsing
  and retries are per-request, so results are byte-identical to the
  sequential path no matter how workers interleave.  With
  ``max_in_flight <= 1`` the dispatcher runs requests inline, in
  submission order — exactly the old sequential client.
* **Identical cost.**  Concurrency changes wall-clock only.  Token and
  call accounting flows through the same metered/caching stack as
  sequential execution; single-flight deduplication makes concurrent
  duplicates behave like the sequential cache (followers replay through
  the cache after the leader lands, recording the same zero-cost calls
  a sequential second request would).
* **Honest wall-clock.**  Each wave charges the ledger a *makespan*
  computed analytically from simulated latencies under
  ``max_in_flight`` slots (greedy assignment in submission order), so
  the reported critical path is deterministic and respects the
  configured parallelism, not the host's thread timing.

Single-flight followers never occupy a worker slot: they are chained as
callbacks on the leader's future, which makes the bounded pool
deadlock-free by construction (workers only ever call the model).

Event-loop core.  Asynchronous model I/O — transport batch calls,
completion streams, and the continuous batcher's shared request pool
(:mod:`repro.runtime.batching`) — runs on one process-wide asyncio loop
owned by :class:`EventLoopCore`.  The thread-pool path above is a shim
over it: dispatcher workers that bottom out in an async surface hand
the coroutine to the core and block on a plain
:class:`concurrent.futures.Future`, so the pool only ever marshals
results while the loop owns every in-flight wire operation.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Coroutine, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, LLMProtocolError
from repro.llm.cache import PromptCache, resolve_model_name, zero_cost_copy
from repro.llm.interface import Completion, CompletionOptions, LanguageModel
from repro.obs.trace import NOOP_TRACER
from repro.runtime.latency import LatencyLedger, greedy_makespan
from repro.runtime.retry import RetryPolicy
from repro.runtime.scheduler import (
    CancellationToken,
    CrossQueryDedup,
    FlightBudget,
)


class EventLoopCore:
    """One asyncio loop on a dedicated thread, driven from sync code.

    The loop thread starts lazily on first use and runs as a daemon;
    sync callers hand coroutines over with :meth:`submit` (returning a
    :class:`concurrent.futures.Future`) or block on :meth:`run`.  All
    async transport I/O and the continuous batcher's drain task live
    here, making the thread-pool dispatch path a shim that marshals
    results rather than an owner of wire operations.
    """

    def __init__(self, name: str = "repro-async-core"):
        self._name = name
        self._loop = asyncio.new_event_loop()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._closed = False

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    def _ensure_started(self) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("event-loop core is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop.run_forever,
                    name=self._name,
                    daemon=True,
                )
                self._thread.start()

    def submit(self, coro: "Coroutine[Any, Any, Any]") -> "Future[Any]":
        """Schedule a coroutine; returns a thread-safe future."""
        try:
            self._ensure_started()
        except BaseException:
            coro.close()  # never leave an un-awaited coroutine behind
            raise
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def run(
        self, coro: "Coroutine[Any, Any, Any]", timeout: Optional[float] = None
    ) -> Any:
        """Run a coroutine to completion from synchronous code.

        Refuses re-entrant use from the loop thread itself — blocking
        the loop on work the loop must execute can only deadlock; async
        callers must ``await`` instead.
        """
        if (
            self._thread is not None
            and threading.current_thread() is self._thread
        ):
            coro.close()
            raise RuntimeError(
                "EventLoopCore.run() called from the loop thread; "
                "await the coroutine instead"
            )
        return self.submit(coro).result(timeout)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a plain callback on the loop thread."""
        self._ensure_started()
        self._loop.call_soon_threadsafe(callback, *args)

    def close(self) -> None:
        """Stop the loop and join its thread (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        if thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            thread.join(timeout=5.0)
        self._loop.close()


_shared_core: Optional[EventLoopCore] = None
_shared_core_lock = threading.Lock()


def get_event_loop_core() -> EventLoopCore:
    """The process-wide event-loop core (created on first use).

    Shared deliberately: sessions, transports, and batchers all
    schedule onto one loop, so a process serving many engines still
    owns exactly one async I/O thread.
    """
    global _shared_core
    with _shared_core_lock:
        if _shared_core is None or _shared_core._closed:
            _shared_core = EventLoopCore()
        return _shared_core


@dataclass(frozen=True)
class CompletionRequest:
    """One logical completion: prompt, vote slot, and its parser.

    Attributes:
        prompt: the full prompt text.
        sample_index: base vote slot (retries bump it by the policy's
            nonce, never colliding with other slots).
        parse: turns a completion into a result; raises
            :class:`~repro.errors.LLMProtocolError` to request a retry.
        first_attempt: attempts already consumed elsewhere (the scan
            prefetcher hands over after a failed speculative attempt 0).
        prior_error: the parse error from those consumed attempts, kept
            so the give-up message matches the sequential path.
        kind: prompt kind for tracing (``scan-page`` / ``lookup-batch``
            / ``judge-batch`` / generic ``call``); purely a span tag.
        trace_tags: extra span tags (e.g. shard index); purely
            observational.
    """

    prompt: str
    sample_index: int
    parse: Callable[[Completion], Any]
    first_attempt: int = 0
    prior_error: Optional[Exception] = None
    kind: str = "call"
    trace_tags: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class Outcome:
    """A parsed result plus the serial latency of the attempts behind it."""

    value: Any
    path_ms: float
    attempts: int = 1


@dataclass
class DispatcherStats:
    """Observability counters (informational; never affect results)."""

    submitted: int = 0
    deduplicated: int = 0
    cross_query_deduplicated: int = 0
    waves: int = 0
    speculated: int = 0
    speculation_used: int = 0
    speculation_wasted: int = 0


class Speculation:
    """An un-metered, in-flight model call owned by the prefetcher.

    The completion is only charged (budget check, meter record, cache
    insert) if it is consumed; an abandoned speculation costs nothing in
    tokens — exactly like the sequential path, which never issued it.
    """

    __slots__ = ("prompt", "options", "future", "launched_at_ms")

    def __init__(
        self,
        prompt: str,
        options: CompletionOptions,
        future: "Future[Tuple[Completion, bool]]",
        launched_at_ms: float,
    ):
        self.prompt = prompt
        self.options = options
        self.future = future
        self.launched_at_ms = launched_at_ms


class Dispatcher:
    """Bounded-concurrency scheduler over one wrapped model stack."""

    def __init__(
        self,
        model: LanguageModel,
        options_for: Callable[[int], CompletionOptions],
        retry: RetryPolicy,
        max_in_flight: int = 1,
        ledger: Optional[LatencyLedger] = None,
        raw_model: Optional[LanguageModel] = None,
        cache: Optional[PromptCache] = None,
        meter=None,
        shared: Optional[CrossQueryDedup] = None,
        dedup_scope: Tuple = (),
        flight_budget: Optional[FlightBudget] = None,
        cancel: Optional[CancellationToken] = None,
        tracer=None,
        on_completion: Optional[Callable[[str, float, int], None]] = None,
    ):
        self._model = model
        self._options_for = options_for
        self._retry = retry
        self._max_in_flight = max(1, max_in_flight)
        self._ledger = ledger or LatencyLedger()
        self._raw_model = raw_model
        self._cache = cache
        self._meter = meter
        # Statistics feedback: called with (kind, latency_ms, tokens)
        # for every completion that lands — purely observational, it
        # feeds the online statistics catalog's per-kind histograms.
        self._on_completion = on_completion
        self._async_target = None  # resolved lazily for speculation
        self._shared = shared
        self._dedup_scope = tuple(dedup_scope)
        self._flight_budget = flight_budget
        self._cancel = cancel
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._model_name = (
            resolve_model_name(raw_model) if raw_model is not None else ""
        )
        self._lock = threading.Lock()
        self._inflight: Dict[Tuple[str, int], "Future[Outcome]"] = {}
        self._pool: Optional[ThreadPoolExecutor] = None
        if max_in_flight > 1:
            self._pool = ThreadPoolExecutor(
                max_workers=max_in_flight, thread_name_prefix="repro-dispatch"
            )
        self.stats = DispatcherStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def max_in_flight(self) -> int:
        return self._max_in_flight

    @property
    def ledger(self) -> LatencyLedger:
        return self._ledger

    def run_wave(self, requests: Sequence[CompletionRequest]) -> List[Any]:
        """Dispatch independent requests; return parsed results in order.

        Charges the ledger one makespan for the whole wave: with one
        slot that is the serial sum (the sequential baseline), with N
        slots the greedy N-machine schedule over simulated latencies.
        """
        if not requests:
            return []
        tracing = self._tracer.enabled
        # Read the simulated clock before the makespan commit: flight
        # span offsets are laid out from the wave's start.
        wave_start = self._ledger.now() if tracing else 0.0
        futures = [self.submit(request) for request in requests]
        outcomes: List[Optional[Outcome]] = []
        error: Optional[BaseException] = None
        for future in futures:
            try:
                outcomes.append(future.result())
            except BaseException as exc:
                error = error or exc
                outcomes.append(None)
        if tracing:
            self._emit_flight_spans(requests, futures, outcomes, wave_start)
        self._ledger.add(
            self._makespan([o.path_ms for o in outcomes if o is not None])
        )
        self.stats.waves += 1
        if error is not None:
            raise error
        return [outcome.value for outcome in outcomes]  # type: ignore[union-attr]

    def run_one(self, request: CompletionRequest) -> Any:
        return self.run_wave([request])[0]

    def submit(self, request: CompletionRequest) -> "Future[Outcome]":
        """Schedule one request; single-flight dedups identical keys.

        A follower of an in-flight leader waits (via callback, not a
        worker slot) and then replays the request through the normal
        stack: with the cache enabled that replay is served entirely
        from cache — the same zero-cost calls a sequential duplicate
        records — and with the cache disabled it pays full price, again
        matching the sequential path.

        With a shared :class:`~repro.runtime.scheduler.CrossQueryDedup`
        registry attached, the same single-flight applies *across*
        concurrent queries of one session: an identical request led by
        another query's dispatcher is joined instead of re-paid, and
        the join is attributed to this query's meter as a ``dedup_hit``
        (the replay itself records the usual zero-cost cached call).
        Keys carry the dedup scope, so differing semantic fingerprints
        can never join each other's calls.
        """
        self.stats.submitted += 1
        key = (request.prompt, request.sample_index)
        foreign: Optional["Future[Outcome]"] = None
        with self._lock:
            leader = self._inflight.get(key)
            if leader is not None:
                follower: "Future[Outcome]" = Future()
                follower.repro_via = "dedup"  # span tag, observational
                self.stats.deduplicated += 1
                leader.add_done_callback(
                    lambda _done: self._schedule(request, follower, key=None)
                )
                return follower
            future: "Future[Outcome]" = Future()
            if self._shared is not None and self._cache is not None:
                # Lock order is always dispatcher → registry, so the
                # cross-dispatcher lease can never deadlock.  Without a
                # shared cache a join could never save anything (the
                # follower's replay would re-pay full price after
                # waiting out the leader), so cache-less dispatchers
                # always lead independently.
                foreign = self._shared.lease(self._dedup_scope + key, future)
            if foreign is None:
                self._inflight[key] = future
        if foreign is not None:
            self.stats.deduplicated += 1
            self.stats.cross_query_deduplicated += 1
            follower = Future()
            follower.repro_via = "dedup-join"  # span tag, observational

            def on_leader_done(done: "Future[Outcome]") -> None:
                # Count the dedup hit only when the join actually saved
                # tokens: the leader landed (its completion is in the
                # shared cache) and this query replays from that cache.
                # A failed/cancelled leader leaves the follower to
                # re-pay at full price — no saving, no hit.  While
                # joined, this query's own timeout is observed at the
                # replay (cancellation is cooperative: the next model-
                # call boundary is the joined call's completion).
                if (
                    self._meter is not None
                    and self._cache is not None
                    and done.exception() is None
                ):
                    self._meter.record_dedup_hit()
                self._schedule(request, follower, key=None)

            foreign.add_done_callback(on_leader_done)
            return follower
        self._schedule(request, future, key=key)
        return future

    def speculate(self, prompt: str) -> Optional[Speculation]:
        """Start an un-metered attempt-0 call for a guessed prompt.

        Returns ``None`` when a regular request for the same key is
        already in flight: the consumer will issue a normal call and be
        served by single-flight/cache, so speculating would only race
        the metered call for the cache slot.

        Speculations run natively on the event-loop core: the guessed
        page is a coroutine awaiting the model's async surface, not a
        pool thread blocking in the executor shim — so it coalesces
        with transport batches and the continuous batcher's waves on
        the one loop that owns wire I/O.
        """
        options = self._options_for(0)
        with self._lock:
            if (prompt, 0) in self._inflight:
                return None
        self.stats.speculated += 1
        launched_at = self._ledger.now()
        future = get_event_loop_core().submit(
            self._raw_attempt_async(prompt, options)
        )
        return Speculation(prompt, options, future, launched_at)

    def consume_speculation(self, spec: Speculation) -> Tuple[Completion, float]:
        """Charge a consumed speculation as if it were a normal call.

        Exactly one concurrent producer of a cache key pays for it:
        the atomic ``put_if_absent`` decides who, and everyone else
        records the zero-cost hit a sequential run would have recorded.
        Returns the completion plus the wall-clock still owed: the
        call's latency minus however much simulated time elapsed while
        it ran in the background (never below zero).
        """
        completion, from_cache = spec.future.result()
        self.stats.speculation_used += 1
        if self._meter is not None:
            self._meter.acquire_call()
        if from_cache:
            completion = zero_cost_copy(completion)
        elif self._cache is not None:
            _, was_present = self._cache.put_if_absent(
                spec.prompt, spec.options, completion, model_name=self._model_name
            )
            if was_present:
                # Someone else (another scan's speculation or a regular
                # call) already paid for this key while we were in
                # flight; sequentially this consume would have been a
                # cache hit.
                completion = zero_cost_copy(completion)
        if self._meter is not None:
            self._meter.record_completion(completion)
        if self._on_completion is not None:
            self._on_completion(
                "scan-page",
                completion.latency_ms,
                completion.prompt_tokens + completion.completion_tokens,
            )
        elapsed = self._ledger.now() - spec.launched_at_ms
        owed = max(0.0, completion.latency_ms - elapsed)
        if self._tracer.enabled:
            # A consumed speculation is a scan-page flight that started
            # when the prefetcher launched it; "via" is volatile by
            # design (serial runs fetch the same page inline).
            self._tracer.emit(
                "flight",
                spec.launched_at_ms,
                spec.launched_at_ms + completion.latency_ms,
                {"kind": "scan-page", "via": "prefetch"},
            )
        return completion, owed

    def abandon_speculations(self, count: int) -> None:
        self.stats.speculation_wasted += count

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _schedule(
        self,
        request: CompletionRequest,
        future: "Future[Outcome]",
        key: Optional[Tuple[str, int]],
    ) -> None:
        if self._pool is None:
            self._run_into(request, future, key)
            return
        try:
            self._pool.submit(self._run_into, request, future, key)
        except RuntimeError:
            # Pool already shut down.  Unreachable through the normal
            # flow (every submitted future is awaited before close()),
            # but a foreign-leader callback landing during teardown
            # must still resolve its follower — run inline rather than
            # leave a future forever pending.
            self._run_into(request, future, key)

    def _run_into(
        self,
        request: CompletionRequest,
        future: "Future[Outcome]",
        key: Optional[Tuple[str, int]],
    ) -> None:
        try:
            outcome = self._run_request(request)
        except BaseException as exc:
            self._clear_inflight(key, future)
            future.set_exception(exc)
        else:
            self._clear_inflight(key, future)
            future.set_result(outcome)

    def _clear_inflight(
        self, key: Optional[Tuple[str, int]], future: "Future[Outcome]"
    ) -> None:
        if key is None:
            return
        with self._lock:
            self._inflight.pop(key, None)
        if self._shared is not None:
            self._shared.release(self._dedup_scope + key, future)

    def _run_request(self, request: CompletionRequest) -> Outcome:
        path_ms = 0.0
        last_error: Optional[Exception] = request.prior_error
        for attempt in range(request.first_attempt, self._retry.max_attempts):
            options = self._options_for(
                request.sample_index + self._retry.nonce_for(attempt)
            )
            completion = self._guarded_complete(request.prompt, options)
            path_ms += completion.latency_ms
            if self._on_completion is not None:
                self._on_completion(
                    request.kind,
                    completion.latency_ms,
                    completion.prompt_tokens + completion.completion_tokens,
                )
            try:
                return Outcome(
                    value=request.parse(completion),
                    path_ms=path_ms,
                    attempts=attempt - request.first_attempt + 1,
                )
            except LLMProtocolError as exc:
                last_error = exc
                delay = self._retry.delay_ms(attempt)
                path_ms += delay
                self._retry.sleep(delay)
        raise ExecutionError(
            f"model output unusable after {self._retry.max_attempts} "
            f"attempts: {last_error}"
        )

    def _guarded_complete(
        self, prompt: str, options: CompletionOptions
    ) -> Completion:
        """One metered model call under the global budget and token.

        The in-flight slot is held only for the duration of the call —
        never while waiting on a future or sleeping out a backoff — so
        the session-wide budget cannot deadlock the worker pools that
        share it.  A call the prompt cache will serve takes no slot at
        all: zero-cost replays (cross-query followers, warm repeats)
        must not queue behind real model traffic.  (If the entry is
        evicted between the probe and the read, the call briefly runs
        unslotted — a rare, bounded overshoot of the budget, preferred
        over serializing every cache hit.)
        """
        if self._cancel is not None:
            self._cancel.check()
        if self._flight_budget is None or (
            self._cache is not None
            and self._cache.contains(prompt, options, self._model_name)
        ):
            return self._model.complete(prompt, options)
        with self._flight_budget.slot(self._cancel):
            return self._model.complete(prompt, options)

    async def _raw_attempt_async(
        self, prompt: str, options: CompletionOptions
    ) -> Tuple[Completion, bool]:
        """Attempt 0 without metering, native on the event-loop core.

        Cache probe first (a warm key costs nothing and takes no
        slot); otherwise the call goes through the model's own async
        surface when it has one (transports, the batching gate) and
        through the in-process transport wrapper otherwise — identical
        completions either way, since the wrapper delegates to the
        same ``complete``.
        """
        if self._cache is not None:
            cached = self._cache.get(prompt, options, model_name=self._model_name)
            if cached is not None:
                return cached, True
        if self._cancel is not None:
            self._cancel.check()
        target = self._async_target
        if target is None:
            model = (
                self._raw_model if self._raw_model is not None else self._model
            )
            if hasattr(model, "complete_async"):
                target = model
            else:
                from repro.llm.transport import as_transport

                target = as_transport(model)
            self._async_target = target
        if self._flight_budget is None:
            return await target.complete_async(prompt, options), False
        slot = self._flight_budget.slot(self._cancel)
        # Slot acquisition can block on the session-wide semaphore;
        # park the wait on a worker thread so the loop stays live.
        await asyncio.get_running_loop().run_in_executor(None, slot.__enter__)
        try:
            return await target.complete_async(prompt, options), False
        finally:
            slot.__exit__(None, None, None)

    def _emit_flight_spans(
        self,
        requests: Sequence[CompletionRequest],
        futures: Sequence["Future[Outcome]"],
        outcomes: Sequence[Optional[Outcome]],
        wave_start: float,
    ) -> None:
        """One span per landed request, laid out analytically.

        Start/end offsets replay the same greedy slot assignment
        :meth:`_makespan` charges (submission order onto the wave's
        fair slot share), so flight timings derive from the simulated
        critical-path accounting — deterministic, never host thread
        timing.
        """
        slot_count = max(
            1, self._max_in_flight // self._ledger.current_divisor()
        )
        slots = [0.0] * slot_count
        for request, future, outcome in zip(requests, futures, outcomes):
            if outcome is None:
                continue
            index = min(range(slot_count), key=slots.__getitem__)
            start = slots[index]
            slots[index] = start + outcome.path_ms
            tags = {"kind": request.kind}
            tags.update(request.trace_tags)
            if outcome.attempts > 1:
                tags["attempts"] = outcome.attempts
            via = getattr(future, "repro_via", None)
            if via is not None:
                tags["via"] = via
            self._tracer.emit(
                "flight", wave_start + start, wave_start + slots[index], tags
            )

    def _makespan(self, durations: Sequence[float]) -> float:
        """Greedy schedule of durations onto this wave's fair slot share.

        When several plan branches dispatch waves concurrently they
        split the worker pool, so a wave's makespan is computed against
        ``max_in_flight`` divided by the calling scope's structural
        concurrency (at least one slot) — a fair-share approximation,
        fixed by the plan shape rather than live thread state, that
        keeps the reported critical path deterministic and from
        pretending each branch had the whole pool to itself.
        """
        slot_count = max(1, self._max_in_flight // self._ledger.current_divisor())
        return greedy_makespan(durations, slot_count)
