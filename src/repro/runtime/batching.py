"""Continuous cross-query batching: one shared slot pool per session.

Per-query batching (the dispatcher's waves) amortizes overhead *within*
one query; under concurrent serving every query still pays its own
round trips.  The :class:`ContinuousBatcher` replaces that with the
serving model of llama.cpp's ``examples/parallel``: a fixed pool of
``slots`` and a drain task on the event-loop core that, each cycle,
coalesces the retrieval prompts queued by *all* in-flight queries into
one shared wave of at most ``slots`` requests, issues the wave through
the transport's async surface, and re-forms the next wave from whatever
queued up meanwhile — slots free up per wave, not per query.

Invariants:

* **Byte identity.**  The batcher moves *when* raw model calls happen,
  never what they are: each request reaches the transport with its
  exact prompt and options, and the simulated substrate is
  deterministic per ``(prompt, sample_index)``.  Cache, dedup, meter,
  and storage layers sit *above* the gate, so their behavior — and
  therefore results, token counts, and call counts — is unchanged at
  any concurrency.
* **Cancellation reclaims queued slots.**  A cancelled query's queued
  requests are failed with :class:`~repro.errors.QueryCancelled` at
  wave formation — before occupying a slot — so co-batched queries
  keep their full share of the pool and are never poisoned by a
  neighbour's timeout.
* **Per-request isolation.**  A wave is gathered with per-request
  exception capture: one failing request fails one future, not the
  wave.

:class:`BatchingGate` is the per-query adapter: it sits at the *bottom*
of the model stack (below cache and meter), so only calls that will
genuinely pay the model — cache misses, consumed speculations — enter
the shared pool, and zero-cost replays never occupy a slot.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

from repro.errors import QueryCancelled, TransportError
from repro.llm.cache import resolve_model_name
from repro.llm.interface import BatchRequest, Completion, CompletionOptions
from repro.runtime.dispatcher import EventLoopCore, get_event_loop_core
from repro.runtime.scheduler import CancellationToken

#: Occupancy-trace entries kept before the trace stops growing (the
#: stats keep counting either way).
_TRACE_CAP = 10_000


@dataclass
class BatcherStats:
    """Counters describing pool behavior (informational only)."""

    submitted: int = 0
    completed: int = 0
    waves: int = 0
    max_batch: int = 0
    cancelled_reclaimed: int = 0
    failed: int = 0


class _Pending:
    """One queued request: prompt, options, its future, its token."""

    __slots__ = ("prompt", "options", "future", "cancel")

    def __init__(
        self,
        prompt: str,
        options: CompletionOptions,
        future: "Future[Completion]",
        cancel: Optional[CancellationToken],
    ):
        self.prompt = prompt
        self.options = options
        self.future = future
        self.cancel = cancel


@dataclass
class ContinuousBatcher:
    """Slot-based request pool coalescing prompts across queries.

    Thread-safe producers (:meth:`submit` from any dispatcher worker)
    feed a queue owned by the event-loop thread; a lazily-started drain
    task forms waves of at most ``slots`` requests and issues each wave
    through ``transport.complete_async`` concurrently.  Every queue and
    trace mutation happens on the loop thread, so the only lock guards
    startup.
    """

    transport: object
    slots: int = 32
    core: Optional[EventLoopCore] = None
    registry: object = None
    stats: BatcherStats = field(default_factory=BatcherStats)

    def __post_init__(self):
        self.slots = max(1, int(self.slots))
        if self.core is None:
            self.core = get_event_loop_core()
        self.wave_trace: List[dict] = []
        self._queue: Deque[_Pending] = deque()
        self._wakeup = None  # asyncio.Event, created on the loop thread
        self._task = None
        self._closed = False

    # -- producer side (any thread) ------------------------------------

    def submit(
        self,
        prompt: str,
        options: CompletionOptions = CompletionOptions(),
        cancel: Optional[CancellationToken] = None,
    ) -> "Future[Completion]":
        """Queue one request into the shared pool; returns its future."""
        future: "Future[Completion]" = Future()
        pending = _Pending(prompt, options, future, cancel)

        def enqueue() -> None:
            if self._closed:
                if future.set_running_or_notify_cancel():
                    future.set_exception(
                        TransportError("continuous batcher is closed")
                    )
                return
            self._queue.append(pending)
            self._ensure_drain_task()
            self._wakeup.set()

        self.stats.submitted += 1
        self.core.call_soon(enqueue)
        return future

    def complete(
        self,
        prompt: str,
        options: CompletionOptions = CompletionOptions(),
        cancel: Optional[CancellationToken] = None,
    ) -> Completion:
        """Blocking convenience over :meth:`submit`."""
        return self.submit(prompt, options, cancel=cancel).result()

    def close(self) -> None:
        """Stop the drain task; queued requests fail, in-flight finish."""

        def shutdown() -> None:
            self._closed = True
            if self._wakeup is not None:
                self._wakeup.set()
            self._fail_queued(TransportError("continuous batcher is closed"))

        try:
            self.core.call_soon(shutdown)
        except RuntimeError:
            # Core already closed: the drain task died with the loop;
            # nothing can still be queued through this batcher.
            self._closed = True

    # -- loop side -----------------------------------------------------

    def _ensure_drain_task(self) -> None:
        import asyncio

        if self._wakeup is None:
            self._wakeup = asyncio.Event()
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._drain())

    async def _drain(self) -> None:
        try:
            while True:
                await self._wakeup.wait()
                self._wakeup.clear()
                if self._closed:
                    break
                while self._queue:
                    batch = self._form_wave()
                    if batch:
                        await self._run_wave(batch)
                if self._closed:
                    break
        finally:
            self._fail_queued(
                TransportError("continuous batcher drain task exited")
            )

    def _form_wave(self) -> List[_Pending]:
        """Pop up to ``slots`` live requests; reclaim dead ones.

        Requests whose cancellation token is already due are failed
        *here* — their slot goes to a co-batched neighbour instead of
        being burned on a doomed model call.
        """
        batch: List[_Pending] = []
        while self._queue and len(batch) < self.slots:
            pending = self._queue.popleft()
            if pending.cancel is not None:
                try:
                    pending.cancel.check()
                except QueryCancelled as exc:
                    self.stats.cancelled_reclaimed += 1
                    if pending.future.set_running_or_notify_cancel():
                        pending.future.set_exception(exc)
                    continue
            if not pending.future.set_running_or_notify_cancel():
                continue  # abandoned by its consumer
            batch.append(pending)
        return batch

    async def _run_wave(self, batch: List[_Pending]) -> None:
        import asyncio

        self.stats.waves += 1
        self.stats.max_batch = max(self.stats.max_batch, len(batch))
        if len(self.wave_trace) < _TRACE_CAP:
            self.wave_trace.append(
                {
                    "wave": self.stats.waves,
                    "batch": len(batch),
                    "queued": len(self._queue),
                    "slots": self.slots,
                }
            )
        if self.registry is not None:
            from repro.obs import metrics as obs_metrics

            self.registry.counter(obs_metrics.BATCH_WAVES_TOTAL).inc()
            self.registry.counter(obs_metrics.BATCH_REQUESTS_TOTAL).inc(
                len(batch)
            )
            self.registry.histogram(obs_metrics.BATCH_OCCUPANCY).observe(
                len(batch)
            )
        results = await asyncio.gather(
            *(
                self.transport.complete_async(pending.prompt, pending.options)
                for pending in batch
            ),
            return_exceptions=True,
        )
        for pending, result in zip(batch, results):
            if isinstance(result, BaseException):
                self.stats.failed += 1
                pending.future.set_exception(result)
            else:
                self.stats.completed += 1
                pending.future.set_result(result)

    def _fail_queued(self, error: Exception) -> None:
        while self._queue:
            pending = self._queue.popleft()
            if pending.future.set_running_or_notify_cancel():
                pending.future.set_exception(error)


class BatchingGate:
    """Per-query adapter routing raw model calls into a shared batcher.

    Implements the :class:`~repro.llm.interface.LanguageModel` surface
    so it can stand in for the raw model at the bottom of the
    cache/meter stack; carries the query's cancellation token so a
    cancelled query's queued requests are reclaimable at wave
    formation.
    """

    def __init__(
        self,
        inner,
        batcher: ContinuousBatcher,
        cancel: Optional[CancellationToken] = None,
    ):
        self._inner = inner
        self._batcher = batcher
        self._cancel = cancel

    @property
    def model_name(self) -> str:
        # Identity passes through: caches and storage scopes must key
        # on the model, not on how its calls are pooled.
        return resolve_model_name(self._inner)

    @property
    def batcher(self) -> ContinuousBatcher:
        return self._batcher

    def complete(
        self, prompt: str, options: CompletionOptions = CompletionOptions()
    ) -> Completion:
        return self._batcher.complete(prompt, options, cancel=self._cancel)

    def complete_many(
        self, requests: Sequence[BatchRequest]
    ) -> List[Completion]:
        futures = [
            self._batcher.submit(prompt, options, cancel=self._cancel)
            for prompt, options in requests
        ]
        return [future.result() for future in futures]

    async def complete_async(
        self, prompt: str, options: CompletionOptions = CompletionOptions()
    ) -> Completion:
        """Async surface: await the pooled future without blocking.

        The drain task that resolves batcher futures runs on the
        event-loop core, so a coroutine on that same loop must await —
        the blocking :meth:`complete` there would deadlock the pool.
        """
        import asyncio

        return await asyncio.wrap_future(
            self._batcher.submit(prompt, options, cancel=self._cancel)
        )
