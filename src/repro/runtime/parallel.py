"""Branch-scoped parallel execution of plan-level work.

:func:`run_parallel` runs orchestration thunks (plan steps, not raw
model calls) on short-lived threads.  Each thunk gets its own ledger
branch, so the model waves it dispatches accumulate into a per-branch
wall clock; the caller then commits ``max`` over the branches — the
critical path of the parallel region.

These threads only *coordinate*: they block on dispatcher futures and
run local relational compute.  Actual model calls stay bounded by the
dispatcher's worker pool, so nesting orchestration threads can never
deadlock the pool.

Errors are re-raised in thunk order (the order the sequential executor
would have hit them), keeping failure behavior deterministic.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Sequence

from repro.runtime.latency import LatencyLedger


def run_parallel(
    ledger: LatencyLedger, thunks: Sequence[Callable[[], Any]]
) -> List[Any]:
    """Run thunks concurrently; charge the ledger max(branch wall)."""
    if not thunks:
        return []
    if len(thunks) == 1:
        return [thunks[0]()]

    count = len(thunks)
    results: List[Any] = [None] * count
    errors: List[BaseException] = [None] * count  # type: ignore[list-item]
    totals: List[float] = [0.0] * count
    # Sibling branches share the dispatcher pool: their waves are
    # priced against a 1/count slot share (compounded when nested).
    divisor = ledger.current_divisor() * count

    def runner(index: int) -> None:
        with ledger.branch(divisor=divisor) as clock:
            try:
                results[index] = thunks[index]()
            except BaseException as exc:  # re-raised in order below
                errors[index] = exc
        totals[index] = clock.total

    threads = [
        threading.Thread(target=runner, args=(index,), daemon=True)
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    ledger.add(max(totals))
    for error in errors:
        if error is not None:
            raise error
    return results
