"""Speculative page prefetch for enumeration scans.

Scan pagination is inherently serial — page *k+1*'s ``after_index`` is
the number of rows parsed from pages ``0..k`` — which makes scans the
worst-served fan-out point.  The prefetcher breaks the serial chain
*speculatively*: while page *k* is in flight it guesses that the page
will parse cleanly (``after_index + page_size``) and starts the next
page(s) un-metered in the background.

* **Guess right** (the common case — every fully-parsed page): the scan
  consumes the speculation.  Only then is it charged — budget check,
  meter record, cache insert — exactly what the sequential call would
  have cost, while the wall clock is credited for the overlap.
* **Guess wrong** (malformed lines shifted the index): the prompt the
  scan actually needs differs, so the speculation is ignored and the
  scan issues a normal metered call.  Abandoned speculations are never
  charged, so results and token accounting stay byte-identical to the
  sequential path in both cases.

A consumed speculative completion that fails to parse hands over to the
dispatcher's retry loop with ``first_attempt=1``, preserving the
sequential retry budget and error message.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.runtime.dispatcher import Dispatcher, Speculation


class ScanPrefetcher:
    """Holds in-flight speculative pages for one scan, keyed by prompt."""

    def __init__(self, dispatcher: Dispatcher):
        self._dispatcher = dispatcher
        self._pending: Dict[str, Speculation] = {}

    def prime(self, prompts: Iterable[str]) -> None:
        """Launch speculations for prompts not already in flight."""
        for prompt in prompts:
            if prompt not in self._pending:
                speculation = self._dispatcher.speculate(prompt)
                if speculation is not None:
                    self._pending[prompt] = speculation

    def take(self, prompt: str) -> Optional[Speculation]:
        """Claim the speculation matching ``prompt`` exactly, if any."""
        return self._pending.pop(prompt, None)

    def discard(self) -> None:
        """Abandon whatever is left (scan ended before the guesses)."""
        if self._pending:
            self._dispatcher.abandon_speculations(len(self._pending))
            self._pending.clear()

    def __len__(self) -> int:
        return len(self._pending)
