"""Critical-path wall-clock accounting for concurrent model calls.

The usage meter sums *model time* (every completion's latency, as if the
calls ran back to back).  The ledger tracks the other number a serving
system cares about: the *critical path* — what a wall clock would show
when independent calls overlap.  Sequential stages add up; concurrent
branches contribute their maximum.

The ledger is scope-structured rather than clock-sampled so the number
is deterministic: real thread interleavings never affect it, only the
simulated latencies and the declared parallel structure do.

* Code running outside any branch commits additions straight to the
  meter (via ``on_commit``).
* :meth:`LatencyLedger.branch` opens a per-thread branch; additions
  accumulate in the branch instead.  The orchestrator that joined the
  branches commits ``max(branch totals)`` — see
  :func:`repro.runtime.parallel.run_parallel`.

Branches nest naturally: a parallel region inside a branch rolls its
own maximum up into the enclosing branch, because the roll-up runs on
the enclosing thread.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Sequence


def greedy_makespan(durations: Sequence[float], slot_count: int) -> float:
    """Greedy list-scheduling of ``durations`` onto ``slot_count`` slots.

    The shared makespan primitive of the wall-clock model: the
    dispatcher prices each wave with it and the serving layer prices
    whole batches with it, so the two accountings can never drift.
    One slot degenerates to the serial sum.
    """
    if not durations:
        return 0.0
    if slot_count <= 1:
        return sum(durations)
    slots = [0.0] * slot_count
    for duration in durations:
        index = min(range(len(slots)), key=slots.__getitem__)
        slots[index] += duration
    return max(slots)


class BranchClock:
    """Wall-clock accumulator for one concurrent branch.

    ``divisor`` is the branch's *structural concurrency*: how many
    sibling branches (times any enclosing region's divisor) share the
    dispatcher's worker pool with it.  It is fixed by the plan shape
    when the parallel region opens — never sampled from live thread
    state — so wall-clock accounting stays deterministic.
    """

    __slots__ = ("total", "divisor")

    def __init__(self, divisor: int = 1) -> None:
        self.total = 0.0
        self.divisor = max(1, divisor)


class LatencyLedger:
    """Structured critical-path accumulator.

    ``on_commit`` receives every millisecond that reaches the root scope
    (typically :meth:`UsageMeter.add_wall_ms`); :meth:`now` exposes the
    committed-plus-branch total as a simulated clock, which the scan
    prefetcher uses to credit speculation overlap.
    """

    def __init__(self, on_commit: Optional[Callable[[float], None]] = None):
        self._on_commit = on_commit or (lambda ms: None)
        self._lock = threading.Lock()
        self._committed = 0.0
        self._local = threading.local()

    # -- recording ----------------------------------------------------------

    def add(self, ms: float) -> None:
        """Charge ``ms`` to the current scope (branch if one is open)."""
        if ms <= 0:
            return
        branch = getattr(self._local, "branch", None)
        if branch is not None:
            branch.total += ms
            return
        with self._lock:
            self._committed += ms
        self._on_commit(ms)

    @contextmanager
    def branch(self, divisor: int = 1) -> Iterator[BranchClock]:
        """Divert this thread's additions into a fresh branch clock."""
        clock = BranchClock(divisor=divisor)
        previous = getattr(self._local, "branch", None)
        self._local.branch = clock
        try:
            yield clock
        finally:
            self._local.branch = previous

    def current_divisor(self) -> int:
        """Structural concurrency of the calling thread's scope.

        1 at the root; inside a parallel region, the number of sibling
        branches sharing the worker pool (compounded across nesting).
        The dispatcher divides its slots by this when pricing a wave's
        makespan, so the reported critical path never pretends one
        branch had the whole pool to itself.
        """
        branch = getattr(self._local, "branch", None)
        return branch.divisor if branch is not None else 1

    # -- reading ------------------------------------------------------------

    def now(self) -> float:
        """The simulated wall clock as seen from the calling thread."""
        branch = getattr(self._local, "branch", None)
        with self._lock:
            committed = self._committed
        return committed + (branch.total if branch is not None else 0.0)

    @property
    def committed_ms(self) -> float:
        with self._lock:
            return self._committed
