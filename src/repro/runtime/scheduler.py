"""Multi-query serving: fair admission over one shared session.

The layers below this one accelerate a *single* statement (concurrent
waves, shards, streams).  The scheduler is the serving layer: it admits
N SQL statements against one shared engine session, runs each through
the existing planner/executor on its own worker, and makes the session's
resources genuinely shared rather than per-query:

* **One dispatcher budget.**  A :class:`FlightBudget` semaphore caps the
  *total* number of concurrently open model calls across every admitted
  query at the session's ``max_in_flight`` — eight queries do not get
  eight pools.
* **Cross-query single-flight.**  A :class:`CrossQueryDedup` registry
  extends the dispatcher's single-flight map across query boundaries:
  when two overlapping queries issue the identical scan page or lookup
  batch, the second joins the first's in-flight call instead of paying
  for its own (and then replays through the shared prompt cache, i.e.
  zero marginal tokens).  Keys carry the (model identity, semantic
  config) scope, so dedup can never join calls across fingerprints that
  could retrieve different rows.
* **Fair admission.**  FIFO by default; an optional integer priority
  reorders admission (higher first, FIFO within a priority).  Workers
  pull from the admission queue, so a small ``jobs`` setting bounds the
  number of statements in flight without starving late arrivals.
* **Per-query timeout/cancellation.**  Each admitted query carries a
  :class:`CancellationToken` checked before every model call; a timed
  out or cancelled query fails with
  :class:`~repro.errors.QueryCancelled` without disturbing its
  neighbours (an in-flight call it led stays available to followers
  only via the normal replay path, which re-pays if the leader never
  landed).

Wall-clock accounting.  Per-query meters report the query's *own chain*
(the critical path it would have with the configured ``max_in_flight``
to itself); the batch charges the session meter one deterministic
:func:`batch_makespan` — the elapsed critical path of serving the whole
batch — rather than the sum of per-query walls, which would
double-count overlapped time.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.errors import QueryCancelled
from repro.runtime.latency import greedy_makespan


class CancellationToken:
    """Cooperative cancellation with an optional real-time deadline.

    The dispatcher checks the token before each model call, so a
    cancelled query stops issuing traffic at the next call boundary
    (local relational compute is never interrupted).  Deadlines use the
    injected clock — real time by default, because a timeout protects
    the caller's wall clock, not the simulated one.
    """

    def __init__(
        self,
        timeout_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._clock = clock
        self._timeout_s = timeout_s
        self._deadline = None if timeout_s is None else clock() + timeout_s
        self._cancelled = threading.Event()
        self._reason = "query cancelled"

    def cancel(self, reason: str = "query cancelled") -> None:
        self._reason = reason
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set() or (
            self._deadline is not None and self._clock() >= self._deadline
        )

    def check(self) -> None:
        """Raise :class:`~repro.errors.QueryCancelled` if due."""
        if self._cancelled.is_set():
            raise QueryCancelled(self._reason)
        if self._deadline is not None and self._clock() >= self._deadline:
            raise QueryCancelled(
                f"query timed out after {self._timeout_s:g}s"
            )


class FlightBudget:
    """The session-global cap on concurrently open model calls.

    Every dispatcher of a session acquires a slot for the duration of
    each raw model call (never while waiting on another future, so the
    budget cannot deadlock).  A single query saturates at most
    ``max_in_flight`` slots on its own — exactly the pre-serving
    behavior — and concurrent queries *share* those slots instead of
    multiplying them.
    """

    def __init__(self, max_in_flight: int):
        self.max_in_flight = max(1, int(max_in_flight))
        self._permits = threading.Semaphore(self.max_in_flight)
        # Occupancy tracking exists only once a registry is attached;
        # the untraced path never touches the gauge lock.
        self._registry = None
        self._occupancy_lock = threading.Lock()
        self._active = 0

    def attach_registry(self, registry) -> None:
        """Report slot occupancy (current/peak) as gauges."""
        self._registry = registry

    def _occupy(self, delta: int) -> None:
        registry = self._registry
        if registry is None:
            return
        from repro.obs import metrics as obs_metrics

        with self._occupancy_lock:
            self._active += delta
            active = self._active
        registry.gauge(obs_metrics.INFLIGHT_CURRENT).set(active)
        registry.gauge(obs_metrics.INFLIGHT_PEAK).max_update(active)

    @contextmanager
    def slot(self, cancel: Optional[CancellationToken] = None):
        """Hold one in-flight slot; polls the token while waiting."""
        if cancel is None:
            self._permits.acquire()
        else:
            while True:
                cancel.check()
                if self._permits.acquire(timeout=0.02):
                    break
        self._occupy(1)
        try:
            yield
        finally:
            self._occupy(-1)
            self._permits.release()


class CrossQueryDedup:
    """Single-flight registry shared by the dispatchers of one session.

    Keys are ``scope + (prompt, sample_index)`` where the scope is the
    (model identity, semantic config) tuple fragments already use: two
    configurations that could retrieve different rows — different
    model, validation, page size, temperature, ... — can never join
    each other's in-flight calls.  Within one scope the same guarantee
    single-flight always gave holds: the joiner replays through the
    shared prompt cache after the leader lands, recording the same
    zero-cost call a sequential duplicate would.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, Any] = {}
        self._joins = 0

    def lease(self, key: Hashable, candidate: Any) -> Optional[Any]:
        """Register ``candidate`` as leader, or return the one to join.

        Atomic: exactly one caller per key becomes leader (gets
        ``None`` back); everyone else receives the leader's future.
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self._joins += 1
                return existing
            self._inflight[key] = candidate
            return None

    def release(self, key: Hashable, leader: Any) -> None:
        """Drop ``key`` if ``leader`` still owns it (identity-checked)."""
        with self._lock:
            if self._inflight.get(key) is leader:
                del self._inflight[key]

    @property
    def joins(self) -> int:
        """How many requests joined a foreign in-flight leader."""
        with self._lock:
            return self._joins

    def __len__(self) -> int:
        with self._lock:
            return len(self._inflight)


@dataclass
class QueryJob:
    """One admitted statement plus its serving context."""

    index: int
    statement: Any
    priority: int = 0
    timeout_s: Optional[float] = None
    meter: Any = None
    cancel: Optional[CancellationToken] = None
    pending_cancel: Optional[str] = None

    def request_cancel(self, reason: str = "query cancelled") -> None:
        """Cancel this query, whether queued or already running.

        A job still waiting for admission has no token yet; the reason
        is parked and applied the moment the token is created, so a
        cancel-while-queued is never lost.
        """
        self.pending_cancel = reason
        if self.cancel is not None:
            self.cancel.cancel(reason)


@dataclass
class QueryOutcome:
    """Terminal state of one admitted query.

    ``status`` is ``"ok"`` (``result`` holds the query result),
    ``"cancelled"`` (timeout or explicit cancel; ``error`` holds the
    :class:`~repro.errors.QueryCancelled`), or ``"error"``.  ``usage``
    is the query's own attributed usage either way — a failed query
    still reports what it spent before failing.
    """

    index: int
    statement: Any
    status: str
    result: Any = None
    error: Optional[BaseException] = None
    usage: Any = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def batch_makespan(
    query_walls: Sequence[float],
    total_model_ms: float,
    jobs: int,
    max_in_flight: int,
) -> float:
    """Deterministic elapsed critical path of a concurrently served batch.

    The true elapsed time of a batch is bounded below by two structural
    constraints, and the makespan is the larger of the two:

    * **Admission width.**  At most ``jobs`` queries run at once, so the
      batch cannot beat a greedy assignment of the per-query chains
      (their own-chain critical paths, in admission order) onto ``jobs``
      slots.
    * **Dispatcher budget.**  At most ``max_in_flight`` model calls are
      open at once, so the batch cannot beat the total *paid* model time
      divided by the budget (zero-cost cache/dedup replays add nothing).

    Like the dispatcher's wave makespan this is computed from simulated
    latencies and the declared structure, never from host thread timing,
    so it is reproducible run to run.
    """
    if not query_walls:
        return 0.0
    greedy = greedy_makespan(query_walls, max(1, int(jobs)))
    return max(greedy, total_model_ms / max(1, int(max_in_flight)))


class QueryScheduler:
    """Admits N statements against one shared session, fairly.

    The scheduler is engine-agnostic: it owns admission order, worker
    fan-out, per-query meters/cancellation tokens, and the batch's
    session wall-clock commit; ``run_query(statement, meter, cancel)``
    — bound by the engine to its internal per-statement pipeline — does
    the actual planning and execution.
    """

    def __init__(
        self,
        run_query: Callable[[Any, Any, CancellationToken], Any],
        session_meter,
        jobs: int = 4,
        max_in_flight: int = 1,
        registry=None,
    ):
        self._run_query = run_query
        self._session_meter = session_meter
        self._jobs = max(1, int(jobs))
        self._max_in_flight = max(1, int(max_in_flight))
        # Optional observability registry: queue-wait histogram (host
        # milliseconds a job sat in the admission queue — genuinely a
        # host-time metric, unlike the simulated wall accounting).
        self._registry = registry
        self.admitted: List[QueryJob] = []

    @property
    def jobs(self) -> int:
        return self._jobs

    def execute(
        self,
        statements: Sequence[Any],
        priorities: Optional[Sequence[int]] = None,
        timeout_s: Optional[Sequence[Optional[float]]] = None,
    ) -> List[QueryOutcome]:
        """Run all statements; outcomes come back in submission order.

        ``priorities`` (higher admitted first, FIFO within a priority)
        and ``timeout_s`` (per-query, ``None`` disables) align with
        ``statements`` by position; a scalar ``timeout_s`` applies to
        every query.
        """
        statements = list(statements)
        if not statements:
            return []
        if priorities is not None and len(priorities) != len(statements):
            raise ValueError(
                f"priorities has {len(priorities)} entries for "
                f"{len(statements)} statements"
            )
        if isinstance(timeout_s, (int, float)):
            timeout_s = [float(timeout_s)] * len(statements)
        if timeout_s is not None and len(timeout_s) != len(statements):
            raise ValueError(
                f"timeout_s has {len(timeout_s)} entries for "
                f"{len(statements)} statements"
            )

        jobs = [
            QueryJob(
                index=index,
                statement=statement,
                priority=priorities[index] if priorities is not None else 0,
                timeout_s=timeout_s[index] if timeout_s is not None else None,
            )
            for index, statement in enumerate(statements)
        ]
        # Admission order: priority desc, then FIFO.  Python's sort is
        # stable, so equal priorities keep submission order.
        admission = sorted(jobs, key=lambda job: -job.priority)
        self.admitted = admission

        outcomes: List[Optional[QueryOutcome]] = [None] * len(jobs)
        cursor = {"next": 0}
        cursor_lock = threading.Lock()
        fatal: List[BaseException] = []
        batch_started = time.monotonic()
        registry = self._registry

        def worker() -> None:
            while True:
                with cursor_lock:
                    position = cursor["next"]
                    if position >= len(admission):
                        return
                    cursor["next"] = position + 1
                job = admission[position]
                if registry is not None:
                    from repro.obs import metrics as obs_metrics

                    registry.histogram(obs_metrics.QUEUE_WAIT_MS).observe(
                        (time.monotonic() - batch_started) * 1000.0
                    )
                # The token's deadline starts at *admission*, not
                # submission: a queued query is not burning its budget.
                # A cancel requested while queued lands here.
                job.cancel = CancellationToken(job.timeout_s)
                if job.pending_cancel is not None:
                    job.cancel.cancel(job.pending_cancel)
                # Per-query attribution: a child meter that rolls calls,
                # tokens and storage savings up into the session meter
                # but keeps its wall clock to itself — the batch commits
                # one shared makespan below instead.
                job.meter = self._session_meter.child(forward_wall=False)
                try:
                    outcomes[job.index] = self._run_job(job)
                except BaseException as exc:
                    # KeyboardInterrupt/SystemExit (re-raised by
                    # _run_job on purpose): stop this worker and abort
                    # the whole batch after the join — never return a
                    # silently shortened outcome list.
                    fatal.append(exc)
                    return

        worker_count = min(self._jobs, len(jobs))
        if worker_count <= 1:
            worker()
        else:
            threads = [
                threading.Thread(
                    target=worker, name=f"repro-serve-{i}", daemon=True
                )
                for i in range(worker_count)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if fatal:
            raise fatal[0]

        walls = [job.meter.wall_ms for job in admission if job.meter is not None]
        total_model_ms = sum(
            job.meter.snapshot().latency_ms
            for job in admission
            if job.meter is not None
        )
        self._session_meter.add_wall_ms(
            batch_makespan(
                walls, total_model_ms, worker_count, self._max_in_flight
            )
        )
        return [outcome for outcome in outcomes if outcome is not None]

    def _run_job(self, job: QueryJob) -> QueryOutcome:
        try:
            result = self._run_query(job.statement, job.meter, job.cancel)
        except QueryCancelled as exc:
            return QueryOutcome(
                index=job.index,
                statement=job.statement,
                status="cancelled",
                error=exc,
                usage=job.meter.snapshot(),
            )
        except Exception as exc:  # surfaced per query, batch continues
            # (KeyboardInterrupt/SystemExit propagate: an operator abort
            # must kill the batch, not become one query's outcome.)
            return QueryOutcome(
                index=job.index,
                statement=job.statement,
                status="error",
                error=exc,
                usage=job.meter.snapshot(),
            )
        return QueryOutcome(
            index=job.index,
            statement=job.statement,
            status="ok",
            result=result,
            usage=job.meter.snapshot(),
        )
