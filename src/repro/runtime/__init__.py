"""Concurrent execution runtime.

The runtime schedules the engine's model traffic: a bounded-concurrency
:class:`~repro.runtime.dispatcher.Dispatcher` that turns independent
completion requests into overlapping calls, single-flight deduplication
of identical in-flight prompts, a reusable
:class:`~repro.runtime.retry.RetryPolicy`, speculative scan-page
prefetch, and deterministic critical-path wall-clock accounting via
:class:`~repro.runtime.latency.LatencyLedger`.

Concurrency here is *semantics-free* by design: for a fixed seed and
configuration, results, token usage, and call counts are byte-identical
to sequential execution (``max_in_flight=1``); only the reported
wall-clock changes.

Async model I/O runs on the process-wide
:class:`~repro.runtime.dispatcher.EventLoopCore`; the continuous
cross-query batching pool (:mod:`repro.runtime.batching`) lives on it
and coalesces raw model calls from all in-flight queries of a session
into shared slot-bounded waves.
"""

from repro.runtime.batching import (
    BatcherStats,
    BatchingGate,
    ContinuousBatcher,
)
from repro.runtime.dispatcher import (
    CompletionRequest,
    Dispatcher,
    DispatcherStats,
    EventLoopCore,
    Outcome,
    Speculation,
    get_event_loop_core,
)
from repro.runtime.latency import BranchClock, LatencyLedger, greedy_makespan
from repro.runtime.parallel import run_parallel
from repro.runtime.prefetch import ScanPrefetcher
from repro.runtime.retry import RETRY_NONCE, RetryPolicy
from repro.runtime.scheduler import (
    CancellationToken,
    CrossQueryDedup,
    FlightBudget,
    QueryJob,
    QueryOutcome,
    QueryScheduler,
    batch_makespan,
)

__all__ = [
    "BatcherStats",
    "BatchingGate",
    "ContinuousBatcher",
    "CompletionRequest",
    "Dispatcher",
    "DispatcherStats",
    "EventLoopCore",
    "get_event_loop_core",
    "Outcome",
    "Speculation",
    "BranchClock",
    "LatencyLedger",
    "run_parallel",
    "ScanPrefetcher",
    "RETRY_NONCE",
    "RetryPolicy",
    "CancellationToken",
    "CrossQueryDedup",
    "FlightBudget",
    "QueryJob",
    "QueryOutcome",
    "QueryScheduler",
    "batch_makespan",
    "greedy_makespan",
]
