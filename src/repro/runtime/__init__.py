"""Concurrent execution runtime.

The runtime schedules the engine's model traffic: a bounded-concurrency
:class:`~repro.runtime.dispatcher.Dispatcher` that turns independent
completion requests into overlapping calls, single-flight deduplication
of identical in-flight prompts, a reusable
:class:`~repro.runtime.retry.RetryPolicy`, speculative scan-page
prefetch, and deterministic critical-path wall-clock accounting via
:class:`~repro.runtime.latency.LatencyLedger`.

Concurrency here is *semantics-free* by design: for a fixed seed and
configuration, results, token usage, and call counts are byte-identical
to sequential execution (``max_in_flight=1``); only the reported
wall-clock changes.
"""

from repro.runtime.dispatcher import (
    CompletionRequest,
    Dispatcher,
    DispatcherStats,
    Outcome,
    Speculation,
)
from repro.runtime.latency import BranchClock, LatencyLedger, greedy_makespan
from repro.runtime.parallel import run_parallel
from repro.runtime.prefetch import ScanPrefetcher
from repro.runtime.retry import RETRY_NONCE, RetryPolicy
from repro.runtime.scheduler import (
    CancellationToken,
    CrossQueryDedup,
    FlightBudget,
    QueryJob,
    QueryOutcome,
    QueryScheduler,
    batch_makespan,
)

__all__ = [
    "CompletionRequest",
    "Dispatcher",
    "DispatcherStats",
    "Outcome",
    "Speculation",
    "BranchClock",
    "LatencyLedger",
    "run_parallel",
    "ScanPrefetcher",
    "RETRY_NONCE",
    "RetryPolicy",
    "CancellationToken",
    "CrossQueryDedup",
    "FlightBudget",
    "QueryJob",
    "QueryOutcome",
    "QueryScheduler",
    "batch_makespan",
    "greedy_makespan",
]
