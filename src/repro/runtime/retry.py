"""Reusable retry policy for model calls.

Lifted out of the model client so every caller — the dispatcher's
workers, the scan prefetcher's recovery path, future networked backends
— retries refusals and unusable output the same way:

* each retry re-issues the prompt with the sample index bumped by
  :data:`RETRY_NONCE`, so a refusal re-rolls without changing the
  beliefs a greedy decode would return;
* an optional exponential backoff separates attempts.  The default base
  of 0 ms keeps the simulated substrate fast; a networked backend would
  set a real base and cap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

#: Offset added to the sample index per retry so a refusal re-rolls.
RETRY_NONCE = 1009


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a failed completion is re-issued.

    Attributes:
        max_attempts: total attempts per request (first call + retries).
        backoff_base_ms: delay before the first retry; 0 disables
            backoff entirely (no sleeper calls, no wall-clock charge).
        backoff_multiplier: factor applied per further retry.
        backoff_cap_ms: upper bound on any single delay.
        sleeper: called with the delay in *seconds* when a positive
            backoff is due; injectable for tests.
    """

    max_attempts: int = 3
    backoff_base_ms: float = 0.0
    backoff_multiplier: float = 2.0
    backoff_cap_ms: float = 10_000.0
    sleeper: Callable[[float], None] = field(default=time.sleep, repr=False)

    def delay_ms(self, attempt: int) -> float:
        """Backoff due after failed ``attempt`` (0-based)."""
        if self.backoff_base_ms <= 0:
            return 0.0
        return min(
            self.backoff_base_ms * self.backoff_multiplier**attempt,
            self.backoff_cap_ms,
        )

    def sleep(self, delay_ms: float) -> None:
        if delay_ms > 0:
            self.sleeper(delay_ms / 1000.0)

    def nonce_for(self, attempt: int) -> int:
        """Sample-index offset for ``attempt`` (0 for the first call)."""
        return attempt * RETRY_NONCE

    @staticmethod
    def from_config(config) -> "RetryPolicy":
        """The policy an :class:`~repro.config.EngineConfig` asks for."""
        return RetryPolicy(
            max_attempts=config.max_retries + 1,
            backoff_base_ms=config.retry_backoff_ms,
        )
