"""World: the explicit "parametric knowledge" of the simulated model.

A world is a named set of materialized tables with primary keys.  It is
the single source of truth in every experiment:

* the simulated model answers prompts from it (through the noise model),
* the ground-truth baseline executes SQL directly over it,
* the metrics compare engine output against it.

Facts are addressed as ``(table, key, column)`` triples; the noise model
keys its deterministic randomness off these addresses so that the model's
"beliefs" are stable across prompts, pages and plans within a run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import WorkloadError
from repro.relational.catalog import Catalog
from repro.relational.executor import ReferenceExecutor
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.relational.types import Value

#: Address of one cell of world knowledge.
FactId = Tuple[str, Tuple[Value, ...], str]


class World:
    """A named collection of keyed tables."""

    def __init__(self, name: str, tables: Iterable[Table], description: str = ""):
        self.name = name
        self.description = description
        self._tables: Dict[str, Table] = {}
        self._catalog = Catalog()
        for table in tables:
            if not table.schema.primary_key:
                raise WorkloadError(
                    f"world table {table.schema.name!r} needs a primary key "
                    f"so facts can be addressed"
                )
            key = table.schema.name.lower()
            if key in self._tables:
                raise WorkloadError(f"duplicate world table {table.schema.name!r}")
            self._tables[key] = table
            self._catalog.register_table(table)
        self._domains: Dict[Tuple[str, str], List[Value]] = {}
        self._indexes: Dict[str, Dict[Tuple[Value, ...], Tuple[Value, ...]]] = {}

    # -- access ------------------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        """Catalog of the materialized ground-truth tables."""
        return self._catalog

    def executor(self) -> ReferenceExecutor:
        """A reference executor over the ground truth."""
        return ReferenceExecutor(self._catalog)

    def table_names(self) -> List[str]:
        return sorted(table.schema.name for table in self._tables.values())

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise WorkloadError(
                f"world {self.name!r} has no table {name!r} "
                f"(tables: {', '.join(self.table_names())})"
            )
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def schema(self, name: str) -> TableSchema:
        return self.table(name).schema

    def schemas(self) -> List[TableSchema]:
        return [self.table(name).schema for name in self.table_names()]

    # -- fact addressing ------------------------------------------------------------

    def key_index(self, name: str) -> Dict[Tuple[Value, ...], Tuple[Value, ...]]:
        """Primary-key index of a table (cached)."""
        key = name.lower()
        if key not in self._indexes:
            self._indexes[key] = self.table(name).build_key_index()
        return self._indexes[key]

    def fact(self, table: str, key: Tuple[Value, ...], column: str) -> Value:
        """The true value of one cell; raises if the row does not exist."""
        row = self.key_index(table).get(key)
        if row is None:
            raise WorkloadError(f"no row with key {key!r} in {table!r}")
        index = self.schema(table).column_index(column)
        return row[index]

    def column_domain(self, table: str, column: str) -> List[Value]:
        """Sorted distinct non-null values of a column (cached).

        The noise model draws *plausible but wrong* replacement values
        from this domain, so confabulations look like real answers.
        """
        cache_key = (table.lower(), column.lower())
        if cache_key not in self._domains:
            values = {
                value
                for value in self.table(table).column_values(column)
                if value is not None
            }
            self._domains[cache_key] = sorted(values, key=_domain_rank)
        return self._domains[cache_key]

    # -- stats used by prompts and the cost model ------------------------------------

    def row_count(self, table: str) -> int:
        return len(self.table(table))

    def total_cells(self) -> int:
        return sum(
            len(table) * len(table.schema.columns) for table in self._tables.values()
        )

    def render_summary(self) -> str:
        lines = [f"World {self.name!r}: {self.description}".rstrip(": ")]
        for name in self.table_names():
            table = self.table(name)
            lines.append(
                f"  {table.schema.render_signature()}  -- {len(table)} rows, "
                f"key ({', '.join(table.schema.primary_key)})"
            )
        return "\n".join(lines)


def _domain_rank(value: Value):
    if isinstance(value, bool):
        return (2, str(value))
    if isinstance(value, (int, float)):
        return (0, float(value), "")
    return (1, 0.0, str(value))
