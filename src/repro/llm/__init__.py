"""Language-model substrate.

Everything the engine knows about a model goes through the
:class:`~repro.llm.interface.LanguageModel` interface: a prompt string in,
a completion string (plus usage) out.  The package provides:

* a deterministic subword tokenizer used for cost accounting,
* usage metering (calls, tokens, simulated latency, dollar cost),
* a response cache,
* :class:`~repro.llm.world.World` — the explicit "parametric knowledge"
  of the simulated model, and
* :class:`~repro.llm.simulated.SimulatedLLM` — a seedable model that
  answers the engine's prompt protocols from a world with a configurable
  error model (knowledge gaps, sampling errors, omissions, hallucinated
  rows, format noise, output truncation).
"""

from repro.llm.interface import (
    Completion,
    CompletionOptions,
    LanguageModel,
    SequentialBatchAdapter,
    as_batching,
)
from repro.llm.tokenizer import count_tokens, truncate_to_tokens
from repro.llm.accounting import Budget, PriceModel, UsageMeter, UsageSnapshot
from repro.llm.cache import CacheStats, PromptCache
from repro.llm.world import World
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM

__all__ = [
    "Completion",
    "CompletionOptions",
    "LanguageModel",
    "SequentialBatchAdapter",
    "as_batching",
    "count_tokens",
    "truncate_to_tokens",
    "Budget",
    "PriceModel",
    "UsageMeter",
    "UsageSnapshot",
    "CacheStats",
    "PromptCache",
    "World",
    "NoiseConfig",
    "SimulatedLLM",
]
