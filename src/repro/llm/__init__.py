"""Language-model substrate.

Everything the engine knows about a model goes through the
:class:`~repro.llm.interface.LanguageModel` interface: a prompt string in,
a completion string (plus usage) out.  The package provides:

* a deterministic subword tokenizer used for cost accounting,
* usage metering (calls, tokens, simulated latency, dollar cost),
* a response cache,
* :class:`~repro.llm.world.World` — the explicit "parametric knowledge"
  of the simulated model, and
* :class:`~repro.llm.simulated.SimulatedLLM` — a seedable model that
  answers the engine's prompt protocols from a world with a configurable
  error model (knowledge gaps, sampling errors, omissions, hallucinated
  rows, format noise, output truncation), and
* :class:`~repro.llm.transport.Transport` — the model-boundary adapter
  (sync + async + streaming surfaces) with registered backends:
  in-process ``simulated``, OpenAI-style HTTP ``openai``, and
  llama.cpp local-server ``llamacpp``; network transports without
  credentials fall back deterministically to an in-process model.
"""

from repro.llm.interface import (
    Completion,
    CompletionOptions,
    LanguageModel,
    SequentialBatchAdapter,
    as_batching,
)
from repro.llm.tokenizer import count_tokens, truncate_to_tokens
from repro.llm.accounting import Budget, PriceModel, UsageMeter, UsageSnapshot
from repro.llm.cache import CacheStats, PromptCache
from repro.llm.world import World
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.llm.transport import (
    LlamaCppTransport,
    OpenAITransport,
    SimulatedTransport,
    Transport,
    as_transport,
    available_transports,
    build_transport,
    ensure_latency,
    register_transport,
    transport_from_config,
)

__all__ = [
    "Completion",
    "CompletionOptions",
    "LanguageModel",
    "SequentialBatchAdapter",
    "as_batching",
    "count_tokens",
    "truncate_to_tokens",
    "Budget",
    "PriceModel",
    "UsageMeter",
    "UsageSnapshot",
    "CacheStats",
    "PromptCache",
    "World",
    "NoiseConfig",
    "SimulatedLLM",
    "Transport",
    "SimulatedTransport",
    "OpenAITransport",
    "LlamaCppTransport",
    "as_transport",
    "available_transports",
    "build_transport",
    "ensure_latency",
    "register_transport",
    "transport_from_config",
]
