"""Model transports: the adapter between the engine and a model backend.

The engine above :class:`~repro.llm.interface.LanguageModel` never cares
where completions come from; a :class:`Transport` is the one adapter
that does.  It carries three surfaces over a single implementation:

* the **sync** :class:`~repro.llm.interface.LanguageModel` surface
  (``complete`` / ``complete_many``) that the existing metered/caching
  stack consumes unchanged;
* the **async-native** surface (``complete_async`` /
  ``complete_many_async``) that the event-loop core
  (:func:`repro.runtime.dispatcher.get_event_loop_core`) and the
  continuous batcher (:mod:`repro.runtime.batching`) drive — network
  transports overlap their I/O here instead of burning a thread per
  call;
* the **streaming** surface (``open_completion_stream``) yielding
  ``(index, completion)`` pairs as requests land, in completion order.

Registered transports:

* ``simulated`` — wraps any in-process model (normally
  :class:`~repro.llm.simulated.SimulatedLLM`); the deterministic
  default.
* ``openai`` — an OpenAI-style chat-completions HTTP client.  Online
  only when an API key is configured; it prefers the ``openai`` SDK
  when the package is installed (probed with ``importlib.util.find_spec``
  so the dependency stays optional) and otherwise speaks the wire
  protocol through stdlib ``urllib``.
* ``llamacpp`` — a llama.cpp ``llama-server`` client (``POST
  /completion``), online only when a server URL is configured.

**Offline fallback is total delegation.**  A network transport without
credentials/endpoint delegates every request to a required in-process
fallback model and *reports the fallback's identity* as its
``model_name``.  That single decision is what keeps the whole engine
byte-identical offline: prompt-cache keys, storage-tier scopes, and
cross-query dedup scopes are all derived from the model name, so an
offline ``openai`` engine shares nothing with (and loses nothing
against) a plain in-process engine.  :func:`ensure_latency` additionally
guards accounting: a transport that reports no latency (zero, NaN, or
negative — common for HTTP backends without timing fields) gets a
deterministic synthetic latency from the same
:class:`~repro.llm.simulated.LatencyModel` the simulated model uses, so
``UsageSnapshot`` wall/latency totals never collapse to zero or NaN.
"""

from __future__ import annotations

import asyncio
import importlib
import importlib.util
import json
import math
import os
import time
from concurrent.futures import as_completed
from dataclasses import replace
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigError, TransportError
from repro.llm.cache import resolve_model_name
from repro.llm.interface import (
    BatchRequest,
    Completion,
    CompletionOptions,
    as_batching,
)
from repro.llm.simulated import LatencyModel
from repro.llm.tokenizer import count_tokens

#: Default OpenAI-style endpoint; overridable per transport or via env.
OPENAI_DEFAULT_URL = "https://api.openai.com/v1"
OPENAI_DEFAULT_MODEL = "gpt-4o-mini"


def ensure_latency(
    completion: Completion, latency_model: LatencyModel
) -> Completion:
    """Guarantee a finite, positive ``latency_ms`` on a completion.

    Real backends routinely omit timing information; propagating a zero
    (or NaN) latency would poison the wall-clock accounting that every
    makespan commit is built on.  Missing latencies are synthesized from
    token counts with the same deterministic model the simulated LLM
    uses, so offline and online accounting stay on one scale.
    """
    latency = completion.latency_ms
    if latency is not None and math.isfinite(latency) and latency > 0.0:
        return completion
    return replace(
        completion,
        latency_ms=latency_model.latency(
            completion.prompt_tokens, completion.completion_tokens
        ),
    )


def _http_post_json(
    url: str,
    payload: dict,
    headers: Optional[Dict[str, str]] = None,
    timeout_s: float = 30.0,
) -> Tuple[dict, float]:
    """POST JSON, return (parsed body, elapsed milliseconds).

    Module-level so tests monkeypatch the wire without a server.
    """
    import urllib.request

    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    started = time.perf_counter()
    with urllib.request.urlopen(request, timeout=timeout_s) as response:
        body = json.loads(response.read().decode("utf-8"))
    return body, (time.perf_counter() - started) * 1000.0


def _openai_client(api_key: Optional[str], base_url: str):
    """The ``openai`` SDK client, or ``None`` when not installed.

    The import is probed, never required: environments without the
    package fall through to the stdlib HTTP path (online) or the
    deterministic fallback model (offline).
    """
    if importlib.util.find_spec("openai") is None:
        return None
    openai_module = importlib.import_module("openai")
    OpenAI = getattr(openai_module, "OpenAI")
    return OpenAI(api_key=api_key, base_url=base_url)


class Transport:
    """Base adapter: one implementation, sync + async + stream surfaces.

    Subclasses implement :meth:`_complete` (and may override
    :meth:`complete_async` when they can do better than delegating the
    blocking call to the event loop's executor — e.g. the simulated
    transport computes inline, a native-async backend would await its
    own client).  Everything returned to callers passes through
    :func:`ensure_latency`.
    """

    #: Registry name; subclasses override.
    name = "transport"
    #: Duck-typed marker (``isinstance`` across reloads is fragile).
    is_transport = True

    def __init__(self, latency_model: Optional[LatencyModel] = None):
        self._latency_model = latency_model or LatencyModel()

    # -- identity ------------------------------------------------------

    @property
    def model_name(self) -> str:
        """The identity caches and storage scopes key on."""
        raise NotImplementedError

    @property
    def offline(self) -> bool:
        """Whether requests are served by the in-process fallback."""
        return False

    def describe(self) -> str:
        """One human-readable line for ``.storage`` / usage output."""
        return self.name

    # -- implementation hook -------------------------------------------

    def _complete(
        self, prompt: str, options: CompletionOptions
    ) -> Completion:
        raise NotImplementedError

    # -- sync LanguageModel surface ------------------------------------

    def complete(
        self, prompt: str, options: CompletionOptions = CompletionOptions()
    ) -> Completion:
        return ensure_latency(
            self._complete(prompt, options), self._latency_model
        )

    def complete_many(
        self, requests: Sequence[BatchRequest]
    ) -> List[Completion]:
        """Batch entry point: issued concurrently on the event-loop core.

        Results come back in request order; a single-element batch skips
        the loop round-trip entirely.
        """
        requests = list(requests)
        if not requests:
            return []
        if len(requests) == 1:
            prompt, options = requests[0]
            return [self.complete(prompt, options)]
        from repro.runtime.dispatcher import get_event_loop_core

        return get_event_loop_core().run(self.complete_many_async(requests))

    # -- async-native surface ------------------------------------------

    async def complete_async(
        self, prompt: str, options: CompletionOptions = CompletionOptions()
    ) -> Completion:
        """One completion without blocking the event loop.

        The default delegates the (blocking) sync implementation to the
        loop's default executor, which is exactly right for stdlib HTTP
        backends: N co-batched requests overlap their socket waits.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.complete, prompt, options)

    async def complete_many_async(
        self, requests: Sequence[BatchRequest]
    ) -> List[Completion]:
        return list(
            await asyncio.gather(
                *(self.complete_async(prompt, options) for prompt, options in requests)
            )
        )

    # -- streaming surface ---------------------------------------------

    def open_completion_stream(
        self, requests: Sequence[BatchRequest]
    ) -> Iterator[Tuple[int, Completion]]:
        """Yield ``(request_index, completion)`` in completion order.

        All requests are issued concurrently on the event-loop core;
        consumers see each result as soon as it lands rather than
        waiting for the slowest element of the batch.  Closing the
        iterator early abandons the remaining results (the underlying
        calls still finish on the loop; nothing leaks un-awaited).
        """
        from repro.runtime.dispatcher import get_event_loop_core

        core = get_event_loop_core()
        futures = {}
        for index, (prompt, options) in enumerate(requests):
            futures[core.submit(self.complete_async(prompt, options))] = index
        for future in as_completed(futures):
            yield futures[future], future.result()


class SimulatedTransport(Transport):
    """The in-process transport: wraps any local model, zero wire cost."""

    name = "simulated"

    def __init__(self, model, latency_model: Optional[LatencyModel] = None):
        super().__init__(latency_model)
        if model is None:
            raise ConfigError(
                "simulated transport needs the in-process model it serves "
                "(fallback_model=)"
            )
        self._model = as_batching(model)

    @property
    def model_name(self) -> str:
        return resolve_model_name(self._model)

    def describe(self) -> str:
        return f"simulated (in-process {self.model_name})"

    def _complete(
        self, prompt: str, options: CompletionOptions
    ) -> Completion:
        return self._model.complete(prompt, options)

    def complete_many(
        self, requests: Sequence[BatchRequest]
    ) -> List[Completion]:
        # The inner model may batch natively; no loop round-trip needed
        # for pure in-process compute.
        return [
            ensure_latency(completion, self._latency_model)
            for completion in self._model.complete_many(list(requests))
        ]

    async def complete_async(
        self, prompt: str, options: CompletionOptions = CompletionOptions()
    ) -> Completion:
        # In-process compute is microseconds; running it inline on the
        # loop beats an executor hop and keeps results deterministic
        # under any scheduling.
        return self.complete(prompt, options)


class OpenAITransport(Transport):
    """OpenAI-style chat-completions client with deterministic fallback.

    Online when an API key is available (argument or ``OPENAI_API_KEY``);
    the endpoint defaults to ``OPENAI_BASE_URL`` or the public API.  The
    SDK is used when installed, else the stdlib wire path.  Offline,
    every request is delegated to ``fallback_model`` and the transport
    *is* that model as far as identity-keyed machinery is concerned.
    """

    name = "openai"

    def __init__(
        self,
        fallback_model=None,
        url: Optional[str] = None,
        model: str = OPENAI_DEFAULT_MODEL,
        api_key: Optional[str] = None,
        latency_model: Optional[LatencyModel] = None,
        timeout_s: float = 30.0,
        offline: Optional[bool] = None,
    ):
        super().__init__(latency_model)
        self._url = (
            url or os.environ.get("OPENAI_BASE_URL") or OPENAI_DEFAULT_URL
        ).rstrip("/")
        self._api_key = (
            api_key if api_key is not None else os.environ.get("OPENAI_API_KEY")
        )
        self._model = model or OPENAI_DEFAULT_MODEL
        self._timeout_s = timeout_s
        self._offline = bool(offline) if offline is not None else not self._api_key
        self._fallback = (
            as_batching(fallback_model) if fallback_model is not None else None
        )
        self._client = (
            None if self._offline else _openai_client(self._api_key, self._url)
        )
        if self._offline and self._fallback is None:
            raise ConfigError(
                "openai transport is offline (no API key) and has no "
                "fallback model; pass fallback_model= or set OPENAI_API_KEY"
            )

    @property
    def offline(self) -> bool:
        return self._offline

    @property
    def model_name(self) -> str:
        if self._offline:
            return resolve_model_name(self._fallback)
        return f"openai/{self._model}"

    def describe(self) -> str:
        if self._offline:
            return f"openai (offline fallback → {self.model_name})"
        via = "sdk" if self._client is not None else "http"
        return f"openai ({self._model} @ {self._url}, {via})"

    def _complete(
        self, prompt: str, options: CompletionOptions
    ) -> Completion:
        if self._offline:
            return self._fallback.complete(prompt, options)
        if self._client is not None:
            return self._sdk_complete(prompt, options)
        return self._http_complete(prompt, options)

    def _sdk_complete(
        self, prompt: str, options: CompletionOptions
    ) -> Completion:
        try:
            response = self._client.chat.completions.create(
                model=self._model,
                messages=[{"role": "user", "content": prompt}],
                temperature=options.temperature,
                max_tokens=options.max_tokens,
            )
            choice = response.choices[0]
            text = choice.message.content or ""
        except Exception as exc:
            raise TransportError(f"openai request failed: {exc}") from exc
        usage = getattr(response, "usage", None)
        return Completion(
            text=text,
            prompt_tokens=int(
                getattr(usage, "prompt_tokens", 0) or count_tokens(prompt)
            ),
            completion_tokens=int(
                getattr(usage, "completion_tokens", 0) or count_tokens(text)
            ),
            truncated=getattr(choice, "finish_reason", "") == "length",
            # The SDK reports no timing; ensure_latency synthesizes one.
            latency_ms=0.0,
            model_name=self.model_name,
        )

    def _http_complete(
        self, prompt: str, options: CompletionOptions
    ) -> Completion:
        payload = {
            "model": self._model,
            "messages": [{"role": "user", "content": prompt}],
            "temperature": options.temperature,
            "max_tokens": options.max_tokens,
        }
        try:
            body, elapsed_ms = _http_post_json(
                f"{self._url}/chat/completions",
                payload,
                headers={"Authorization": f"Bearer {self._api_key}"},
                timeout_s=self._timeout_s,
            )
        except (OSError, ValueError) as exc:
            raise TransportError(f"openai request failed: {exc}") from exc
        try:
            choice = body["choices"][0]
            text = choice.get("message", {}).get("content") or ""
        except (KeyError, IndexError, TypeError) as exc:
            raise TransportError(
                f"openai response malformed: {exc}"
            ) from exc
        usage = body.get("usage") or {}
        return Completion(
            text=text,
            prompt_tokens=int(
                usage.get("prompt_tokens") or count_tokens(prompt)
            ),
            completion_tokens=int(
                usage.get("completion_tokens") or count_tokens(text)
            ),
            truncated=choice.get("finish_reason") == "length",
            latency_ms=float(elapsed_ms),
            model_name=self.model_name,
        )


class LlamaCppTransport(Transport):
    """llama.cpp ``llama-server`` client (``POST /completion``).

    Online when a server URL is configured (argument,
    ``LLAMA_SERVER_URL``, or ``REPRO_LLAMACPP_URL``); offline it
    delegates to the fallback model like :class:`OpenAITransport`.  The
    server's own ``timings`` (prompt + predicted milliseconds) become
    the completion latency when present.
    """

    name = "llamacpp"

    def __init__(
        self,
        fallback_model=None,
        url: Optional[str] = None,
        latency_model: Optional[LatencyModel] = None,
        timeout_s: float = 60.0,
        offline: Optional[bool] = None,
        model: str = "default",
    ):
        super().__init__(latency_model)
        self._url = (
            url
            or os.environ.get("LLAMA_SERVER_URL")
            or os.environ.get("REPRO_LLAMACPP_URL")
            or ""
        ).rstrip("/")
        self._model = model or "default"
        self._timeout_s = timeout_s
        self._offline = bool(offline) if offline is not None else not self._url
        self._fallback = (
            as_batching(fallback_model) if fallback_model is not None else None
        )
        if self._offline and self._fallback is None:
            raise ConfigError(
                "llamacpp transport is offline (no server URL) and has no "
                "fallback model; pass fallback_model= or set LLAMA_SERVER_URL"
            )

    @property
    def offline(self) -> bool:
        return self._offline

    @property
    def model_name(self) -> str:
        if self._offline:
            return resolve_model_name(self._fallback)
        return f"llamacpp/{self._model}@{self._url}"

    def describe(self) -> str:
        if self._offline:
            return f"llamacpp (offline fallback → {self.model_name})"
        return f"llamacpp (server @ {self._url})"

    def _complete(
        self, prompt: str, options: CompletionOptions
    ) -> Completion:
        if self._offline:
            return self._fallback.complete(prompt, options)
        payload = {
            "prompt": prompt,
            "temperature": options.temperature,
            "n_predict": options.max_tokens,
            # Repeat samples decode with distinct seeds so voting sees
            # independent draws, mirroring the simulated model's
            # per-sample determinism.
            "seed": options.sample_index,
            "cache_prompt": True,
        }
        try:
            body, elapsed_ms = _http_post_json(
                f"{self._url}/completion", payload, timeout_s=self._timeout_s
            )
        except (OSError, ValueError) as exc:
            raise TransportError(f"llamacpp request failed: {exc}") from exc
        if not isinstance(body, dict) or "content" not in body:
            raise TransportError(
                f"llamacpp response malformed: missing 'content' in {body!r:.200}"
            )
        text = body.get("content") or ""
        timings = body.get("timings") or {}
        server_ms = float(timings.get("prompt_ms") or 0.0) + float(
            timings.get("predicted_ms") or 0.0
        )
        return Completion(
            text=text,
            prompt_tokens=int(
                body.get("tokens_evaluated")
                or timings.get("prompt_n")
                or count_tokens(prompt)
            ),
            completion_tokens=int(
                body.get("tokens_predicted")
                or timings.get("predicted_n")
                or count_tokens(text)
            ),
            truncated=bool(body.get("truncated"))
            or body.get("stop_type") == "limit",
            latency_ms=server_ms or float(elapsed_ms),
            model_name=self.model_name,
        )


# ---------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., Transport]] = {}


def register_transport(name: str):
    """Class/factory decorator adding a transport under ``name``."""

    def decorate(factory):
        _REGISTRY[name] = factory
        return factory

    return decorate


def available_transports() -> Tuple[str, ...]:
    """Registered transport names, sorted."""
    return tuple(sorted(_REGISTRY))


def build_transport(
    name: str,
    fallback_model=None,
    url: Optional[str] = None,
    model: Optional[str] = None,
    api_key: Optional[str] = None,
    latency_model: Optional[LatencyModel] = None,
    offline: Optional[bool] = None,
) -> Transport:
    """Instantiate a registered transport with normalized arguments.

    ``offline=True`` forces the deterministic fallback path regardless
    of ambient credentials — the conformance suite and CI run every
    transport this way so results never depend on the environment.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown transport {name!r}; "
            f"available: {', '.join(available_transports())}"
        )
    return factory(
        fallback_model=fallback_model,
        url=url,
        model=model,
        api_key=api_key,
        latency_model=latency_model,
        offline=offline,
    )


@register_transport("simulated")
def _build_simulated(
    fallback_model=None, latency_model=None, **_ignored
) -> SimulatedTransport:
    return SimulatedTransport(fallback_model, latency_model=latency_model)


@register_transport("openai")
def _build_openai(
    fallback_model=None,
    url=None,
    model=None,
    api_key=None,
    latency_model=None,
    offline=None,
) -> OpenAITransport:
    return OpenAITransport(
        fallback_model=fallback_model,
        url=url,
        model=model or OPENAI_DEFAULT_MODEL,
        api_key=api_key,
        latency_model=latency_model,
        offline=offline,
    )


@register_transport("llamacpp")
def _build_llamacpp(
    fallback_model=None,
    url=None,
    model=None,
    latency_model=None,
    offline=None,
    **_ignored,
) -> LlamaCppTransport:
    return LlamaCppTransport(
        fallback_model=fallback_model,
        url=url,
        model=model or "default",
        latency_model=latency_model,
        offline=offline,
    )


def as_transport(model) -> Transport:
    """``model`` if it already is a transport, else wrapped in-process."""
    if getattr(model, "is_transport", False):
        return model
    return SimulatedTransport(model)


def transport_from_config(config, fallback_model) -> Transport:
    """The transport an :class:`~repro.config.EngineConfig` names."""
    return build_transport(
        config.transport, fallback_model=fallback_model, url=config.transport_url
    )


def transport_label(model) -> Optional[str]:
    """Short usage-line label, or ``None`` for plain in-process models."""
    if not getattr(model, "is_transport", False):
        return None
    label = str(getattr(model, "name", "transport"))
    if getattr(model, "offline", False):
        label += " (offline)"
    return label
