"""Prompt/completion cache.

Caching is one of the paper-line's core cost optimizations: repeated
lookups (e.g. a join probing the same key twice, or two queries sharing a
sub-plan) must not pay for a second model call.

A completion is cacheable when decoding is deterministic for the request:
temperature 0, or a pinned ``sample_index`` at temperature > 0 (the
simulated model is deterministic given ``(prompt, sample_index)``; real
APIs offer the same via a seed parameter).

Cache keys include the *model identity*: two different models answering
the same prompt must never return each other's completions, so a cache
shared across models (a session serving several backends) partitions by
``model_name``.

The cache is thread-safe: the concurrent runtime
(:mod:`repro.runtime.dispatcher`) reads and writes it from worker
threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.llm.interface import Completion, CompletionOptions, LanguageModel


@dataclass
class CacheStats:
    """Hit/miss counters; eviction count for LRU pressure analysis."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


CacheKey = Tuple[str, str, float, int, int]


def resolve_model_name(model: object) -> str:
    """The identity a model contributes to cache keys.

    Models that matter (the simulated LLM, API clients) carry a
    ``model_name``; anonymous test doubles fall back to their class
    name, which still separates distinct model types.
    """
    return str(getattr(model, "model_name", type(model).__name__))


def zero_cost_copy(completion: Completion) -> Completion:
    """A cached completion re-served: same text, zero marginal cost."""
    return Completion(
        text=completion.text,
        prompt_tokens=0,
        completion_tokens=0,
        truncated=completion.truncated,
        latency_ms=0.0,
        model_name=completion.model_name,
    )


class PromptCache:
    """LRU cache over (model, prompt, temperature, sample_index, max_tokens)."""

    def __init__(self, max_entries: int = 100_000):
        self._entries: "OrderedDict[CacheKey, Completion]" = OrderedDict()
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self.stats = CacheStats()

    @staticmethod
    def key_for(
        prompt: str, options: CompletionOptions, model_name: str = ""
    ) -> CacheKey:
        return (
            model_name,
            prompt,
            options.temperature,
            options.sample_index,
            options.max_tokens,
        )

    def get(
        self, prompt: str, options: CompletionOptions, model_name: str = ""
    ) -> Optional[Completion]:
        key = self.key_for(prompt, options, model_name)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(
        self,
        prompt: str,
        options: CompletionOptions,
        completion: Completion,
        model_name: str = "",
    ) -> None:
        key = self.key_for(prompt, options, model_name)
        with self._lock:
            self._entries[key] = completion
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def put_if_absent(
        self,
        prompt: str,
        options: CompletionOptions,
        completion: Completion,
        model_name: str = "",
    ) -> Tuple[Completion, bool]:
        """Insert unless present; returns ``(stored, was_present)``.

        The check and insert are one atomic step, which lets concurrent
        producers of the same completion (e.g. speculative prefetches
        from two identical scans) agree on exactly one payer: the first
        stores and pays, everyone else sees ``was_present=True`` and
        accounts a zero-cost hit — the same totals a sequential run
        records.
        """
        key = self.key_for(prompt, options, model_name)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing, True
            self._entries[key] = completion
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return completion, False

    def contains(
        self, prompt: str, options: CompletionOptions, model_name: str = ""
    ) -> bool:
        """Whether the key is cached — no stats, no recency effect.

        A pure containment probe for callers deciding *how* to issue a
        call (e.g. whether it needs an in-flight budget slot); the real
        read still goes through :meth:`get`.
        """
        key = self.key_for(prompt, options, model_name)
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class CachingModel:
    """Model decorator that consults a :class:`PromptCache` first.

    Cache hits return the stored completion with zero-cost usage (the
    tokens were already paid for), which is exactly how engine-side
    caching changes the economics of repeated lookups.
    """

    def __init__(self, inner: LanguageModel, cache: Optional[PromptCache] = None):
        self._inner = inner
        self._model_name = resolve_model_name(inner)
        self.cache = cache if cache is not None else PromptCache()

    @property
    def model_name(self) -> str:
        return self._model_name

    def complete(
        self, prompt: str, options: CompletionOptions = CompletionOptions()
    ) -> Completion:
        cached = self.cache.get(prompt, options, model_name=self._model_name)
        if cached is not None:
            return zero_cost_copy(cached)
        completion = self._inner.complete(prompt, options)
        stored, was_present = self.cache.put_if_absent(
            prompt, options, completion, model_name=self._model_name
        )
        if was_present:
            # A concurrent producer (another worker or a consumed
            # speculation) stored this key between our miss and now;
            # only one caller pays, as a sequential run would have it.
            return zero_cost_copy(stored)
        return completion
