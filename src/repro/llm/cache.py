"""Prompt/completion cache.

Caching is one of the paper-line's core cost optimizations: repeated
lookups (e.g. a join probing the same key twice, or two queries sharing a
sub-plan) must not pay for a second model call.

A completion is cacheable when decoding is deterministic for the request:
temperature 0, or a pinned ``sample_index`` at temperature > 0 (the
simulated model is deterministic given ``(prompt, sample_index)``; real
APIs offer the same via a seed parameter).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.llm.interface import Completion, CompletionOptions, LanguageModel


@dataclass
class CacheStats:
    """Hit/miss counters; eviction count for LRU pressure analysis."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


CacheKey = Tuple[str, float, int, int]


class PromptCache:
    """LRU cache over (prompt, temperature, sample_index, max_tokens)."""

    def __init__(self, max_entries: int = 100_000):
        self._entries: "OrderedDict[CacheKey, Completion]" = OrderedDict()
        self._max_entries = max_entries
        self.stats = CacheStats()

    @staticmethod
    def key_for(prompt: str, options: CompletionOptions) -> CacheKey:
        return (prompt, options.temperature, options.sample_index, options.max_tokens)

    def get(self, prompt: str, options: CompletionOptions) -> Optional[Completion]:
        key = self.key_for(prompt, options)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, prompt: str, options: CompletionOptions, completion: Completion) -> None:
        key = self.key_for(prompt, options)
        self._entries[key] = completion
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class CachingModel:
    """Model decorator that consults a :class:`PromptCache` first.

    Cache hits return the stored completion with zero-cost usage (the
    tokens were already paid for), which is exactly how engine-side
    caching changes the economics of repeated lookups.
    """

    def __init__(self, inner: LanguageModel, cache: Optional[PromptCache] = None):
        self._inner = inner
        self.cache = cache if cache is not None else PromptCache()

    def complete(
        self, prompt: str, options: CompletionOptions = CompletionOptions()
    ) -> Completion:
        cached = self.cache.get(prompt, options)
        if cached is not None:
            return Completion(
                text=cached.text,
                prompt_tokens=0,
                completion_tokens=0,
                truncated=cached.truncated,
                latency_ms=0.0,
                model_name=cached.model_name,
            )
        completion = self._inner.complete(prompt, options)
        self.cache.put(prompt, options, completion)
        return completion
