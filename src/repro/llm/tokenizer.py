"""Deterministic subword tokenizer used for cost accounting.

Real deployments meter BPE tokens; offline we approximate with a stable
rule: every run of word characters contributes ``ceil(len/4)`` tokens
(about one token per four characters, the usual BPE rule of thumb) and
every punctuation/symbol character contributes one token.  Whitespace is
free.  The exact constant does not matter for the experiments — only that
the measure is monotone in text length and identical on both sides of the
prompt/completion interface.
"""

from __future__ import annotations

import re
from typing import List

_WORD_RE = re.compile(r"[A-Za-z0-9_]+|[^\sA-Za-z0-9_]")

#: Characters of word content covered by one accounting token.
CHARS_PER_TOKEN = 4


def split_pieces(text: str) -> List[str]:
    """Split text into the pieces the accounting rule charges for."""
    return _WORD_RE.findall(text)


def count_tokens(text: str) -> int:
    """Number of accounting tokens in ``text``."""
    total = 0
    for piece in split_pieces(text):
        if piece[0].isalnum() or piece[0] == "_":
            total += -(-len(piece) // CHARS_PER_TOKEN)  # ceil division
        else:
            total += 1
    return total


def truncate_to_tokens(text: str, max_tokens: int) -> str:
    """Longest prefix of ``text`` measuring at most ``max_tokens`` tokens.

    Models stop emitting mid-stream when the output budget is exhausted;
    this reproduces that behaviour (the cut can fall mid-line, which the
    response parsers must tolerate).
    """
    if max_tokens <= 0:
        return ""
    if count_tokens(text) <= max_tokens:
        return text
    total = 0
    cut = 0
    for match in _WORD_RE.finditer(text):
        piece = match.group(0)
        if piece[0].isalnum() or piece[0] == "_":
            cost = -(-len(piece) // CHARS_PER_TOKEN)
        else:
            cost = 1
        if total + cost > max_tokens:
            break
        total += cost
        cut = match.end()
    return text[:cut]
