"""Error model of the simulated language model.

The model has two qualitatively different failure sources, matching what
is empirically reported for factual LLM querying:

* **Knowledge gaps** — per-fact corruption that is stable across samples
  and prompts.  Resampling (self-consistency voting) cannot repair these;
  they set the accuracy ceiling.
* **Sampling errors** — decoding mistakes.  At temperature 0 they are
  *systematic* (the same wrong answer every time, keyed by fact); at
  temperature > 0 they are i.i.d. per ``sample_index``, which is exactly
  what voting averages away.

On top of cell-level corruption the model can forget whole rows
(omission), invent rows (hallucination), and decorate answers with
chatter (format noise).  Direct whole-query prompting additionally pays a
complexity penalty: per-value error grows with the number of relational
operators the model is asked to emulate in-context, modeling the
documented unreliability of multi-step in-context computation.

All randomness is derived from SHA-256 over ``(seed, *address)`` so runs
are reproducible and independent draws are keyed by independent
addresses.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, replace
from typing import List

from repro.relational.types import Value


def stable_hash(*parts: object) -> int:
    """Deterministic 64-bit hash of a tuple of printable parts."""
    payload = "\x1f".join(_encode(part) for part in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return struct.unpack("<Q", digest[:8])[0]


def _encode(part: object) -> str:
    if isinstance(part, float):
        return f"f:{part!r}"
    if isinstance(part, bool):
        return f"b:{part}"
    if isinstance(part, int):
        return f"i:{part}"
    if part is None:
        return "n:"
    return f"s:{part}"


def uniform01(*parts: object) -> float:
    """Deterministic uniform draw in [0, 1) keyed by ``parts``."""
    return stable_hash(*parts) / 2.0**64


def pick_index(count: int, *parts: object) -> int:
    """Deterministic index draw in [0, count)."""
    if count <= 0:
        raise ValueError("pick_index needs a positive count")
    return stable_hash(*parts) % count


@dataclass(frozen=True)
class NoiseConfig:
    """Error-rate knobs of the simulated model.

    Attributes:
        knowledge_gap_rate: probability a given cell is permanently wrong
            (irreducible by voting).
        sampling_error_rate: probability a given emission of a cell is
            wrong due to decoding (systematic at temperature 0, i.i.d.
            per sample otherwise).
        row_omission_rate: probability the model does not know a row
            exists (skipped in enumeration, UNKNOWN in lookups).
        hallucinated_row_rate: expected fabricated rows per true row
            during enumeration.
        format_noise_rate: probability an answer line carries extra
            chatter ("I think ...", trailing remarks) that parsers must
            strip.
        numeric_jitter: relative scale of numeric confabulations; a wrong
            number is drawn within +/- this fraction of the true value.
        direct_complexity_penalty: per-operator multiplier applied to
            cell error rates when the model emulates a whole SQL query
            in-context (direct prompting baseline).
        aggregate_error_rate: probability a numeric output cell of a
            direct-prompted aggregate query is mis-computed (in-context
            arithmetic failure); also scaled by the complexity penalty.
            Decomposed execution never pays this — aggregates run in the
            local executor.
        refusal_rate: probability a whole prompt is answered with an
            apology instead of data (forces engine-side retry logic).
    """

    knowledge_gap_rate: float = 0.05
    sampling_error_rate: float = 0.08
    row_omission_rate: float = 0.02
    hallucinated_row_rate: float = 0.01
    format_noise_rate: float = 0.05
    numeric_jitter: float = 0.35
    direct_complexity_penalty: float = 0.5
    aggregate_error_rate: float = 0.12
    refusal_rate: float = 0.0

    def scaled(self, factor: float) -> "NoiseConfig":
        """All error rates multiplied by ``factor`` (capped at 1)."""
        return NoiseConfig(
            knowledge_gap_rate=min(1.0, self.knowledge_gap_rate * factor),
            sampling_error_rate=min(1.0, self.sampling_error_rate * factor),
            row_omission_rate=min(1.0, self.row_omission_rate * factor),
            hallucinated_row_rate=min(1.0, self.hallucinated_row_rate * factor),
            format_noise_rate=min(1.0, self.format_noise_rate * factor),
            numeric_jitter=self.numeric_jitter,
            direct_complexity_penalty=self.direct_complexity_penalty,
            aggregate_error_rate=min(1.0, self.aggregate_error_rate * factor),
            refusal_rate=min(1.0, self.refusal_rate * factor),
        )

    def with_gap(self, knowledge_gap_rate: float) -> "NoiseConfig":
        return replace(self, knowledge_gap_rate=knowledge_gap_rate)

    def with_sampling_error(self, sampling_error_rate: float) -> "NoiseConfig":
        return replace(self, sampling_error_rate=sampling_error_rate)

    @staticmethod
    def perfect() -> "NoiseConfig":
        """A model with no errors at all (used by equivalence tests)."""
        return NoiseConfig(
            knowledge_gap_rate=0.0,
            sampling_error_rate=0.0,
            row_omission_rate=0.0,
            hallucinated_row_rate=0.0,
            format_noise_rate=0.0,
            numeric_jitter=0.0,
            direct_complexity_penalty=0.0,
            aggregate_error_rate=0.0,
            refusal_rate=0.0,
        )


def confabulate(
    true_value: Value,
    domain: List[Value],
    jitter: float,
    *address: object,
) -> Value:
    """A plausible-but-wrong replacement for ``true_value``.

    Text draws a *different* value from the column domain; numbers are
    perturbed multiplicatively; booleans flip.  Deterministic in
    ``address``.
    """
    if isinstance(true_value, bool):
        return not true_value
    if isinstance(true_value, (int, float)):
        span = jitter if jitter > 0 else 0.35
        offset = uniform01(*address, "jitter")
        factor = 1.0 + span * (2.0 * offset - 1.0)
        if abs(factor - 1.0) < 1e-9:
            factor = 1.0 + span  # force a visible error
        perturbed = true_value * factor
        if isinstance(true_value, int):
            wrong = int(round(perturbed))
            if wrong == true_value:
                wrong = true_value + (1 if offset >= 0.5 else -1)
            return wrong
        return perturbed
    if isinstance(true_value, str):
        alternatives = [v for v in domain if isinstance(v, str) and v != true_value]
        if alternatives:
            return alternatives[pick_index(len(alternatives), *address, "alt")]
        return true_value + " (disputed)"
    if true_value is None:
        if domain:
            return domain[pick_index(len(domain), *address, "null-fill")]
        return None
    return true_value


def fabricate_text(kind: str, *address: object) -> str:
    """A fabricated entity name for hallucinated rows."""
    syllables = ["vel", "dor", "min", "sar", "tak", "lun", "bre", "kos", "ran", "pel"]
    first = syllables[pick_index(len(syllables), *address, "syll1")]
    second = syllables[pick_index(len(syllables), *address, "syll2")]
    third = syllables[pick_index(len(syllables), *address, "syll3")]
    return f"{first.capitalize()}{second}{third} ({kind})"


#: Chatter patterns used by format noise; parsers must strip these.
CHATTER_PREFIXES = [
    "I think ",
    "Sure: ",
    "Answer: ",
    "Based on my knowledge, ",
]
CHATTER_SUFFIXES = [
    " (approximately)",
    " — hope this helps!",
    " (as of my training data)",
    " .",
]


def apply_format_noise(line: str, rate: float, *address: object) -> str:
    """Possibly decorate an answer line with chatter."""
    if rate <= 0.0 or uniform01(*address, "chatter?") >= rate:
        return line
    if uniform01(*address, "side") < 0.5:
        prefix = CHATTER_PREFIXES[pick_index(len(CHATTER_PREFIXES), *address, "p")]
        return prefix + line
    suffix = CHATTER_SUFFIXES[pick_index(len(CHATTER_SUFFIXES), *address, "s")]
    return line + suffix


REFUSAL_TEXT = (
    "I'm sorry, but I can't provide that information right now. "
    "Could you rephrase the request?"
)


def should_refuse(rate: float, *address: object) -> bool:
    """Whole-prompt refusal decision."""
    return rate > 0.0 and uniform01(*address, "refuse?") < rate
