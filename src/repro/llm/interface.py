"""The prompt/completion interface every model implements.

The engine is written against :class:`LanguageModel` only.  Swapping the
simulated model for a networked API client would not change a single line
above this interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence, Tuple, runtime_checkable


@dataclass(frozen=True)
class CompletionOptions:
    """Decoding options for one completion request.

    Attributes:
        temperature: 0.0 requests greedy decoding (deterministic per
            prompt); higher values request sampling.  The simulated model
            uses this to decide whether sampling errors are systematic
            (greedy) or i.i.d. per sample.
        max_tokens: hard output budget; completions are cut mid-stream
            when the budget runs out.
        sample_index: distinguishes repeated samples of the same prompt
            for self-consistency voting.  Ignored at temperature 0.
    """

    temperature: float = 0.0
    max_tokens: int = 512
    sample_index: int = 0


@dataclass(frozen=True)
class Completion:
    """One model response with its usage accounting."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    truncated: bool = False
    latency_ms: float = 0.0
    model_name: str = "simulated"

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


#: One batch element: the prompt plus its decoding options.
BatchRequest = Tuple[str, CompletionOptions]


@runtime_checkable
class LanguageModel(Protocol):
    """Anything that maps a prompt to a completion."""

    def complete(self, prompt: str, options: CompletionOptions = CompletionOptions()) -> Completion:
        """Generate a completion for ``prompt``."""
        ...

    def complete_many(self, requests: Sequence[BatchRequest]) -> List[Completion]:
        """Generate completions for a batch of independent requests.

        Results are returned in request order.  Backends with a real
        batch endpoint amortize per-request overhead here; anything else
        can be adapted with :func:`as_batching`.
        """
        ...


class SequentialBatchAdapter:
    """Gives any single-call model the batch interface, sequentially.

    The fallback behind :func:`as_batching`: correctness-equivalent to a
    native batch endpoint (requests are independent), with no latency
    amortization.
    """

    def __init__(self, inner):
        self._inner = inner

    @property
    def model_name(self) -> str:
        return str(getattr(self._inner, "model_name", type(self._inner).__name__))

    def complete(
        self, prompt: str, options: CompletionOptions = CompletionOptions()
    ) -> Completion:
        return self._inner.complete(prompt, options)

    def complete_many(self, requests: Sequence[BatchRequest]) -> List[Completion]:
        return [self._inner.complete(prompt, options) for prompt, options in requests]


def as_batching(model) -> LanguageModel:
    """``model`` if it batches natively, else a sequential adapter."""
    if callable(getattr(model, "complete_many", None)):
        return model
    return SequentialBatchAdapter(model)


@dataclass
class RecordedCall:
    """A (prompt, options, completion) triple kept by tracing wrappers."""

    prompt: str
    options: CompletionOptions
    completion: Completion


class TracingModel:
    """Decorator that records every call to an inner model.

    Useful in tests and examples for inspecting the prompt traffic an
    engine generated for a query.
    """

    def __init__(self, inner: LanguageModel, keep_last: int = 1000):
        self._inner = inner
        self._keep_last = keep_last
        self.calls: list[RecordedCall] = []

    @property
    def model_name(self) -> str:
        return str(getattr(self._inner, "model_name", type(self._inner).__name__))

    def complete(self, prompt: str, options: CompletionOptions = CompletionOptions()) -> Completion:
        completion = self._inner.complete(prompt, options)
        self.calls.append(RecordedCall(prompt, options, completion))
        if len(self.calls) > self._keep_last:
            del self.calls[: len(self.calls) - self._keep_last]
        return completion

    def complete_many(self, requests: Sequence[BatchRequest]) -> List[Completion]:
        return [self.complete(prompt, options) for prompt, options in requests]
