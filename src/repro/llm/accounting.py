"""Usage metering: calls, tokens, simulated latency and dollar cost.

Engines meter every completion through a :class:`UsageMeter`; query
results expose an immutable :class:`UsageSnapshot`, and the evaluation
harness differences snapshots to attribute cost to individual queries.
A :class:`Budget` can cap calls/tokens, raising
:class:`~repro.errors.LLMBudgetExceeded` mid-query — the engine surfaces
partial results with a warning flag, mimicking a spend limit on a real
API account.

Two latency totals are kept:

* ``latency_ms`` — *model time*: the sum of every completion's latency,
  i.e. what the workload would take fully serialized.  Concurrency
  never changes it.
* ``wall_ms`` — *critical path*: what a wall clock shows when the
  concurrent runtime overlaps independent calls (max over a parallel
  wave, sum over sequential stages).  With ``max_in_flight=1`` the two
  coincide; their ratio is the runtime's simulated speedup.

The meter is thread-safe: dispatcher workers record completions
concurrently.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.errors import LLMBudgetExceeded
from repro.llm.interface import Completion


@dataclass(frozen=True)
class PriceModel:
    """Dollar prices per 1000 tokens (defaults shaped like 2024 APIs)."""

    usd_per_1k_prompt_tokens: float = 0.01
    usd_per_1k_completion_tokens: float = 0.03

    def cost(self, prompt_tokens: int, completion_tokens: int) -> float:
        return (
            prompt_tokens * self.usd_per_1k_prompt_tokens
            + completion_tokens * self.usd_per_1k_completion_tokens
        ) / 1000.0


@dataclass(frozen=True)
class UsageSnapshot:
    """Immutable point-in-time usage totals.

    The storage counters describe traffic the materialization tier
    (:mod:`repro.storage`) kept away from the model: ``calls_saved``
    estimates model calls avoided, ``result_cache_hits`` counts whole
    queries served from the normalized result cache, and
    ``fragment_hits`` counts scans/lookup-keys served from materialized
    fragments.  All three are zero when storage is off.

    The shard counters describe partition-parallel retrieval:
    ``sharded_scans`` counts scan steps executed as independent shard
    chains, and ``shard_chains`` the total chains fanned out (a scan
    split 8 ways adds 1 and 8 respectively).  Sharding changes
    wall-clock and call layout only, never rows.

    The page counters describe the streaming row pipeline in retrieval
    pages — enumeration pages for scans, batch calls for lookups:
    ``pages_fetched`` counts pages actually pulled from the model (on
    any path, streamed or materialized), and ``pages_skipped`` the
    (estimated) pages an early-exiting stream avoided versus
    materializing everything — the direct observable of the early-exit
    saving.

    ``dedup_hits`` counts requests served by joining *another* query's
    in-flight identical call (cross-query single-flight under the
    concurrent serving layer): the joiner replays through the shared
    prompt cache after the leader lands, so each hit is a model call
    this query did not pay tokens for.  Always zero under serial
    execution.

    The persistent-store counters describe the shared durable tier
    (``storage_backend='sqlite'``): ``persistent_hits``/
    ``persistent_misses`` are the backing store's own access counters
    (zero on the in-memory backend), and ``invalidations`` counts
    scope-generation bumps this session observed — its own cache
    clears plus invalidations performed by other processes sharing the
    store file.
    """

    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    latency_ms: float = 0.0
    cost_usd: float = 0.0
    wall_ms: float = 0.0
    result_cache_hits: int = 0
    fragment_hits: int = 0
    calls_saved: int = 0
    sharded_scans: int = 0
    shard_chains: int = 0
    pages_fetched: int = 0
    pages_skipped: int = 0
    dedup_hits: int = 0
    persistent_hits: int = 0
    persistent_misses: int = 0
    invalidations: int = 0
    #: Human-readable p50/p99 call-latency line filled in by the
    #: session when the metrics registry is active; ``None`` (and thus
    #: absent from ``render``) when observability is off.  Derived
    #: display data, not a counter: ``minus``/``plus`` drop it.
    latency_summary: Optional[str] = None
    #: The active model transport's label (e.g. ``"openai (offline)"``)
    #: filled in by the session when the model is a
    #: :class:`~repro.llm.transport.Transport`; ``None`` for plain
    #: in-process models.  Display data like ``latency_summary``:
    #: ``minus``/``plus`` drop it.
    transport: Optional[str] = None

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    @property
    def speedup(self) -> float:
        """Serialized model time over critical path (1.0 when unknown).

        Both degenerate edges report 1.0: ``wall_ms == 0`` with model
        time accrued (e.g. a query served entirely from caches before
        any makespan commit) and ``latency_ms == 0`` — a ratio against
        zero in either direction is noise, not a speedup.
        """
        if self.wall_ms <= 0 or self.latency_ms <= 0:
            return 1.0
        return self.latency_ms / self.wall_ms

    def minus(self, earlier: "UsageSnapshot") -> "UsageSnapshot":
        """Usage accrued since ``earlier``."""
        return UsageSnapshot(
            calls=self.calls - earlier.calls,
            prompt_tokens=self.prompt_tokens - earlier.prompt_tokens,
            completion_tokens=self.completion_tokens - earlier.completion_tokens,
            latency_ms=self.latency_ms - earlier.latency_ms,
            cost_usd=self.cost_usd - earlier.cost_usd,
            wall_ms=self.wall_ms - earlier.wall_ms,
            result_cache_hits=self.result_cache_hits - earlier.result_cache_hits,
            fragment_hits=self.fragment_hits - earlier.fragment_hits,
            calls_saved=self.calls_saved - earlier.calls_saved,
            sharded_scans=self.sharded_scans - earlier.sharded_scans,
            shard_chains=self.shard_chains - earlier.shard_chains,
            pages_fetched=self.pages_fetched - earlier.pages_fetched,
            pages_skipped=self.pages_skipped - earlier.pages_skipped,
            dedup_hits=self.dedup_hits - earlier.dedup_hits,
            persistent_hits=self.persistent_hits - earlier.persistent_hits,
            persistent_misses=self.persistent_misses
            - earlier.persistent_misses,
            invalidations=self.invalidations - earlier.invalidations,
        )

    def plus(self, other: "UsageSnapshot") -> "UsageSnapshot":
        return UsageSnapshot(
            calls=self.calls + other.calls,
            prompt_tokens=self.prompt_tokens + other.prompt_tokens,
            completion_tokens=self.completion_tokens + other.completion_tokens,
            latency_ms=self.latency_ms + other.latency_ms,
            cost_usd=self.cost_usd + other.cost_usd,
            wall_ms=self.wall_ms + other.wall_ms,
            result_cache_hits=self.result_cache_hits + other.result_cache_hits,
            fragment_hits=self.fragment_hits + other.fragment_hits,
            calls_saved=self.calls_saved + other.calls_saved,
            sharded_scans=self.sharded_scans + other.sharded_scans,
            shard_chains=self.shard_chains + other.shard_chains,
            pages_fetched=self.pages_fetched + other.pages_fetched,
            pages_skipped=self.pages_skipped + other.pages_skipped,
            dedup_hits=self.dedup_hits + other.dedup_hits,
            persistent_hits=self.persistent_hits + other.persistent_hits,
            persistent_misses=self.persistent_misses
            + other.persistent_misses,
            invalidations=self.invalidations + other.invalidations,
        )

    def render(self) -> str:
        text = (
            f"{self.calls} calls, {self.prompt_tokens}+{self.completion_tokens} "
            f"tokens, {self.latency_ms:.0f} ms, ${self.cost_usd:.4f}"
        )
        # The speedup ratio appears only when concurrency actually
        # shortened the critical path; a serial run stays a flat line.
        if 0 < self.wall_ms < self.latency_ms:
            text += f", {self.wall_ms:.0f} ms wall ({self.speedup:.2f}x)"
        storage_bits = []
        if self.result_cache_hits:
            storage_bits.append(f"{self.result_cache_hits} result hit(s)")
        if self.fragment_hits:
            storage_bits.append(f"{self.fragment_hits} fragment hit(s)")
        if self.calls_saved:
            storage_bits.append(f"{self.calls_saved} call(s) saved")
        if storage_bits:
            text += f", storage: {', '.join(storage_bits)}"
        if self.sharded_scans:
            text += (
                f", {self.sharded_scans} sharded scan(s) "
                f"({self.shard_chains} chain(s))"
            )
        if self.pages_fetched or self.pages_skipped:
            text += (
                f", pages: {self.pages_fetched} fetched"
                f" / {self.pages_skipped} skipped"
            )
        if self.dedup_hits:
            text += f", {self.dedup_hits} in-flight dedup hit(s)"
        if self.persistent_hits or self.persistent_misses:
            text += (
                f", persistent store: {self.persistent_hits}h/"
                f"{self.persistent_misses}m"
            )
        if self.invalidations:
            text += f", {self.invalidations} invalidation(s)"
        if self.latency_summary:
            text += f", {self.latency_summary}"
        if self.transport:
            text += f", transport: {self.transport}"
        return text


@dataclass
class Budget:
    """Optional hard limits on a query or session."""

    max_calls: Optional[int] = None
    max_total_tokens: Optional[int] = None


class UsageMeter:
    """Accumulates usage; optionally enforces a budget.

    A meter can be the *session* root or a per-query *child* created
    with :meth:`child`: children accumulate their own totals for exact
    per-query attribution and forward every recording to the root, so
    the session sees the sum of its queries without snapshot
    differencing (which misattributes under concurrent queries).  The
    budget is enforced at the root — children never carry one — so a
    session budget of N calls admits exactly N across all concurrent
    queries.  Wall-clock is the one counter a child may keep to itself
    (``forward_wall=False``): overlapped queries' critical paths must
    not be summed into the session clock; the serving layer commits one
    batch makespan instead.
    """

    def __init__(self, price_model: PriceModel = PriceModel(), budget: Optional[Budget] = None):
        self._price_model = price_model
        self._budget = budget
        self._parent: Optional["UsageMeter"] = None
        self._forward_wall = True
        self._observer = None
        self._lock = threading.Lock()
        self._calls = 0
        self._prompt_tokens = 0
        self._completion_tokens = 0
        self._latency_ms = 0.0
        self._wall_ms = 0.0
        self._sharded_scans = 0
        self._shard_chains = 0
        self._pages_fetched = 0
        self._pages_skipped = 0
        self._result_cache_hits = 0
        self._fragment_hits = 0
        self._calls_saved = 0
        self._dedup_hits = 0

    def child(self, forward_wall: bool = True) -> "UsageMeter":
        """A per-query meter rolling its usage up into this one."""
        meter = UsageMeter(self._price_model, budget=None)
        meter._parent = self
        meter._forward_wall = forward_wall
        return meter

    def set_observer(self, observer) -> None:
        """Attach a metrics sink (the observability bridge).

        The observer fires at the *root* meter only — child recordings
        forward up and are observed exactly once when they land here —
        and outside the meter lock, so sinks may take their own locks.
        It must tolerate concurrent calls (dispatcher workers record in
        parallel).
        """
        self._observer = observer

    def check_budget(self) -> None:
        """Raise if the next call would exceed the budget."""
        if self._parent is not None:
            self._parent.check_budget()
            return
        with self._lock:
            self._check_budget_locked()

    def _check_budget_locked(self) -> None:
        if self._budget is None:
            return
        calls = self._calls
        tokens = self._prompt_tokens + self._completion_tokens
        if self._budget.max_calls is not None and calls >= self._budget.max_calls:
            raise LLMBudgetExceeded(
                f"call budget of {self._budget.max_calls} exhausted",
                calls_used=calls,
                tokens_used=tokens,
            )
        if (
            self._budget.max_total_tokens is not None
            and tokens >= self._budget.max_total_tokens
        ):
            raise LLMBudgetExceeded(
                f"token budget of {self._budget.max_total_tokens} exhausted",
                calls_used=calls,
                tokens_used=tokens,
            )

    def acquire_call(self) -> None:
        """Atomically budget-check and reserve one call slot.

        Used by concurrent callers: the check and the call-count bump
        happen under one lock, so a call budget of N admits exactly N
        calls no matter how many are dispatched at once.  (A token
        budget can still be overshot by in-flight calls — token counts
        are unknown until a completion lands, as with a real API.)
        """
        if self._parent is not None:
            # The budget gate lives at the root: the parent checks and
            # reserves, then the child records its own attributed call.
            self._parent.acquire_call()
            with self._lock:
                self._calls += 1
            return
        with self._lock:
            self._check_budget_locked()
            self._calls += 1

    def record_completion(self, completion: Completion) -> None:
        """Account for a completion whose call was already acquired."""
        with self._lock:
            self._prompt_tokens += completion.prompt_tokens
            self._completion_tokens += completion.completion_tokens
            self._latency_ms += completion.latency_ms
        if self._parent is not None:
            self._parent.record_completion(completion)
        elif self._observer is not None:
            self._observer.on_completion(completion)

    def record(self, completion: Completion) -> None:
        """Account for one completion (call slot included)."""
        with self._lock:
            self._calls += 1
            self._prompt_tokens += completion.prompt_tokens
            self._completion_tokens += completion.completion_tokens
            self._latency_ms += completion.latency_ms
        if self._parent is not None:
            self._parent.record(completion)
        elif self._observer is not None:
            self._observer.on_completion(completion)

    def record_sharded_scan(self, chains: int) -> None:
        """Account one scan step fanned out as ``chains`` shard chains."""
        with self._lock:
            self._sharded_scans += 1
            self._shard_chains += chains
        if self._parent is not None:
            self._parent.record_sharded_scan(chains)

    def record_pages(self, fetched: int = 0, skipped: int = 0) -> None:
        """Account enumeration pages pulled / avoided by a row stream."""
        if fetched <= 0 and skipped <= 0:
            return
        with self._lock:
            self._pages_fetched += max(0, fetched)
            self._pages_skipped += max(0, skipped)
        if self._parent is not None:
            self._parent.record_pages(fetched=fetched, skipped=skipped)
        elif self._observer is not None:
            self._observer.on_pages(fetched, skipped)

    def record_result_cache_hit(self, calls_saved: int = 0) -> None:
        """Account one whole query served from the result cache."""
        with self._lock:
            self._result_cache_hits += 1
            self._calls_saved += max(0, calls_saved)
        if self._parent is not None:
            self._parent.record_result_cache_hit(calls_saved)

    def record_fragment_hits(self, count: int = 1, calls_saved: int = 0) -> None:
        """Account scans/lookup-keys served from materialized fragments."""
        with self._lock:
            self._fragment_hits += count
            self._calls_saved += max(0, calls_saved)
        if self._parent is not None:
            self._parent.record_fragment_hits(count, calls_saved=calls_saved)

    def record_dedup_hit(self) -> None:
        """Account one request that joined a foreign in-flight call."""
        with self._lock:
            self._dedup_hits += 1
        if self._parent is not None:
            self._parent.record_dedup_hit()
        elif self._observer is not None:
            self._observer.on_dedup()

    def add_wall_ms(self, ms: float) -> None:
        """Advance the critical-path clock (committed by the runtime)."""
        if ms <= 0:
            return
        with self._lock:
            self._wall_ms += ms
        if self._parent is not None and self._forward_wall:
            self._parent.add_wall_ms(ms)

    @property
    def calls(self) -> int:
        return self._calls

    @property
    def total_tokens(self) -> int:
        return self._prompt_tokens + self._completion_tokens

    @property
    def wall_ms(self) -> float:
        return self._wall_ms

    def snapshot(self) -> UsageSnapshot:
        with self._lock:
            return UsageSnapshot(
                calls=self._calls,
                prompt_tokens=self._prompt_tokens,
                completion_tokens=self._completion_tokens,
                latency_ms=self._latency_ms,
                cost_usd=self._price_model.cost(
                    self._prompt_tokens, self._completion_tokens
                ),
                wall_ms=self._wall_ms,
                sharded_scans=self._sharded_scans,
                shard_chains=self._shard_chains,
                pages_fetched=self._pages_fetched,
                pages_skipped=self._pages_skipped,
                result_cache_hits=self._result_cache_hits,
                fragment_hits=self._fragment_hits,
                calls_saved=self._calls_saved,
                dedup_hits=self._dedup_hits,
            )

    def reset(self) -> None:
        with self._lock:
            self._calls = 0
            self._prompt_tokens = 0
            self._completion_tokens = 0
            self._latency_ms = 0.0
            self._wall_ms = 0.0
            self._sharded_scans = 0
            self._shard_chains = 0
            self._pages_fetched = 0
            self._pages_skipped = 0
            self._result_cache_hits = 0
            self._fragment_hits = 0
            self._calls_saved = 0
            self._dedup_hits = 0


class MeteredModel:
    """Wraps a model so every call is budget-checked and metered.

    ``track_wall`` keeps the critical-path clock in step with model time
    for purely sequential callers (the direct baseline, bare metered
    stacks).  The concurrent runtime disables it and commits wave
    makespans itself — otherwise overlapped calls would be double
    counted.
    """

    def __init__(self, inner, meter: UsageMeter, track_wall: bool = True):
        self._inner = inner
        self._meter = meter
        self._track_wall = track_wall

    def complete(self, prompt: str, options=None) -> Completion:
        from repro.llm.interface import CompletionOptions

        options = options or CompletionOptions()
        self._meter.acquire_call()
        completion = self._inner.complete(prompt, options)
        self._meter.record_completion(completion)
        if self._track_wall:
            self._meter.add_wall_ms(completion.latency_ms)
        return completion
