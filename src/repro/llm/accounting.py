"""Usage metering: calls, tokens, simulated latency and dollar cost.

Engines meter every completion through a :class:`UsageMeter`; query
results expose an immutable :class:`UsageSnapshot`, and the evaluation
harness differences snapshots to attribute cost to individual queries.
A :class:`Budget` can cap calls/tokens, raising
:class:`~repro.errors.LLMBudgetExceeded` mid-query — the engine surfaces
partial results with a warning flag, mimicking a spend limit on a real
API account.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import LLMBudgetExceeded
from repro.llm.interface import Completion


@dataclass(frozen=True)
class PriceModel:
    """Dollar prices per 1000 tokens (defaults shaped like 2024 APIs)."""

    usd_per_1k_prompt_tokens: float = 0.01
    usd_per_1k_completion_tokens: float = 0.03

    def cost(self, prompt_tokens: int, completion_tokens: int) -> float:
        return (
            prompt_tokens * self.usd_per_1k_prompt_tokens
            + completion_tokens * self.usd_per_1k_completion_tokens
        ) / 1000.0


@dataclass(frozen=True)
class UsageSnapshot:
    """Immutable point-in-time usage totals."""

    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    latency_ms: float = 0.0
    cost_usd: float = 0.0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def minus(self, earlier: "UsageSnapshot") -> "UsageSnapshot":
        """Usage accrued since ``earlier``."""
        return UsageSnapshot(
            calls=self.calls - earlier.calls,
            prompt_tokens=self.prompt_tokens - earlier.prompt_tokens,
            completion_tokens=self.completion_tokens - earlier.completion_tokens,
            latency_ms=self.latency_ms - earlier.latency_ms,
            cost_usd=self.cost_usd - earlier.cost_usd,
        )

    def plus(self, other: "UsageSnapshot") -> "UsageSnapshot":
        return UsageSnapshot(
            calls=self.calls + other.calls,
            prompt_tokens=self.prompt_tokens + other.prompt_tokens,
            completion_tokens=self.completion_tokens + other.completion_tokens,
            latency_ms=self.latency_ms + other.latency_ms,
            cost_usd=self.cost_usd + other.cost_usd,
        )

    def render(self) -> str:
        return (
            f"{self.calls} calls, {self.prompt_tokens}+{self.completion_tokens} "
            f"tokens, {self.latency_ms:.0f} ms, ${self.cost_usd:.4f}"
        )


@dataclass
class Budget:
    """Optional hard limits on a query or session."""

    max_calls: Optional[int] = None
    max_total_tokens: Optional[int] = None


class UsageMeter:
    """Accumulates usage; optionally enforces a budget."""

    def __init__(self, price_model: PriceModel = PriceModel(), budget: Optional[Budget] = None):
        self._price_model = price_model
        self._budget = budget
        self._calls = 0
        self._prompt_tokens = 0
        self._completion_tokens = 0
        self._latency_ms = 0.0

    def check_budget(self) -> None:
        """Raise if the next call would exceed the budget."""
        if self._budget is None:
            return
        if self._budget.max_calls is not None and self._calls >= self._budget.max_calls:
            raise LLMBudgetExceeded(
                f"call budget of {self._budget.max_calls} exhausted",
                calls_used=self._calls,
                tokens_used=self.total_tokens,
            )
        if (
            self._budget.max_total_tokens is not None
            and self.total_tokens >= self._budget.max_total_tokens
        ):
            raise LLMBudgetExceeded(
                f"token budget of {self._budget.max_total_tokens} exhausted",
                calls_used=self._calls,
                tokens_used=self.total_tokens,
            )

    def record(self, completion: Completion) -> None:
        """Account for one completion."""
        self._calls += 1
        self._prompt_tokens += completion.prompt_tokens
        self._completion_tokens += completion.completion_tokens
        self._latency_ms += completion.latency_ms

    @property
    def calls(self) -> int:
        return self._calls

    @property
    def total_tokens(self) -> int:
        return self._prompt_tokens + self._completion_tokens

    def snapshot(self) -> UsageSnapshot:
        return UsageSnapshot(
            calls=self._calls,
            prompt_tokens=self._prompt_tokens,
            completion_tokens=self._completion_tokens,
            latency_ms=self._latency_ms,
            cost_usd=self._price_model.cost(
                self._prompt_tokens, self._completion_tokens
            ),
        )

    def reset(self) -> None:
        self._calls = 0
        self._prompt_tokens = 0
        self._completion_tokens = 0
        self._latency_ms = 0.0


class MeteredModel:
    """Wraps a model so every call is budget-checked and metered."""

    def __init__(self, inner, meter: UsageMeter):
        self._inner = inner
        self._meter = meter

    def complete(self, prompt: str, options=None) -> Completion:
        from repro.llm.interface import CompletionOptions

        options = options or CompletionOptions()
        self._meter.check_budget()
        completion = self._inner.complete(prompt, options)
        self._meter.record(completion)
        return completion
