"""The simulated language model.

``SimulatedLLM`` answers the four prompt protocols (enumerate, lookup,
judge, direct_sql) from an explicit :class:`~repro.llm.world.World`
through the error model in :mod:`repro.llm.noise`.  Crucially, all
information flows as *text*: the model re-parses predicates that the
engine rendered with the SQL printer, renders data rows as cell lines,
and cuts its output when the token budget runs out — so the engine above
the interface exercises exactly the code paths it would with a networked
model.

Belief model
------------

The model's belief about cell ``(table, key, column)`` is derived
deterministically from the seed:

* with probability ``knowledge_gap_rate`` the belief is a confabulated
  value (stable across samples and prompts — voting cannot fix it);
* otherwise, a *sampling error* may corrupt the emission: at temperature
  0 the error is systematic per fact; at temperature > 0 it is i.i.d.
  per ``sample_index`` (voting averages it away);
* whole rows are forgotten with ``row_omission_rate`` and fabricated
  rows appear during enumeration with ``hallucinated_row_rate``.

Primary-key cells are always emitted faithfully for rows the model
knows; identity errors are modeled by omission/hallucination instead, so
that row-level metrics remain well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import LLMProtocolError
from repro.llm import noise as noise_mod
from repro.llm.interface import Completion, CompletionOptions
from repro.llm.noise import NoiseConfig
from repro.llm.tokenizer import count_tokens, truncate_to_tokens
from repro.llm.world import World
from repro.prompts import grammar
from repro.relational.catalog import Catalog
from repro.relational.executor import ReferenceExecutor
from repro.relational.expressions import Evaluator, RowScope, is_true
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType, Value
from repro.sql import ast
from repro.sql.parser import parse, parse_expression


@dataclass(frozen=True)
class LatencyModel:
    """Synthetic latency: fixed overhead plus per-token streaming cost."""

    base_ms: float = 180.0
    ms_per_token: float = 1.8

    def latency(self, prompt_tokens: int, completion_tokens: int) -> float:
        return self.base_ms + self.ms_per_token * (prompt_tokens + completion_tokens)


class SimulatedLLM:
    """A deterministic, seedable model over an explicit world."""

    def __init__(
        self,
        world: World,
        noise: NoiseConfig = NoiseConfig(),
        seed: int = 0,
        latency_model: LatencyModel = LatencyModel(),
        model_name: str = "",
    ):
        self.world = world
        self.noise = noise
        self.seed = seed
        self.latency_model = latency_model
        # Model identity keys caches (prompt cache, storage tier):
        # different worlds/seeds/noise give different answers, so the
        # default name must distinguish them or a shared cache would
        # serve one configuration's rows as another's.
        self.model_name = model_name or (
            f"simulated-llm/{world.name}@seed{seed}/{noise!r}"
        )

    # ------------------------------------------------------------------
    # LanguageModel interface
    # ------------------------------------------------------------------

    def complete(
        self, prompt: str, options: CompletionOptions = CompletionOptions()
    ) -> Completion:
        prompt_tokens = count_tokens(prompt)
        if noise_mod.should_refuse(
            self.noise.refusal_rate, self.seed, "refusal", prompt, options.sample_index
        ):
            text = noise_mod.REFUSAL_TEXT
        else:
            try:
                fields = grammar.parse_prompt(prompt)
                task = fields.task
                if task == grammar.TASK_ENUMERATE:
                    text = self._answer_enumerate(fields, options)
                elif task == grammar.TASK_LOOKUP:
                    text = self._answer_lookup(fields, options)
                elif task == grammar.TASK_JUDGE:
                    text = self._answer_judge(fields, options)
                elif task == grammar.TASK_DIRECT:
                    text = self._answer_direct(fields, options)
                else:
                    text = f"I do not understand the task {task!r}."
            except LLMProtocolError as exc:
                # A real model would reply with *something*; surfacing the
                # problem as text keeps the channel honest.
                text = f"I could not follow the request: {exc}"
        full_tokens = count_tokens(text)
        truncated = full_tokens > options.max_tokens
        if truncated:
            text = truncate_to_tokens(text, options.max_tokens)
        completion_tokens = min(full_tokens, options.max_tokens)
        return Completion(
            text=text,
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
            truncated=truncated,
            latency_ms=self.latency_model.latency(prompt_tokens, completion_tokens),
            model_name=self.model_name,
        )

    def complete_many(
        self, requests: Sequence[Tuple[str, CompletionOptions]]
    ) -> List[Completion]:
        """Native batch interface.

        Each request is answered exactly as :meth:`complete` would —
        beliefs are addressed by ``(seed, prompt, sample_index)``, so
        batching can never change an answer or its accounting.  A
        networked backend would amortize per-request overhead here; the
        simulated latency model intentionally does not, so batch and
        sequential execution stay cost-identical for comparisons.
        """
        return [self.complete(prompt, options) for prompt, options in requests]

    # ------------------------------------------------------------------
    # Beliefs
    # ------------------------------------------------------------------

    def _knows_row(self, table: str, key: Tuple[Value, ...]) -> bool:
        return (
            noise_mod.uniform01(self.seed, "omit", table, *key)
            >= self.noise.row_omission_rate
        )

    def _believed_value(
        self,
        table: str,
        key: Tuple[Value, ...],
        column: str,
        options: CompletionOptions,
        *,
        is_key: bool,
        rate_multiplier: float = 1.0,
        mode: str = "",
    ) -> Value:
        true_value = self.world.fact(table, key, column)
        if is_key:
            return true_value
        domain = self.world.column_domain(table, column)
        gap_rate = min(1.0, self.noise.knowledge_gap_rate)
        if noise_mod.uniform01(self.seed, "gap", table, *key, column) < gap_rate:
            return noise_mod.confabulate(
                true_value,
                domain,
                self.noise.numeric_jitter,
                self.seed,
                "gapval",
                table,
                *key,
                column,
            )
        error_rate = min(1.0, self.noise.sampling_error_rate * rate_multiplier)
        if options.temperature <= 0.0:
            address = (self.seed, "syserr", mode, table, *key, column)
            value_address = (self.seed, "sysval", mode, table, *key, column)
        else:
            address = (
                self.seed, "samperr", mode, table, *key, column, options.sample_index,
            )
            value_address = (
                self.seed, "sampval", mode, table, *key, column, options.sample_index,
            )
        if noise_mod.uniform01(*address) < error_rate:
            return noise_mod.confabulate(
                true_value, domain, self.noise.numeric_jitter, *value_address
            )
        return true_value

    def _believed_row(
        self,
        table: str,
        key: Tuple[Value, ...],
        options: CompletionOptions,
        *,
        rate_multiplier: float = 1.0,
        mode: str = "",
    ) -> Dict[str, Value]:
        schema = self.world.schema(table)
        keys = {name.lower() for name in schema.primary_key}
        return {
            column.name: self._believed_value(
                table,
                key,
                column.name,
                options,
                is_key=column.name.lower() in keys,
                rate_multiplier=rate_multiplier,
                mode=mode,
            )
            for column in schema.columns
        }

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def _answer_enumerate(
        self, fields: grammar.PromptFields, options: CompletionOptions
    ) -> str:
        table_name = self._table_from_signature(fields.require(grammar.FIELD_TABLE))
        schema = self.world.schema(table_name)
        columns = grammar.parse_column_list(fields.require(grammar.FIELD_COLUMNS))
        for column in columns:
            if not schema.has_column(column):
                raise LLMProtocolError(
                    f"table {table_name!r} has no column {column!r}"
                )
        condition = self._parse_condition(fields.optional(grammar.FIELD_CONDITION))
        order = self._parse_order(fields.optional(grammar.FIELD_ORDER), schema)
        after_index = fields.int_field(grammar.FIELD_AFTER_INDEX, 0)
        max_rows = fields.int_field(grammar.FIELD_MAX_ROWS, 20)

        all_rows = self._enumerate_believed_rows(
            table_name, schema, condition, order, options
        )
        page = all_rows[after_index : after_index + max_rows]
        lines: List[str] = []
        for offset, row in enumerate(page):
            line = grammar.render_row([row[name] for name in columns])
            line = noise_mod.apply_format_noise(
                line,
                self.noise.format_noise_rate,
                self.seed,
                "chat-enum",
                table_name,
                after_index + offset,
                options.sample_index,
            )
            lines.append(line)
        sentinel = (
            grammar.MORE_SENTINEL
            if after_index + max_rows < len(all_rows)
            else grammar.DONE_SENTINEL
        )
        lines.append(sentinel)
        return "\n".join(lines)

    def _enumerate_believed_rows(
        self,
        table_name: str,
        schema: TableSchema,
        condition: Optional[ast.Expr],
        order: Optional[Tuple[str, bool]],
        options: CompletionOptions,
    ) -> List[Dict[str, Value]]:
        """The model's full (believed) answer list for an enumeration.

        Deterministic given (seed, table, condition-independent beliefs,
        sample_index at temperature > 0), so pagination is consistent
        across pages of the same scan.
        """
        evaluator = Evaluator()
        believed: List[Tuple[Tuple, Dict[str, Value]]] = []
        table = self.world.table(table_name)
        for row in table.rows:
            key = table.key_of(row)
            if not self._knows_row(table_name, key):
                continue
            beliefs = self._believed_row(table_name, key, options, mode="enum")
            if condition is not None:
                scope = RowScope({table_name: beliefs})
                try:
                    passes = is_true(evaluator.evaluate(condition, scope))
                except Exception:
                    passes = False
                if not passes:
                    continue
            believed.append((_order_key(key), beliefs))

        # Hallucinated rows: expected hallucinated_row_rate per true row.
        slots = len(table)
        for slot in range(slots):
            if (
                noise_mod.uniform01(self.seed, "halluc?", table_name, slot)
                >= self.noise.hallucinated_row_rate
            ):
                continue
            fabricated = self._fabricate_row(table_name, schema, slot)
            if condition is not None:
                scope = RowScope({table_name: fabricated})
                try:
                    if not is_true(evaluator.evaluate(condition, scope)):
                        continue
                except Exception:
                    continue
            key_values = tuple(
                fabricated[name] for name in schema.primary_key
            )
            believed.append((_order_key(key_values), fabricated))

        believed.sort(key=lambda item: item[0])
        rows = [row for _, row in believed]
        if order is not None:
            column, descending = order
            rows.sort(
                key=lambda row: _value_rank(row.get(column)),
                reverse=descending,
            )
        return rows

    def _fabricate_row(
        self, table_name: str, schema: TableSchema, slot: int
    ) -> Dict[str, Value]:
        """A plausible fabricated row (hallucination)."""
        keys = {name.lower() for name in schema.primary_key}
        fabricated: Dict[str, Value] = {}
        for column in schema.columns:
            domain = self.world.column_domain(table_name, column.name)
            if column.name.lower() in keys:
                if column.dtype is DataType.TEXT:
                    fabricated[column.name] = noise_mod.fabricate_text(
                        table_name, self.seed, table_name, slot, column.name
                    )
                else:
                    fabricated[column.name] = 900000 + noise_mod.pick_index(
                        90000, self.seed, table_name, slot, column.name
                    )
                continue
            if domain:
                fabricated[column.name] = domain[
                    noise_mod.pick_index(
                        len(domain), self.seed, "hallucval", table_name, slot, column.name
                    )
                ]
            else:
                fabricated[column.name] = None
        return fabricated

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _answer_lookup(
        self, fields: grammar.PromptFields, options: CompletionOptions
    ) -> str:
        table_name = self._table_from_signature(fields.require(grammar.FIELD_TABLE))
        schema = self.world.schema(table_name)
        key_columns = grammar.parse_column_list(
            fields.require(grammar.FIELD_KEY_COLUMNS)
        )
        attributes = grammar.parse_column_list(
            fields.require(grammar.FIELD_ATTRIBUTES)
        )
        for column in key_columns + attributes:
            if not schema.has_column(column):
                raise LLMProtocolError(
                    f"table {table_name!r} has no column {column!r}"
                )
        key_dtypes = [schema.column(name).dtype for name in key_columns]
        entities = fields.section(grammar.SECTION_ENTITIES)
        if not entities:
            raise LLMProtocolError("lookup prompt has no ENTITIES section")

        key_index = self._lookup_index(table_name, key_columns)
        lines: List[str] = []
        for number, entity in enumerate(entities, start=1):
            try:
                key_values = tuple(grammar.parse_row(entity, key_dtypes))
            except LLMProtocolError:
                lines.append(f"{number}. {grammar.UNKNOWN_TEXT}")
                continue
            primary_key = key_index.get(_normalize_key(key_values))
            if primary_key is None or not self._knows_row(table_name, primary_key):
                lines.append(f"{number}. {grammar.UNKNOWN_TEXT}")
                continue
            beliefs = self._believed_row(table_name, primary_key, options, mode="lookup")
            rendered = grammar.render_row([beliefs[name] for name in attributes])
            line = noise_mod.apply_format_noise(
                f"{number}. {rendered}",
                self.noise.format_noise_rate,
                self.seed,
                "chat-lookup",
                table_name,
                entity,
                options.sample_index,
            )
            lines.append(line)
        return "\n".join(lines)

    def _lookup_index(
        self, table_name: str, key_columns: Sequence[str]
    ) -> Dict[Tuple, Tuple[Value, ...]]:
        """Map normalized ``key_columns`` tuples to primary keys.

        Lookups usually address rows by primary key, but the engine may
        probe any (unique enough) column combination; the last matching
        row wins, which mirrors a model answering for the most salient
        entity of that name.
        """
        table = self.world.table(table_name)
        indices = [table.schema.column_index(name) for name in key_columns]
        mapping: Dict[Tuple, Tuple[Value, ...]] = {}
        for row in table.rows:
            probe = tuple(row[i] for i in indices)
            mapping[_normalize_key(probe)] = table.key_of(row)
        return mapping

    # ------------------------------------------------------------------
    # Judge
    # ------------------------------------------------------------------

    def _answer_judge(
        self, fields: grammar.PromptFields, options: CompletionOptions
    ) -> str:
        table_name = self._table_from_signature(fields.require(grammar.FIELD_TABLE))
        schema = self.world.schema(table_name)
        key_columns = grammar.parse_column_list(
            fields.require(grammar.FIELD_KEY_COLUMNS)
        )
        condition = self._parse_condition(fields.require(grammar.FIELD_CONDITION))
        if condition is None:
            raise LLMProtocolError("judge prompt requires a CONDITION")
        key_dtypes = [schema.column(name).dtype for name in key_columns]
        entities = fields.section(grammar.SECTION_ENTITIES)
        if not entities:
            raise LLMProtocolError("judge prompt has no ENTITIES section")

        key_index = self._lookup_index(table_name, key_columns)
        evaluator = Evaluator()
        lines: List[str] = []
        for number, entity in enumerate(entities, start=1):
            try:
                key_values = tuple(grammar.parse_row(entity, key_dtypes))
            except LLMProtocolError:
                lines.append(f"{number}. {grammar.UNKNOWN_TEXT}")
                continue
            primary_key = key_index.get(_normalize_key(key_values))
            if primary_key is None or not self._knows_row(table_name, primary_key):
                lines.append(f"{number}. {grammar.UNKNOWN_TEXT}")
                continue
            beliefs = self._believed_row(table_name, primary_key, options, mode="judge")
            scope = RowScope({table_name: beliefs})
            try:
                verdict = is_true(evaluator.evaluate(condition, scope))
            except Exception:
                lines.append(f"{number}. {grammar.UNKNOWN_TEXT}")
                continue
            lines.append(f"{number}. {'YES' if verdict else 'NO'}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Direct SQL
    # ------------------------------------------------------------------

    def _answer_direct(
        self, fields: grammar.PromptFields, options: CompletionOptions
    ) -> str:
        sql = fields.require(grammar.FIELD_SQL)
        try:
            statement = parse(sql)
        except Exception as exc:
            return f"I could not parse that SQL: {exc}"

        table_names = _referenced_tables(statement)
        complexity = _query_complexity(statement)
        multiplier = 1.0 + self.noise.direct_complexity_penalty * complexity

        catalog = Catalog()
        for name in table_names:
            if not self.world.has_table(name):
                return f"I do not know a table named {name!r}."
            catalog.register_table(
                self._noisy_instance(name, options, multiplier)
            )
        try:
            result = ReferenceExecutor(catalog).execute(statement)
        except Exception as exc:
            return f"I could not execute that query: {exc}"

        uses_aggregates = _statement_uses_aggregates(statement)
        lines = ["HEADER: " + grammar.CELL_SEPARATOR.join(result.schema.column_names)]
        agg_rate = min(
            1.0, self.noise.aggregate_error_rate * multiplier
        ) if uses_aggregates else 0.0
        for row_number, row in enumerate(result.rows):
            emitted: List[Value] = []
            for cell_number, value in enumerate(row):
                if (
                    agg_rate > 0.0
                    and isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and noise_mod.uniform01(
                        self.seed, "aggerr", sql, row_number, cell_number,
                        options.sample_index if options.temperature > 0 else -1,
                    )
                    < agg_rate
                ):
                    emitted.append(
                        noise_mod.confabulate(
                            value,
                            [],
                            self.noise.numeric_jitter,
                            self.seed,
                            "aggval",
                            sql,
                            row_number,
                            cell_number,
                            options.sample_index if options.temperature > 0 else -1,
                        )
                    )
                else:
                    emitted.append(value)
            lines.append(grammar.render_row(emitted))
        lines.append(grammar.END_SENTINEL)
        return "\n".join(lines)

    def _noisy_instance(
        self, table_name: str, options: CompletionOptions, multiplier: float
    ) -> Table:
        """The model's believed instance of a whole table (direct mode)."""
        table = self.world.table(table_name)
        schema = table.schema
        rows: List[Tuple[Value, ...]] = []
        for row in table.rows:
            key = table.key_of(row)
            if not self._knows_row(table_name, key):
                continue
            beliefs = self._believed_row(
                table_name, key, options, rate_multiplier=multiplier, mode="direct"
            )
            rows.append(tuple(beliefs[column.name] for column in schema.columns))
        for slot in range(len(table)):
            if (
                noise_mod.uniform01(self.seed, "halluc?", table_name, slot)
                < self.noise.hallucinated_row_rate
            ):
                fabricated = self._fabricate_row(table_name, schema, slot)
                rows.append(
                    tuple(fabricated[column.name] for column in schema.columns)
                )
        instance = Table(schema)
        for row in rows:
            try:
                instance.insert(row, coerce=True)
            except Exception:
                continue
        return instance

    # ------------------------------------------------------------------
    # Prompt-side parsing helpers
    # ------------------------------------------------------------------

    def _table_from_signature(self, signature: str) -> str:
        """Extract the table name from a ``name(col TYPE, ...)`` header."""
        name = signature.split("(", 1)[0].strip()
        if not name:
            raise LLMProtocolError(f"cannot read table name from {signature!r}")
        if not self.world.has_table(name):
            raise LLMProtocolError(f"I do not know a table named {name!r}")
        return name

    def _parse_condition(self, raw: Optional[str]) -> Optional[ast.Expr]:
        if raw is None or not raw.strip() or raw.strip().upper() == "NONE":
            return None
        try:
            return parse_expression(raw)
        except Exception as exc:
            raise LLMProtocolError(f"cannot parse condition {raw!r}: {exc}") from exc

    def _parse_order(
        self, raw: Optional[str], schema: TableSchema
    ) -> Optional[Tuple[str, bool]]:
        if raw is None or not raw.strip() or raw.strip().upper() == "NONE":
            return None
        pieces = raw.split()
        column = pieces[0]
        if not schema.has_column(column):
            raise LLMProtocolError(f"cannot order by unknown column {column!r}")
        descending = len(pieces) > 1 and pieces[1].upper() == "DESC"
        return schema.column(column).name, descending


# ---------------------------------------------------------------------------
# Module helpers
# ---------------------------------------------------------------------------


def _normalize_key(values: Tuple[Value, ...]) -> Tuple:
    """Case-insensitive for text, numeric-normalized for numbers."""
    normalized = []
    for value in values:
        if isinstance(value, str):
            normalized.append(("t", value.strip().lower()))
        elif isinstance(value, bool):
            normalized.append(("b", value))
        elif isinstance(value, (int, float)):
            normalized.append(("n", float(value)))
        else:
            normalized.append(("0", None))
    return tuple(normalized)


def _order_key(values: Tuple[Value, ...]) -> Tuple:
    return tuple(_value_rank(value) for value in values)


def _value_rank(value: Value):
    if value is None:
        return (0, 0.0, "")
    if isinstance(value, bool):
        return (3, float(value), "")
    if isinstance(value, (int, float)):
        return (1, float(value), "")
    return (2, 0.0, str(value))


def _referenced_tables(statement: ast.Statement) -> List[str]:
    names: List[str] = []

    def visit_table_ref(ref: Optional[ast.TableRef]) -> None:
        if ref is None:
            return
        if isinstance(ref, ast.NamedTable):
            if ref.name.lower() not in {n.lower() for n in names}:
                names.append(ref.name)
        elif isinstance(ref, ast.SubqueryTable):
            visit_statement(ref.query)
        elif isinstance(ref, ast.Join):
            visit_table_ref(ref.left)
            visit_table_ref(ref.right)

    def visit_expr(expr: Optional[ast.Expr]) -> None:
        if expr is None:
            return
        for node in ast.walk_expression(expr):
            if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
                visit_statement(node.query)

    def visit_statement(node: ast.Statement) -> None:
        if isinstance(node, ast.SetOperation):
            visit_statement(node.left)
            visit_statement(node.right)
            return
        visit_table_ref(node.from_clause)
        visit_expr(node.where)
        visit_expr(node.having)
        for item in node.select:
            visit_expr(item.expr)
        for expr in node.group_by:
            visit_expr(expr)
        for order in node.order_by:
            visit_expr(order.expr)

    visit_statement(statement)
    return names


def _query_complexity(statement: ast.Statement) -> int:
    """Operator count used for the direct-mode complexity penalty."""
    if isinstance(statement, ast.SetOperation):
        left = statement.left
        complexity = 1 + _query_complexity(statement.right)
        complexity += _query_complexity(left)
        return complexity

    complexity = 0

    def count_joins(ref: Optional[ast.TableRef]) -> int:
        if ref is None or isinstance(ref, ast.NamedTable):
            return 0
        if isinstance(ref, ast.SubqueryTable):
            return 1 + _query_complexity(ref.query)
        if isinstance(ref, ast.Join):
            return 1 + count_joins(ref.left) + count_joins(ref.right)
        return 0

    complexity += count_joins(statement.from_clause)
    if statement.where is not None:
        complexity += _conjunct_count(statement.where)
        for node in ast.walk_expression(statement.where):
            if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
                complexity += 1 + _query_complexity(node.query)
    if statement.group_by:
        complexity += 1
    if statement.having is not None:
        complexity += 1
    if statement.order_by:
        complexity += 1
    for item in statement.select:
        for node in ast.walk_expression(item.expr):
            if ast.is_aggregate_call(node):
                complexity += 1
            if isinstance(node, ast.ScalarSubquery):
                complexity += 1 + _query_complexity(node.query)
    return complexity


def _conjunct_count(expr: ast.Expr) -> int:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _conjunct_count(expr.left) + _conjunct_count(expr.right)
    return 1


def _statement_uses_aggregates(statement: ast.Statement) -> bool:
    if isinstance(statement, ast.SetOperation):
        return _statement_uses_aggregates(statement.left) or _statement_uses_aggregates(
            statement.right
        )
    exprs = [item.expr for item in statement.select]
    if statement.having is not None:
        exprs.append(statement.having)
    return any(ast.contains_aggregate(expr) for expr in exprs) or bool(
        statement.group_by
    )
