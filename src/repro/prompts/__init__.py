"""Prompt layer: builders and parsers for the engine<->model protocols.

Four protocols cover everything the engine asks of a model:

* **enumerate** — list rows of a virtual table (optionally filtered,
  projected, ordered) with cursor-based pagination;
* **lookup** — batched key -> attribute retrieval;
* **judge** — batched boolean checks of a predicate against entities;
* **direct_sql** — the baseline: hand over an entire SQL query.

Builders render prompts; parsers decode completions defensively (chatter
stripping, truncation detection, type coercion).  The shared textual
conventions live in :mod:`repro.prompts.grammar` so the simulated model
and the engine can never drift apart silently.
"""

from repro.prompts.grammar import (
    CELL_SEPARATOR,
    DONE_SENTINEL,
    MORE_SENTINEL,
    UNKNOWN_TEXT,
    PromptFields,
    parse_prompt,
    render_cell,
    render_row,
    parse_cell,
)
from repro.prompts.enumerate import EnumerateRequest, build_enumerate_prompt
from repro.prompts.lookup import LookupRequest, build_lookup_prompt
from repro.prompts.predicate import JudgeRequest, build_judge_prompt
from repro.prompts.direct import DirectRequest, build_direct_prompt
from repro.prompts.parsing import (
    EnumeratePage,
    parse_enumerate_completion,
    parse_lookup_completion,
    parse_judge_completion,
    parse_direct_completion,
)

__all__ = [
    "CELL_SEPARATOR",
    "DONE_SENTINEL",
    "MORE_SENTINEL",
    "UNKNOWN_TEXT",
    "PromptFields",
    "parse_prompt",
    "render_cell",
    "render_row",
    "parse_cell",
    "EnumerateRequest",
    "build_enumerate_prompt",
    "LookupRequest",
    "build_lookup_prompt",
    "JudgeRequest",
    "build_judge_prompt",
    "DirectRequest",
    "build_direct_prompt",
    "EnumeratePage",
    "parse_enumerate_completion",
    "parse_lookup_completion",
    "parse_judge_completion",
    "parse_direct_completion",
]
