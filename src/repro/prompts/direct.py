"""Whole-query prompts (the direct baseline).

The entire SQL query is handed to the model in one prompt together with
the schema signatures it mentions.  One completion carries the whole
answer: no pagination, no decomposition, no local compute — exactly the
regime the decomposed engine is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.prompts import grammar, templates
from repro.relational.schema import TableSchema


@dataclass(frozen=True)
class DirectRequest:
    """One whole-query request.

    Attributes:
        schemas: signatures of every table the query references.
        sql: the query text (canonical printer output).
    """

    schemas: Tuple[TableSchema, ...]
    sql: str


def build_direct_prompt(request: DirectRequest) -> str:
    """Render the whole-query prompt."""
    schema_text = "; ".join(
        schema.render_signature() for schema in request.schemas
    )
    headers = [
        (grammar.FIELD_TASK, grammar.TASK_DIRECT),
        (grammar.FIELD_SCHEMA, schema_text),
        (grammar.FIELD_SQL, request.sql),
    ]
    return templates.assemble_prompt(
        templates.DIRECT_PREAMBLE,
        headers,
        templates.DIRECT_INSTRUCTIONS,
        trailer="RESULT:",
    )
