"""Tuple-enumeration prompts (the LLMScan protocol).

One scan of a virtual table is a sequence of *pages*: each page prompt
carries the cursor ``AFTER_INDEX`` (rows already received) and asks for
at most ``MAX_ROWS`` more.  Predicates pushed into the scan are rendered
as SQL over bare column names; the model re-parses them with the same
grammar, so rendering must stay within the single-table expression
subset (the optimizer guarantees this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.prompts import grammar, templates
from repro.relational.schema import TableSchema


@dataclass(frozen=True)
class EnumerateRequest:
    """One page request of a virtual-table scan.

    Attributes:
        schema: schema of the virtual table.
        columns: columns to return, in order.
        condition_sql: optional predicate (SQL text over bare column
            names) the model should apply — the pushdown optimization.
        order: optional ``(column, descending)`` the model should sort
            by, enabling early termination for ORDER BY ... LIMIT plans.
        after_index: number of rows of this scan already received.
        max_rows: page size.
    """

    schema: TableSchema
    columns: Tuple[str, ...]
    condition_sql: Optional[str] = None
    order: Optional[Tuple[str, bool]] = None
    after_index: int = 0
    max_rows: int = 20


def build_enumerate_prompt(request: EnumerateRequest) -> str:
    """Render the page prompt."""
    headers = [
        (grammar.FIELD_TASK, grammar.TASK_ENUMERATE),
        (grammar.FIELD_TABLE, request.schema.render_signature()),
    ]
    if request.schema.description:
        headers.append(
            (grammar.FIELD_TABLE_DESCRIPTION, request.schema.description)
        )
    headers.append(
        (grammar.FIELD_COLUMNS, grammar.render_column_list(request.columns))
    )
    if request.condition_sql:
        headers.append((grammar.FIELD_CONDITION, request.condition_sql))
    if request.order is not None:
        column, descending = request.order
        headers.append(
            (grammar.FIELD_ORDER, f"{column} {'DESC' if descending else 'ASC'}")
        )
    headers.append((grammar.FIELD_AFTER_INDEX, str(request.after_index)))
    headers.append((grammar.FIELD_MAX_ROWS, str(request.max_rows)))
    return templates.assemble_prompt(
        templates.RETRIEVAL_PREAMBLE,
        headers,
        templates.ENUMERATE_INSTRUCTIONS,
        trailer="ROWS:",
    )
