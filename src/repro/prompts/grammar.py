"""Shared textual conventions of the prompt protocols.

A prompt is natural-language framing around a block of ``KEY: value``
header lines plus optional numbered sections.  A completion is plain
lines of data cells.  Everything both sides must agree on — separators,
sentinels, cell formatting — is defined here once.

Cell values round-trip exactly: ``parse_cell(render_cell(v), dtype) == v``
for every storage type (floats are rendered with ``repr``).  This
round-trip is property-tested; it is what makes the zero-noise
equivalence invariant achievable over a purely textual channel.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import LLMProtocolError
from repro.relational.types import DataType, Value, coerce_value

#: Separates cells within a row line.
CELL_SEPARATOR = " | "

#: Sentinel ending a complete enumeration page with no further rows.
DONE_SENTINEL = "DONE"

#: Sentinel ending a page when more rows exist.
MORE_SENTINEL = "MORE"

#: Sentinel ending a direct-SQL answer (absence implies truncation).
END_SENTINEL = "END"

#: The model's "I do not know" marker for lookups and judgements.
UNKNOWN_TEXT = "UNKNOWN"

#: SQL NULL rendered in a cell.
NULL_TEXT = "NULL"

#: Recognized TASK header values.
TASK_ENUMERATE = "enumerate"
TASK_LOOKUP = "lookup"
TASK_JUDGE = "judge"
TASK_DIRECT = "direct_sql"

#: Header field names.
FIELD_TASK = "TASK"
FIELD_TABLE = "TABLE"
FIELD_TABLE_DESCRIPTION = "TABLE_DESCRIPTION"
FIELD_COLUMNS = "COLUMNS"
FIELD_CONDITION = "CONDITION"
FIELD_ORDER = "ORDER"
FIELD_AFTER_INDEX = "AFTER_INDEX"
FIELD_MAX_ROWS = "MAX_ROWS"
FIELD_KEY_COLUMNS = "KEY_COLUMNS"
FIELD_ATTRIBUTES = "ATTRIBUTES"
FIELD_SQL = "SQL"
FIELD_SCHEMA = "SCHEMA"

#: Section names (numbered lists following a ``NAME:`` line).
SECTION_ENTITIES = "ENTITIES"

_HEADER_RE = re.compile(r"^([A-Z_]+):\s?(.*)$")
_NUMBERED_RE = re.compile(r"^(\d+)\.\s?(.*)$")


# ---------------------------------------------------------------------------
# Cell formatting
# ---------------------------------------------------------------------------


def render_cell(value: Value) -> str:
    """Render one value as cell text (exact round trip via parse_cell)."""
    if value is None:
        return NULL_TEXT
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def parse_cell(text: str, dtype: DataType) -> Value:
    """Decode cell text to a typed value.

    Raises :class:`LLMProtocolError` when the text cannot be interpreted
    as the expected type even with lenient coercion.
    """
    stripped = text.strip()
    if stripped == NULL_TEXT or stripped == UNKNOWN_TEXT:
        return None
    coerced = coerce_value(stripped, dtype)
    if coerced is None:
        raise LLMProtocolError(
            f"cannot interpret cell {text!r} as {dtype.value}"
        )
    return coerced


def render_row(values: Sequence[Value]) -> str:
    """Render a row of cells."""
    return CELL_SEPARATOR.join(render_cell(value) for value in values)


def split_row(line: str) -> List[str]:
    """Split a row line into raw cell texts."""
    return line.split("|")


def parse_row(line: str, dtypes: Sequence[DataType]) -> List[Value]:
    """Decode one row line against the expected column types."""
    cells = split_row(line)
    if len(cells) != len(dtypes):
        raise LLMProtocolError(
            f"expected {len(dtypes)} cells, got {len(cells)} in line {line!r}"
        )
    return [parse_cell(cell, dtype) for cell, dtype in zip(cells, dtypes)]


# ---------------------------------------------------------------------------
# Prompt structure
# ---------------------------------------------------------------------------


@dataclass
class PromptFields:
    """Decoded structured content of a prompt."""

    headers: Dict[str, str] = field(default_factory=dict)
    sections: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def task(self) -> str:
        task = self.headers.get(FIELD_TASK)
        if task is None:
            raise LLMProtocolError("prompt has no TASK header")
        return task

    def require(self, name: str) -> str:
        if name not in self.headers:
            raise LLMProtocolError(f"prompt is missing the {name} header")
        return self.headers[name]

    def optional(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name, default)

    def int_field(self, name: str, default: int) -> int:
        raw = self.headers.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise LLMProtocolError(f"{name} header is not an integer: {raw!r}") from exc

    def section(self, name: str) -> List[str]:
        return self.sections.get(name, [])


def render_header_line(name: str, value: str) -> str:
    return f"{name}: {value}"


def parse_prompt(prompt: str) -> PromptFields:
    """Extract header fields and numbered sections from prompt text.

    Free-form framing lines (instructions to the model) are ignored; only
    ``KEY: value`` lines and numbered section items are structured.  A
    section named ``X`` starts at a line ``X:`` and collects subsequent
    ``n. item`` lines (in numeric order as written).
    """
    fields = PromptFields()
    current_section: Optional[str] = None
    for raw_line in prompt.splitlines():
        line = raw_line.rstrip()
        if not line:
            continue
        numbered = _NUMBERED_RE.match(line)
        if numbered and current_section is not None:
            fields.sections.setdefault(current_section, []).append(numbered.group(2))
            continue
        header = _HEADER_RE.match(line)
        if header:
            name, value = header.group(1), header.group(2)
            if value == "" and name == name.upper():
                current_section = name
                fields.sections.setdefault(name, [])
            else:
                fields.headers[name] = value
                current_section = None
            continue
        # Free-form framing; ends any open section.
        if not _NUMBERED_RE.match(line):
            current_section = current_section  # framing does not close sections
    return fields


def parse_column_list(raw: str) -> List[str]:
    """Decode a comma-separated column list header."""
    columns = [piece.strip() for piece in raw.split(",") if piece.strip()]
    if not columns:
        raise LLMProtocolError(f"empty column list: {raw!r}")
    return columns


def render_column_list(names: Sequence[str]) -> str:
    return ", ".join(names)
