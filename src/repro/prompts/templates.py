"""Prompt framing text and assembly helpers.

A prompt is: a role preamble, structured ``KEY: value`` headers, optional
numbered sections, and output-format instructions.  The structured parts
are machine-parsed on the model side; the framing is for the model's
benefit (and, with a real API, does measurable work — so it is part of
the token cost here too).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.prompts import grammar

#: Role preamble shared by the retrieval protocols.
RETRIEVAL_PREAMBLE = (
    "You are a precise factual database. Answer strictly in the requested "
    "format with no commentary. Use NULL for missing values and UNKNOWN "
    "when you do not know."
)

#: Role preamble for the direct whole-query baseline.
DIRECT_PREAMBLE = (
    "You are a database engine. Execute the SQL query below against your "
    "world knowledge and return the result table."
)

ENUMERATE_INSTRUCTIONS = (
    "Respond with one row per line, cells separated by ' | ', in a stable "
    "canonical order. After the last row of this page output the single "
    f"word {grammar.MORE_SENTINEL} if further rows exist, otherwise "
    f"{grammar.DONE_SENTINEL}."
)

LOOKUP_INSTRUCTIONS = (
    "Respond with one line per entity, formatted '<index>. <value>"
    f"{grammar.CELL_SEPARATOR}<value>...' in the attribute order given. "
    f"Answer {grammar.UNKNOWN_TEXT} for entities you do not know."
)

JUDGE_INSTRUCTIONS = (
    "For each entity respond '<index>. YES' if the condition holds, "
    "'<index>. NO' if it does not, or "
    f"'<index>. {grammar.UNKNOWN_TEXT}' if you cannot tell."
)

DIRECT_INSTRUCTIONS = (
    "Respond with a line 'HEADER: <column names>' followed by one result "
    "row per line, cells separated by ' | '. Finish with the single word "
    f"{grammar.END_SENTINEL}."
)


def assemble_prompt(
    preamble: str,
    headers: Sequence[Tuple[str, str]],
    instructions: str,
    sections: Optional[Dict[str, Sequence[str]]] = None,
    trailer: str = "",
) -> str:
    """Assemble the canonical prompt layout."""
    lines: List[str] = [preamble, ""]
    for name, value in headers:
        lines.append(grammar.render_header_line(name, value))
    if sections:
        for name, items in sections.items():
            lines.append(f"{name}:")
            for number, item in enumerate(items, start=1):
                lines.append(f"{number}. {item}")
    lines.append("")
    lines.append(instructions)
    if trailer:
        lines.append(trailer)
    return "\n".join(lines)
