"""Batched boolean-judgement prompts (the LLMSemanticFilter protocol).

Instead of retrieving attributes and filtering locally, the engine can
ask the model to *judge* a predicate per entity.  This saves completion
tokens when attributes are wide but is exposed to the model's evaluation
errors — the trade-off is measured in the ablation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.prompts import grammar, templates
from repro.relational.schema import TableSchema
from repro.relational.types import Value


@dataclass(frozen=True)
class JudgeRequest:
    """One batched judgement.

    Attributes:
        schema: schema of the virtual table.
        key_columns: columns identifying an entity.
        condition_sql: predicate over bare column names to judge.
        entities: key tuples to judge.
    """

    schema: TableSchema
    key_columns: Tuple[str, ...]
    condition_sql: str
    entities: Tuple[Tuple[Value, ...], ...]


def build_judge_prompt(request: JudgeRequest) -> str:
    """Render the batched judgement prompt."""
    headers = [
        (grammar.FIELD_TASK, grammar.TASK_JUDGE),
        (grammar.FIELD_TABLE, request.schema.render_signature()),
        (
            grammar.FIELD_KEY_COLUMNS,
            grammar.render_column_list(request.key_columns),
        ),
        (grammar.FIELD_CONDITION, request.condition_sql),
    ]
    sections = {
        grammar.SECTION_ENTITIES: [
            grammar.render_row(entity) for entity in request.entities
        ]
    }
    return templates.assemble_prompt(
        templates.RETRIEVAL_PREAMBLE,
        headers,
        templates.JUDGE_INSTRUCTIONS,
        sections=sections,
        trailer="VERDICTS:",
    )
