"""Defensive parsers for model completions.

A model answer is adversarial input: it may carry chatter, be cut
mid-line by the output budget, misnumber items, or answer UNKNOWN.  The
parsers here never raise on malformed *lines*; they skip them and count
them, because a partially parsed page is still useful and the engine's
validators handle the rest.  They do raise
:class:`~repro.errors.LLMProtocolError` when a completion is unusable as
a whole (e.g. a refusal where rows were expected — the engine retries).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import LLMProtocolError
from repro.llm.noise import CHATTER_PREFIXES, CHATTER_SUFFIXES
from repro.prompts import grammar
from repro.relational.types import DataType, Value

_NUMBERED_RE = re.compile(r"^\s*(\d+)[.)]\s*(.*)$")
_BULLET_RE = re.compile(r"^\s*[-*•]\s+")


def strip_chatter(line: str) -> str:
    """Remove decorative chatter a model may wrap around an answer line."""
    text = line.strip()
    text = _BULLET_RE.sub("", text)
    changed = True
    while changed:
        changed = False
        for prefix in CHATTER_PREFIXES:
            if text.startswith(prefix):
                text = text[len(prefix) :]
                changed = True
        for suffix in CHATTER_SUFFIXES:
            if text.endswith(suffix):
                text = text[: -len(suffix)]
                changed = True
        stripped = text.strip()
        if stripped != text:
            text = stripped
            changed = True
    return text


def looks_like_refusal(text: str) -> bool:
    """Heuristic refusal detection on a whole completion."""
    head = text.strip().lower()
    return head.startswith("i'm sorry") or head.startswith("i am sorry") or (
        head.startswith("i could not follow")
    )


# ---------------------------------------------------------------------------
# Enumeration pages
# ---------------------------------------------------------------------------


@dataclass
class EnumeratePage:
    """Decoded content of one enumeration page.

    Attributes:
        rows: successfully parsed rows, typed per the request columns.
        has_more: the model signalled MORE rows exist.
        complete: a sentinel line was seen (False means the completion
            was cut by the output budget and the page must be re-fetched
            or continued from ``len(rows)``).
        malformed_lines: lines that could not be parsed as rows.
    """

    rows: List[List[Value]] = field(default_factory=list)
    has_more: bool = False
    complete: bool = False
    malformed_lines: int = 0


def parse_enumerate_completion(
    text: str, dtypes: Sequence[DataType]
) -> EnumeratePage:
    """Decode an enumeration page completion."""
    if looks_like_refusal(text):
        raise LLMProtocolError("model refused an enumeration request")
    page = EnumeratePage()
    for raw_line in text.splitlines():
        line = strip_chatter(raw_line)
        if not line:
            continue
        if line == grammar.DONE_SENTINEL:
            page.complete = True
            page.has_more = False
            break
        if line == grammar.MORE_SENTINEL:
            page.complete = True
            page.has_more = True
            break
        if line.upper().startswith("ROWS:"):
            continue
        try:
            page.rows.append(grammar.parse_row(line, dtypes))
        except LLMProtocolError:
            page.malformed_lines += 1
    return page


# ---------------------------------------------------------------------------
# Lookups
# ---------------------------------------------------------------------------


def parse_lookup_completion(
    text: str, entity_count: int, dtypes: Sequence[DataType]
) -> List[Optional[List[Value]]]:
    """Decode a batched lookup completion.

    Returns one slot per entity (1-based indices in the answer map to
    slots): a typed value list, or ``None`` when the model answered
    UNKNOWN, skipped the entity, or the line was unusable.
    """
    if looks_like_refusal(text):
        raise LLMProtocolError("model refused a lookup request")
    slots: List[Optional[List[Value]]] = [None] * entity_count
    for raw_line in text.splitlines():
        line = strip_chatter(raw_line)
        if not line or line.upper().startswith("ANSWERS:"):
            continue
        match = _NUMBERED_RE.match(line)
        if not match:
            continue
        index = int(match.group(1)) - 1
        if not 0 <= index < entity_count:
            continue
        body = match.group(2).strip()
        if body == grammar.UNKNOWN_TEXT:
            slots[index] = None
            continue
        try:
            slots[index] = grammar.parse_row(body, dtypes)
        except LLMProtocolError:
            slots[index] = None
    return slots


# ---------------------------------------------------------------------------
# Judgements
# ---------------------------------------------------------------------------


_VERDICT_WORDS: Dict[str, Optional[bool]] = {
    "YES": True,
    "TRUE": True,
    "NO": False,
    "FALSE": False,
    grammar.UNKNOWN_TEXT: None,
}


def parse_judge_completion(text: str, entity_count: int) -> List[Optional[bool]]:
    """Decode a batched judgement completion (None = unknown/missing)."""
    if looks_like_refusal(text):
        raise LLMProtocolError("model refused a judgement request")
    slots: List[Optional[bool]] = [None] * entity_count
    for raw_line in text.splitlines():
        line = strip_chatter(raw_line)
        if not line or line.upper().startswith("VERDICTS:"):
            continue
        match = _NUMBERED_RE.match(line)
        if not match:
            continue
        index = int(match.group(1)) - 1
        if not 0 <= index < entity_count:
            continue
        word = match.group(2).strip().upper().rstrip(".!")
        slots[index] = _VERDICT_WORDS.get(word, None)
    return slots


# ---------------------------------------------------------------------------
# Direct answers
# ---------------------------------------------------------------------------


@dataclass
class DirectAnswer:
    """Decoded whole-query answer.

    Attributes:
        header: column names the model claimed, if any.
        rows: typed rows (cells that fail coercion stay as text).
        complete: END sentinel seen (False = output-budget truncation).
        malformed_lines: undecodable lines.
    """

    header: List[str] = field(default_factory=list)
    rows: List[List[Value]] = field(default_factory=list)
    complete: bool = False
    malformed_lines: int = 0


def parse_direct_completion(
    text: str, dtypes: Sequence[DataType]
) -> DirectAnswer:
    """Decode a direct whole-query completion."""
    if looks_like_refusal(text):
        raise LLMProtocolError("model refused a direct query")
    answer = DirectAnswer()
    for raw_line in text.splitlines():
        line = strip_chatter(raw_line)
        if not line or line.upper().startswith("RESULT:"):
            continue
        if line == grammar.END_SENTINEL:
            answer.complete = True
            break
        if line.upper().startswith("HEADER:"):
            answer.header = [
                cell.strip() for cell in line.split(":", 1)[1].split("|")
            ]
            continue
        cells = grammar.split_row(line)
        if len(cells) != len(dtypes):
            answer.malformed_lines += 1
            continue
        row: List[Value] = []
        for cell, dtype in zip(cells, dtypes):
            try:
                row.append(grammar.parse_cell(cell, dtype))
            except LLMProtocolError:
                row.append(cell.strip())
        answer.rows.append(row)
    return answer
