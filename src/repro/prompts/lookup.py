"""Batched key -> attribute lookup prompts (the LLMLookup protocol).

Lookups are the workhorse of lookup-joins and point queries: given a
batch of entity keys, retrieve the requested attributes for each.  The
batch size trades per-call overhead against per-call error surface; the
engine default (16) is swept in the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.prompts import grammar, templates
from repro.relational.schema import TableSchema
from repro.relational.types import Value


@dataclass(frozen=True)
class LookupRequest:
    """One batched lookup.

    Attributes:
        schema: schema of the virtual table.
        key_columns: columns identifying an entity (usually the primary
            key; any sufficiently identifying combination works).
        attributes: columns to retrieve for each entity.
        entities: key tuples, one per entity, aligned with
            ``key_columns``.
    """

    schema: TableSchema
    key_columns: Tuple[str, ...]
    attributes: Tuple[str, ...]
    entities: Tuple[Tuple[Value, ...], ...]


def build_lookup_prompt(request: LookupRequest) -> str:
    """Render the batched lookup prompt."""
    headers = [
        (grammar.FIELD_TASK, grammar.TASK_LOOKUP),
        (grammar.FIELD_TABLE, request.schema.render_signature()),
    ]
    if request.schema.description:
        headers.append(
            (grammar.FIELD_TABLE_DESCRIPTION, request.schema.description)
        )
    headers.extend(
        [
            (
                grammar.FIELD_KEY_COLUMNS,
                grammar.render_column_list(request.key_columns),
            ),
            (
                grammar.FIELD_ATTRIBUTES,
                grammar.render_column_list(request.attributes),
            ),
        ]
    )
    sections = {
        grammar.SECTION_ENTITIES: [
            grammar.render_row(entity) for entity in request.entities
        ]
    }
    return templates.assemble_prompt(
        templates.RETRIEVAL_PREAMBLE,
        headers,
        templates.LOOKUP_INSTRUCTIONS,
        sections=sections,
        trailer="ANSWERS:",
    )
