"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the engine boundary.  Subsystems raise the
most specific subclass available; parsing errors carry source positions so
users can locate the offending SQL text.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SQLError(ReproError):
    """Base class for errors in the SQL frontend."""


class LexerError(SQLError):
    """Invalid character sequence encountered while tokenizing SQL.

    Attributes:
        position: 0-based character offset of the offending input.
        line: 1-based line number.
        column: 1-based column number.
    """

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SQLError):
    """SQL text does not conform to the supported grammar."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line:
            super().__init__(f"{message} (line {line}, column {column})")
        else:
            super().__init__(message)
        self.line = line
        self.column = column


class BindError(SQLError):
    """Semantic analysis failed: unknown table/column, ambiguous name,
    aggregate misuse, or type mismatch."""


class CatalogError(ReproError):
    """Catalog inconsistency: duplicate or missing table registration."""


class ConfigError(ReproError):
    """An :class:`~repro.config.EngineConfig` field has an invalid value."""


class SchemaError(ReproError):
    """Invalid schema definition or row that violates its schema."""


class ExecutionError(ReproError):
    """Runtime failure while executing a (classical or hybrid) plan."""


class PlanError(ReproError):
    """The planner could not produce a plan for a bound query."""


class LLMError(ReproError):
    """Base class for LLM-substrate failures."""


class LLMProtocolError(LLMError):
    """The model received a prompt it cannot interpret, or the engine
    received a completion it cannot parse even after recovery attempts."""


class TransportError(LLMError):
    """A model transport failed below the protocol level: the HTTP
    request errored, the response body was malformed, or the shared
    request pool was shut down while requests were queued."""


class LLMBudgetExceeded(LLMError):
    """A configured call/token budget was exhausted mid-query."""

    def __init__(self, message: str, calls_used: int, tokens_used: int):
        super().__init__(message)
        self.calls_used = calls_used
        self.tokens_used = tokens_used


class QueryCancelled(ReproError):
    """A served query was cancelled or exceeded its per-query timeout.

    Raised cooperatively at the next model-call boundary by the
    concurrent serving layer (:mod:`repro.runtime.scheduler`); other
    queries of the same batch are unaffected.
    """


class ValidationError(ReproError):
    """A retrieved value failed validation and could not be repaired."""


class WorkloadError(ReproError):
    """An evaluation workload or world definition is inconsistent."""
