"""Interactive shell and one-shot runner for the LLM-storage engine.

Usage::

    python -m repro.cli --world geography            # REPL
    python -m repro.cli --world movies -c "SELECT COUNT(*) FROM movies"
    python -m repro.cli --world company --naive --seed 3 \
        -c "SELECT name FROM employees ORDER BY salary DESC LIMIT 3"

Inside the REPL:

    sql> SELECT population FROM countries WHERE name = 'France';
    sql> .explain SELECT COUNT(*) FROM cities
    sql> .usage           -- cumulative session accounting
    sql> .storage         -- storage-tier hit/miss/eviction counters
    sql> .tables          -- registered virtual tables
    sql> .quit
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.errors import ReproError
from repro.eval.worlds import all_worlds, constraints_for
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM


def build_engine(
    world_name: str,
    seed: int,
    naive: bool,
    gap: float,
    sampling: float,
    votes: int,
    max_in_flight: int = 1,
    storage_mode: str = "off",
    storage_budget_bytes: Optional[int] = None,
    storage_ttl_s: Optional[float] = None,
    scan_shards: int = 1,
    shard_min_rows: Optional[int] = None,
    streaming: bool = True,
) -> LLMStorageEngine:
    """Assemble an engine over one of the standard worlds."""
    worlds = all_worlds()
    if world_name not in worlds:
        raise SystemExit(
            f"unknown world {world_name!r}; choose from {', '.join(sorted(worlds))}"
        )
    world = worlds[world_name]
    noise = NoiseConfig().with_gap(gap).with_sampling_error(sampling)
    model = SimulatedLLM(world, noise=noise, seed=seed)
    config = EngineConfig.naive() if naive else EngineConfig()
    if votes > 1:
        config = config.with_(votes=votes)
    if max_in_flight > 1:
        config = config.with_(max_in_flight=max_in_flight)
    if storage_mode != "off":
        config = config.with_(storage_mode=storage_mode)
    if storage_budget_bytes is not None:
        config = config.with_(storage_budget_bytes=storage_budget_bytes)
    if storage_ttl_s is not None:
        config = config.with_(storage_ttl_s=storage_ttl_s)
    if scan_shards != 1:
        config = config.with_(scan_shards=scan_shards)
    if shard_min_rows is not None:
        config = config.with_(shard_min_rows=shard_min_rows)
    if not streaming:
        config = config.with_(enable_streaming=False)
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema,
            row_estimate=world.row_count(schema.name),
            constraints=constraints_for(world, schema.name),
        )
    return engine


def run_statement(engine: LLMStorageEngine, line: str, out) -> None:
    """Execute one REPL line (SQL or dot-command)."""
    stripped = line.strip().rstrip(";")
    if not stripped:
        return
    if stripped == ".usage":
        print(f"session usage: {engine.usage.render()}", file=out)
        return
    if stripped == ".storage":
        print(f"storage: {engine.storage.describe()}", file=out)
        return
    if stripped == ".tables":
        for name in engine.catalog.names():
            print(engine.catalog.schema(name).render_signature(), file=out)
        return
    if stripped.startswith(".explain"):
        sql = stripped[len(".explain"):].strip()
        if not sql:
            print("usage: .explain <sql>", file=out)
            return
        print(engine.explain(sql), file=out)
        return
    result = engine.execute(stripped)
    print(result.render(), file=out)


def repl(engine: LLMStorageEngine, stdin=None, out=None) -> None:
    """Read-eval-print loop; '.quit' or EOF exits."""
    stdin = stdin or sys.stdin
    out = out or sys.stdout
    print("repro SQL shell — '.quit' to exit, '.explain <sql>' for plans", file=out)
    while True:
        print("sql> ", end="", file=out, flush=True)
        line = stdin.readline()
        if not line or line.strip() in (".quit", ".exit"):
            return
        try:
            run_statement(engine, line, out)
        except ReproError as exc:
            print(f"error: {exc}", file=out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--world", default="geography", help="geography | movies | company"
    )
    parser.add_argument("--seed", type=int, default=0, help="model seed")
    parser.add_argument("--gap", type=float, default=0.05, help="knowledge-gap rate")
    parser.add_argument(
        "--sampling", type=float, default=0.08, help="sampling-error rate"
    )
    parser.add_argument("--votes", type=int, default=1, help="self-consistency votes")
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=1,
        help="concurrent model calls (1 = sequential; results are "
        "identical at any value, only wall-clock changes)",
    )
    parser.add_argument(
        "--storage-mode",
        choices=["off", "result_cache", "materialize"],
        default="off",
        help="adaptive materialization tier: serve repeated queries from "
        "a normalized result cache (result_cache) and reuse retrieved "
        "scan/lookup fragments (materialize); results are byte-identical "
        "to --storage-mode off on deterministic settings",
    )
    parser.add_argument(
        "--storage-budget-bytes",
        type=int,
        default=None,
        help="byte budget per storage store (LRU eviction beyond it)",
    )
    parser.add_argument(
        "--storage-ttl-s",
        type=float,
        default=None,
        help="seconds before stored fragments/results expire (0 = never)",
    )
    parser.add_argument(
        "--scan-shards",
        type=int,
        default=1,
        help="partition large scans into this many parallel page chains "
        "(1 = single chain; rows are byte-identical at any value, only "
        "call layout and wall-clock change)",
    )
    parser.add_argument(
        "--shard-min-rows",
        type=int,
        default=None,
        help="minimum estimated rows per shard (caps the shard count "
        "so small tables stay unsharded)",
    )
    parser.add_argument(
        "--no-streaming",
        action="store_true",
        help="disable the streaming row pipeline (early-exit page "
        "fetching for LIMIT/EXISTS consumers); results are identical, "
        "only pages fetched change — see '.usage' pages counters",
    )
    parser.add_argument(
        "--naive", action="store_true", help="disable all optimizations"
    )
    parser.add_argument("-c", "--command", default=None, help="run one query and exit")
    args = parser.parse_args(argv)

    try:
        engine = build_engine(
            args.world,
            args.seed,
            args.naive,
            args.gap,
            args.sampling,
            args.votes,
            max_in_flight=args.max_in_flight,
            storage_mode=args.storage_mode,
            storage_budget_bytes=args.storage_budget_bytes,
            storage_ttl_s=args.storage_ttl_s,
            scan_shards=args.scan_shards,
            shard_min_rows=args.shard_min_rows,
            streaming=not args.no_streaming,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.command:
        try:
            run_statement(engine, args.command, sys.stdout)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    repl(engine)
    return 0


if __name__ == "__main__":
    sys.exit(main())
