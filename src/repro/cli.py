"""Interactive shell and one-shot runner for the LLM-storage engine.

Usage::

    python -m repro.cli --world geography            # REPL
    python -m repro.cli --world movies -c "SELECT COUNT(*) FROM movies"
    python -m repro.cli --world company --naive --seed 3 \
        -c "SELECT name FROM employees ORDER BY salary DESC LIMIT 3"
    python -m repro.cli --world movies --jobs 8 --batch queries.sql
    cat queries.sql | python -m repro.cli --world movies --batch -

Batch mode reads ``;``-separated statements from a file (``-`` for
stdin) and serves them concurrently through ``Engine.execute_many``:
up to ``--jobs`` statements in flight against one shared session, with
per-query usage attribution printed after each result.

Inside the REPL:

    sql> SELECT population FROM countries WHERE name = 'France';
    sql> .explain SELECT COUNT(*) FROM cities
    sql> .explain analyze SELECT COUNT(*) FROM cities
    sql> .usage           -- cumulative session accounting
    sql> .storage         -- storage-tier hit/miss/eviction counters
    sql> .metrics         -- metrics registry + slow-query log (--trace)
    sql> .stats           -- learned statistics catalog (--adaptive)
    sql> .tables          -- registered virtual tables
    sql> .quit
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.errors import ReproError
from repro.eval.worlds import all_worlds, constraints_for
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.obs.export import batch_summary


def build_engine(
    world_name: str,
    seed: int,
    naive: bool,
    gap: float,
    sampling: float,
    votes: int,
    max_in_flight: int = 1,
    storage_mode: str = "off",
    storage_budget_bytes: Optional[int] = None,
    storage_ttl_s: Optional[float] = None,
    storage_backend: str = "memory",
    storage_path: Optional[str] = None,
    storage_scope: Optional[str] = None,
    scan_shards: int = 1,
    shard_min_rows: Optional[int] = None,
    streaming: bool = True,
    tracing: bool = False,
    slow_query_ms: Optional[float] = None,
    transport: Optional[str] = None,
    transport_url: Optional[str] = None,
    continuous_batching: bool = False,
    batch_slots: Optional[int] = None,
    adaptive: bool = False,
    replan_threshold: Optional[float] = None,
) -> LLMStorageEngine:
    """Assemble an engine over one of the standard worlds."""
    worlds = all_worlds()
    if world_name not in worlds:
        raise SystemExit(
            f"unknown world {world_name!r}; choose from {', '.join(sorted(worlds))}"
        )
    world = worlds[world_name]
    noise = NoiseConfig().with_gap(gap).with_sampling_error(sampling)
    model = SimulatedLLM(world, noise=noise, seed=seed)
    config = EngineConfig.naive() if naive else EngineConfig()
    if votes > 1:
        config = config.with_(votes=votes)
    if max_in_flight > 1:
        config = config.with_(max_in_flight=max_in_flight)
    if storage_mode != "off":
        config = config.with_(storage_mode=storage_mode)
    if storage_budget_bytes is not None:
        config = config.with_(storage_budget_bytes=storage_budget_bytes)
    if storage_ttl_s is not None:
        config = config.with_(storage_ttl_s=storage_ttl_s)
    if storage_backend != "memory":
        config = config.with_(
            storage_backend=storage_backend, storage_path=storage_path
        )
    if storage_scope is not None:
        config = config.with_(storage_scope=storage_scope)
    if scan_shards != 1:
        config = config.with_(scan_shards=scan_shards)
    if shard_min_rows is not None:
        config = config.with_(shard_min_rows=shard_min_rows)
    if not streaming:
        config = config.with_(enable_streaming=False)
    if tracing:
        config = config.with_(enable_tracing=True)
    if slow_query_ms is not None:
        config = config.with_(slow_query_ms=slow_query_ms)
    if transport is not None:
        config = config.with_(transport=transport, transport_url=transport_url)
    if continuous_batching:
        config = config.with_(enable_continuous_batching=True)
    if batch_slots is not None:
        config = config.with_(batch_slots=batch_slots)
    if adaptive:
        config = config.with_(enable_adaptive=True)
    if replan_threshold is not None:
        config = config.with_(replan_threshold=replan_threshold)
    if transport is not None:
        # The simulated model stays the deterministic offline fallback:
        # network transports without credentials/endpoint delegate every
        # request to it (and key caches by its identity), so results
        # are byte-identical whichever transport is named.
        from repro.llm.transport import transport_from_config

        model = transport_from_config(config, fallback_model=model)
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema,
            row_estimate=world.row_count(schema.name),
            constraints=constraints_for(world, schema.name),
        )
    return engine


def run_statement(engine: LLMStorageEngine, line: str, out) -> None:
    """Execute one REPL line (SQL or dot-command)."""
    stripped = line.strip().rstrip(";")
    if not stripped:
        return
    if stripped == ".usage":
        print(f"session usage: {engine.usage.render()}", file=out)
        return
    if stripped == ".storage":
        print(f"storage: {engine.storage.describe()}", file=out)
        print(f"transport: {engine.transport_description}", file=out)
        return
    if stripped == ".tables":
        for name in engine.catalog.names():
            print(engine.catalog.schema(name).render_signature(), file=out)
        return
    if stripped == ".metrics":
        print(engine.metrics_report(), file=out)
        return
    if stripped == ".stats":
        print(engine.stats_report(), file=out)
        return
    if stripped.startswith(".explain"):
        sql = stripped[len(".explain"):].strip()
        analyze = False
        if sql.lower().startswith("analyze"):
            analyze = True
            sql = sql[len("analyze"):].strip()
        if not sql:
            print("usage: .explain [analyze] <sql>", file=out)
            return
        print(engine.explain(sql, analyze=analyze), file=out)
        return
    result = engine.execute(stripped)
    print(result.render(), file=out)


def split_statements(text: str) -> List[str]:
    """Split SQL text on ``;`` and strip ``--`` comments, quote-aware.

    A naive split would corrupt legal statements: ``'x;y'`` / ``'a--b'``
    are ordinary string literals and ``"a;b"`` is a quoted identifier.
    This scanner tracks both quote kinds (with doubled-quote escapes),
    so separators and comment markers only count outside them.  Blank
    statements are dropped, making trailing semicolons and comment-only
    sections harmless.
    """
    statements: List[str] = []
    current: List[str] = []
    quote = None  # the active quote character, if inside one
    index = 0
    while index < len(text):
        char = text[index]
        if quote is not None:
            if char == quote and text[index + 1 : index + 2] == quote:
                current.append(char * 2)
                index += 2
                continue
            if char == quote:
                quote = None
            current.append(char)
        elif char in ("'", '"'):
            quote = char
            current.append(char)
        elif char == "-" and text[index + 1 : index + 2] == "-":
            while index < len(text) and text[index] != "\n":
                index += 1
            continue
        elif char == ";":
            statements.append("".join(current))
            current = []
        else:
            current.append(char)
        index += 1
    statements.append("".join(current))
    return [chunk.strip() for chunk in statements if chunk.strip()]


def read_batch_statements(source: str, stdin=None) -> List[str]:
    """Statements from a file (or stdin for ``-``), ``;``-separated."""
    if source == "-":
        text = (stdin or sys.stdin).read()
    else:
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    return split_statements(text)


def run_batch(
    engine: LLMStorageEngine, statements: List[str], jobs: int, out
) -> int:
    """Serve a statement batch concurrently; returns failure count."""
    if not statements:
        print("batch: no statements", file=out)
        return 0
    outcomes = engine.execute_many(
        statements, jobs=jobs, collect_outcomes=True
    )
    failed = 0
    for outcome in outcomes:
        print(f"-- [{outcome.index + 1}] {outcome.statement}", file=out)
        if outcome.ok:
            print(outcome.result.render(), file=out)
        else:
            failed += 1
            print(f"error: {outcome.error}", file=out)
    print(
        f"-- batch: {len(outcomes) - failed} ok, {failed} failed "
        f"({jobs} job(s)); session usage: {engine.usage.render()}",
        file=out,
    )
    print(batch_summary(outcomes), file=out)
    if engine.observability.enabled:
        print(engine.metrics_report(), file=out)
    return failed


def repl(engine: LLMStorageEngine, stdin=None, out=None) -> None:
    """Read-eval-print loop; '.quit' or EOF exits."""
    stdin = stdin or sys.stdin
    out = out or sys.stdout
    print("repro SQL shell — '.quit' to exit, '.explain <sql>' for plans", file=out)
    while True:
        print("sql> ", end="", file=out, flush=True)
        line = stdin.readline()
        if not line or line.strip() in (".quit", ".exit"):
            return
        try:
            run_statement(engine, line, out)
        except ReproError as exc:
            print(f"error: {exc}", file=out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--world", default="geography", help="geography | movies | company"
    )
    parser.add_argument("--seed", type=int, default=0, help="model seed")
    parser.add_argument("--gap", type=float, default=0.05, help="knowledge-gap rate")
    parser.add_argument(
        "--sampling", type=float, default=0.08, help="sampling-error rate"
    )
    parser.add_argument("--votes", type=int, default=1, help="self-consistency votes")
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=1,
        help="concurrent model calls (1 = sequential; results are "
        "identical at any value, only wall-clock changes)",
    )
    parser.add_argument(
        "--storage-mode",
        choices=["off", "result_cache", "materialize"],
        default="off",
        help="adaptive materialization tier: serve repeated queries from "
        "a normalized result cache (result_cache) and reuse retrieved "
        "scan/lookup fragments (materialize); results are byte-identical "
        "to --storage-mode off on deterministic settings",
    )
    parser.add_argument(
        "--storage-budget-bytes",
        type=int,
        default=None,
        help="byte budget per storage store (LRU eviction beyond it)",
    )
    parser.add_argument(
        "--storage-ttl-s",
        type=float,
        default=None,
        help="seconds before stored fragments/results expire (0 = never)",
    )
    parser.add_argument(
        "--storage-backend",
        choices=["memory", "sqlite"],
        default="memory",
        help="where the storage tier keeps entries: 'memory' dies with "
        "the process; 'sqlite' persists them in the --storage-path file "
        "(WAL mode, process-safe) so restarts and concurrent processes "
        "share one warm tier",
    )
    parser.add_argument(
        "--storage-path",
        default=None,
        metavar="FILE",
        help="SQLite store file for --storage-backend sqlite",
    )
    parser.add_argument(
        "--storage-scope",
        default=None,
        metavar="LEVEL[:TENANT]",
        help="multi-tenant scope of stored entries: session | user | "
        "application, optionally 'level:tenant' (e.g. user:alice); "
        "scopes are strictly isolated and 'session' never shares "
        "across processes",
    )
    parser.add_argument(
        "--scan-shards",
        type=int,
        default=1,
        help="partition large scans into this many parallel page chains "
        "(1 = single chain; rows are byte-identical at any value, only "
        "call layout and wall-clock change)",
    )
    parser.add_argument(
        "--shard-min-rows",
        type=int,
        default=None,
        help="minimum estimated rows per shard (caps the shard count "
        "so small tables stay unsharded)",
    )
    parser.add_argument(
        "--no-streaming",
        action="store_true",
        help="disable the streaming row pipeline (early-exit page "
        "fetching for LIMIT/EXISTS consumers); results are identical, "
        "only pages fetched change — see '.usage' pages counters",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="collect a deterministic span tree per query and activate "
        "the session metrics registry (see '.metrics'); results and "
        "usage totals are byte-identical with or without it",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write collected traces as JSON lines to PATH on exit "
        "(implies --trace)",
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log statements whose simulated wall time meets MS ms "
        "(statement, wall, top-3 slowest spans; implies tracing)",
    )
    parser.add_argument(
        "--transport",
        choices=["simulated", "openai", "llamacpp"],
        default=None,
        help="model transport: 'simulated' (in-process, default), "
        "'openai' (OpenAI-style HTTP; needs OPENAI_API_KEY), or "
        "'llamacpp' (llama.cpp server; needs --transport-url or "
        "LLAMA_SERVER_URL); network transports without credentials "
        "fall back deterministically to the in-process model",
    )
    parser.add_argument(
        "--transport-url",
        default=None,
        metavar="URL",
        help="endpoint base URL for --transport openai/llamacpp",
    )
    parser.add_argument(
        "--continuous-batching",
        action="store_true",
        help="coalesce model calls from all in-flight --batch queries "
        "into shared slot-bounded waves (--batch-slots); results are "
        "byte-identical, only wall-clock changes",
    )
    parser.add_argument(
        "--batch-slots",
        type=int,
        default=None,
        help="slot count of the continuous-batching pool (default 32)",
    )
    parser.add_argument(
        "--adaptive",
        dest="adaptive",
        action="store_true",
        default=False,
        help="learn observed cardinalities/selectivities into the "
        "statistics catalog and let the optimizer consult them (plus "
        "mid-query re-planning of badly-estimated streaming scans); "
        "rows are byte-identical, only call layout changes",
    )
    parser.add_argument(
        "--no-adaptive",
        dest="adaptive",
        action="store_false",
        help="disable adaptive optimization (the default): the "
        "optimizer prices plans off static estimates only",
    )
    parser.add_argument(
        "--replan-threshold",
        type=float,
        default=None,
        metavar="RATIO",
        help="estimated/observed selectivity divergence ratio beyond "
        "which a streaming scan re-plans its remaining work "
        "(default 4.0; must be > 1)",
    )
    parser.add_argument(
        "--naive", action="store_true", help="disable all optimizations"
    )
    parser.add_argument("-c", "--command", default=None, help="run one query and exit")
    parser.add_argument(
        "--batch",
        default=None,
        metavar="FILE",
        help="serve ';'-separated statements from FILE ('-' = stdin) "
        "concurrently and exit; results are byte-identical to running "
        "them one at a time",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="statements admitted concurrently in --batch mode "
        "(default: the engine's serve_jobs setting); all jobs share "
        "one --max-in-flight call budget",
    )
    args = parser.parse_args(argv)

    try:
        engine = build_engine(
            args.world,
            args.seed,
            args.naive,
            args.gap,
            args.sampling,
            args.votes,
            max_in_flight=args.max_in_flight,
            storage_mode=args.storage_mode,
            storage_budget_bytes=args.storage_budget_bytes,
            storage_ttl_s=args.storage_ttl_s,
            storage_backend=args.storage_backend,
            storage_path=args.storage_path,
            storage_scope=args.storage_scope,
            scan_shards=args.scan_shards,
            shard_min_rows=args.shard_min_rows,
            streaming=not args.no_streaming,
            tracing=args.trace or args.trace_out is not None,
            slow_query_ms=args.slow_query_ms,
            transport=args.transport,
            transport_url=args.transport_url,
            continuous_batching=args.continuous_batching,
            batch_slots=args.batch_slots,
            adaptive=args.adaptive,
            replan_threshold=args.replan_threshold,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.jobs is not None and args.batch is None:
        print("error: --jobs requires --batch", file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    def flush_traces() -> None:
        if args.trace_out is None:
            return
        spans = engine.export_trace(args.trace_out)
        print(
            f"-- wrote {spans} span(s) to {args.trace_out}", file=sys.stdout
        )

    if args.batch is not None:
        try:
            statements = read_batch_statements(args.batch)
        except (OSError, UnicodeDecodeError) as exc:
            print(f"error: cannot read batch file: {exc}", file=sys.stderr)
            return 2
        jobs = args.jobs if args.jobs is not None else engine.config.serve_jobs
        try:
            failed = run_batch(engine, statements, jobs, sys.stdout)
        finally:
            engine.close()
        flush_traces()
        return 1 if failed else 0
    if args.command:
        try:
            run_statement(engine, args.command, sys.stdout)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        finally:
            engine.close()
        flush_traces()
        return 0
    try:
        repl(engine)
    finally:
        engine.close()
    flush_traces()
    return 0


if __name__ == "__main__":
    sys.exit(main())
