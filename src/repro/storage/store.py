"""Byte-budgeted LRU/TTL store: the shared substrate of the storage tier.

Every materialized artifact — scan fragments, per-entity lookup cells,
normalized query results — lives in an :class:`LRUByteStore`.  Entries
carry a deterministic byte estimate (:func:`approx_bytes`) and an insert
timestamp; the store evicts least-recently-used entries when the byte
budget is exceeded and expires entries past the TTL on access.

The store is thread-safe: the concurrent runtime materializes plan
steps on orchestration threads, and all of them read and write the
session's storage tier.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Tuple


def approx_bytes(value: Any) -> int:
    """Deterministic, platform-independent size estimate of a payload.

    Close enough to real memory use to make a byte budget meaningful,
    while staying reproducible across Python builds (``sys.getsizeof``
    is not).  Payload classes can define ``__approx_bytes__`` to size
    themselves; the persistent backend relies on this so a serialized
    (pickled) payload is sized by its *logical* content, not by the
    encoding — memory and persistent backends then evict at the same
    budget boundaries.
    """
    if value is None:
        return 16
    sizer = getattr(value, "__approx_bytes__", None)
    if sizer is not None:
        return int(sizer())
    if isinstance(value, bool):
        return 28
    if isinstance(value, (int, float)):
        return 32
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, bytes):
        return 33 + len(value)
    if isinstance(value, dict):
        return 64 + sum(
            approx_bytes(k) + approx_bytes(v) for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return 56 + sum(approx_bytes(item) for item in value)
    return 64


@dataclass
class StoreStats:
    """Counters for one store (monotonic; reset with the session).

    ``oversized`` counts admissions of entries larger than the whole
    byte budget (see :class:`LRUByteStore` for the policy).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    stored: int = 0
    oversized: int = 0


class _Entry:
    __slots__ = ("payload", "size", "stored_at", "ttl_s")

    def __init__(
        self,
        payload: Any,
        size: int,
        stored_at: float,
        ttl_s: Optional[float] = None,
    ):
        self.payload = payload
        self.size = size
        self.stored_at = stored_at
        # None inherits the store-level TTL; a float overrides it for
        # this entry (per-scope TTL defaults of the multi-tenant tier).
        self.ttl_s = ttl_s


class LRUByteStore:
    """An LRU map bounded by approximate bytes, with optional TTL.

    ``ttl_s == 0`` disables expiry.  This class is also the in-memory
    implementation of the store backend protocol
    (:class:`repro.storage.backend.StoreBackend`): a persistent backend
    (:mod:`repro.storage.persistent`) offers the same surface —
    including per-scope generation stamps and scope-prefixed removal —
    over a process-shared file.

    Oversized-entry policy: a single entry larger than the whole budget
    is **admitted alone** — it evicts everything else and stays
    resident (with ``bytes_used`` above budget) until the next insert
    evicts it in turn.  Refusing it would make large scans uncacheable
    for no benefit; keeping it resident is the best cache content until
    something newer arrives.  Each such admission is recorded in
    ``stats.oversized`` so a budget persistently exceeded is
    observable, not silent.
    """

    #: Backend identity: surfaced by the tier's ``.storage`` rendering.
    name = "memory"
    #: Entries die with the process; the tier reports persistent
    #: hit/miss counters only for backends that outlive it.
    persistent = False

    def __init__(
        self,
        budget_bytes: int,
        ttl_s: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._budget_bytes = max(1, int(budget_bytes))
        self._ttl_s = float(ttl_s)
        self._clock = clock
        self._bytes_used = 0
        self._lock = threading.RLock()
        self._generations: dict = {}
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def budget_bytes(self) -> int:
        return self._budget_bytes

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes_used

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> Optional[Any]:
        """The payload for ``key``, bumping recency; None on miss/expiry."""
        with self._lock:
            entry = self._live_entry(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.payload

    def peek(self, key: Hashable) -> Optional[Any]:
        """Like :meth:`get` but strictly read-only.

        Used by the planner: coverage probes during EXPLAIN/planning
        must not distort hit statistics or keep entries artificially
        warm.  An entry past its TTL is reported as a miss but — unlike
        :meth:`get` — neither deleted nor counted as an expiration: the
        mutation belongs to the next genuinely mutating access, not to
        a probe.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or self._expired(entry):
                return None
            return entry.payload

    def put(
        self,
        key: Hashable,
        payload: Any,
        size: Optional[int] = None,
        ttl_s: Optional[float] = None,
    ) -> None:
        """Insert or replace ``key``; evicts LRU entries over budget.

        Replacing an entry that had already passed its TTL records an
        expiration (the old payload died of age, not of replacement);
        an entry larger than the whole budget is admitted under the
        oversized policy documented on the class and recorded in
        ``stats.oversized``.  ``ttl_s`` overrides the store-level TTL
        for this entry (the multi-tenant tier writes each scope's
        entries under that scope's TTL default).
        """
        if size is None:
            size = approx_bytes(payload)
        size = max(1, int(size))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes_used -= old.size
                if self._expired(old):
                    self.stats.expirations += 1
            self._entries[key] = _Entry(payload, size, self._clock(), ttl_s)
            self._bytes_used += size
            self.stats.stored += 1
            if size > self._budget_bytes:
                self.stats.oversized += 1
            while self._bytes_used > self._budget_bytes and len(self._entries) > 1:
                _, evicted = self._entries.popitem(last=False)
                self._bytes_used -= evicted.size
                self.stats.evictions += 1

    def remove(self, key: Hashable) -> None:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._bytes_used -= entry.size

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes_used = 0

    def remove_scope(self, prefix: Tuple) -> int:
        """Remove every tuple key starting with ``prefix``; count removed.

        The multi-tenant tier prefixes all of a scope's keys with
        ``(level, tenant)``, so scope invalidation is a prefix delete.
        """
        removed = 0
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key[: len(prefix)] == prefix
            ]
            for key in doomed:
                entry = self._entries.pop(key)
                self._bytes_used -= entry.size
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Scope generations
    # ------------------------------------------------------------------

    def generation(self, scope_id: str) -> int:
        """The scope's monotonic invalidation stamp (0 until bumped).

        An in-memory store's generations are process-local; the
        persistent backend shares them through the store file, which is
        what lets one process's invalidation be observed by others.
        """
        with self._lock:
            return self._generations.get(scope_id, 0)

    def bump_generation(self, scope_id: str) -> int:
        """Advance the scope's stamp; entries keyed under older stamps
        become unreachable to scoped readers."""
        with self._lock:
            nxt = self._generations.get(scope_id, 0) + 1
            self._generations[scope_id] = nxt
            return nxt

    def snapshot_stats(self) -> Tuple[int, int, int, int, int, int]:
        with self._lock:
            stats = self.stats
            return (
                stats.hits,
                stats.misses,
                stats.evictions,
                stats.expirations,
                stats.stored,
                stats.oversized,
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _expired(self, entry: _Entry) -> bool:
        ttl = self._ttl_s if entry.ttl_s is None else entry.ttl_s
        return ttl > 0 and self._clock() - entry.stored_at >= ttl

    def _live_entry(self, key: Hashable) -> Optional[_Entry]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if self._expired(entry):
            del self._entries[key]
            self._bytes_used -= entry.size
            self.stats.expirations += 1
            return None
        return entry
