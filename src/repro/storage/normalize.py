"""Normalized query keys for the result cache.

The cache must hit for *semantically identical* SQL: whitespace and
keyword-case variants, different-but-equivalent binding aliases, and
any formatting the printer already canonicalizes.  The key is built
from the **bound** statement (the binder has resolved table/column
case and qualified every column with its binding), with one extra
normalization pass: binding aliases are renamed to positional
canonical names (``t1``, ``t2``, ... in FROM order), so

    SELECT c.name FROM countries AS c WHERE c.name = 'France'
    SELECT x.name FROM countries x  WHERE x.name  =  'France'
    select name from countries where name = 'France'

all print to the same key.  Literal values are *not* case-folded —
``'France'`` and ``'france'`` are different data.

Canonical names are unique across the whole statement (one counter
shared by every scope) and nested scopes inherit their parent's
environment.  Both properties matter for correctness: a correlated
subquery's outer reference maps through the inherited environment to a
name no inner binding can shadow, so a correlated query can never
print to the same key as its uncorrelated twin (and therefore can
never be served the twin's cached result — it must reach the planner,
which rejects it).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sql import ast
from repro.sql.printer import print_expression, print_statement


def canonical_sql_key(statement: ast.Statement) -> str:
    """The normalized text of a bound statement, for cache keying."""
    return print_statement(_normalize_statement(statement, counter=[0]))


def predicate_fingerprint(binding: str, conjuncts) -> str:
    """Canonical key of a bound single-binding predicate.

    The statistics catalog keys observed selectivities on the *shape*
    of a predicate independent of the alias it was written against:
    the binding is renamed to the canonical ``t1`` and the conjuncts
    are printed in sorted order (AND is commutative).  Literals are
    deliberately kept — ``population > 1000`` and ``population > 9``
    select different fractions and must not share a fingerprint.
    """
    env = {binding.lower(): "t1"}
    counter = [1]
    printed = sorted(
        print_expression(_rewrite_expr(conjunct, env, counter))
        for conjunct in conjuncts
    )
    return " AND ".join(printed)


def _next_name(counter: List[int]) -> str:
    counter[0] += 1
    return f"t{counter[0]}"


def _normalize_statement(
    statement: ast.Statement, counter: List[int]
) -> ast.Statement:
    if isinstance(statement, ast.SetOperation):
        return ast.SetOperation(
            op=statement.op,
            all=statement.all,
            left=_normalize_statement(statement.left, counter),
            right=_normalize_query(statement.right, {}, counter),
            order_by=list(statement.order_by),
            limit=statement.limit,
            offset=statement.offset,
        )
    assert isinstance(statement, ast.Query)
    return _normalize_query(statement, {}, counter)


def _normalize_query(
    query: ast.Query, outer_env: Dict[str, str], counter: List[int]
) -> ast.Query:
    env = dict(outer_env)  # inherited scope: correlated refs resolve here
    from_clause = _rename_from(query.from_clause, env, counter)

    def expr(node: Optional[ast.Expr]) -> Optional[ast.Expr]:
        return _rewrite_expr(node, env, counter) if node is not None else None

    return ast.Query(
        select=[
            ast.SelectItem(expr=expr(item.expr), alias=item.alias)
            for item in query.select
        ],
        from_clause=from_clause,
        where=expr(query.where),
        group_by=[expr(e) for e in query.group_by],
        having=expr(query.having),
        order_by=[
            ast.OrderItem(
                expr=expr(item.expr),
                descending=item.descending,
                nulls_last=item.nulls_last,
            )
            for item in query.order_by
        ],
        limit=query.limit,
        offset=query.offset,
        distinct=query.distinct,
    )


def _rename_from(
    ref: Optional[ast.TableRef], env: Dict[str, str], counter: List[int]
) -> Optional[ast.TableRef]:
    """Assign canonical aliases in FROM order; rewrite join conditions.

    Two passes, so a join condition sees this level's complete binding
    set regardless of tree shape.
    """
    if ref is None:
        return None
    _collect_bindings(ref, env, counter)
    return _rewrite_ref(ref, env, counter)


def _collect_bindings(
    ref: ast.TableRef, env: Dict[str, str], counter: List[int]
) -> None:
    if isinstance(ref, ast.NamedTable):
        env[ref.binding_name.lower()] = _next_name(counter)
    elif isinstance(ref, ast.SubqueryTable):
        env[ref.alias.lower()] = _next_name(counter)
    elif isinstance(ref, ast.Join):
        _collect_bindings(ref.left, env, counter)
        _collect_bindings(ref.right, env, counter)


def _rewrite_ref(
    ref: ast.TableRef, env: Dict[str, str], counter: List[int]
) -> ast.TableRef:
    if isinstance(ref, ast.NamedTable):
        return ast.NamedTable(
            name=ref.name.lower(), alias=env[ref.binding_name.lower()]
        )
    if isinstance(ref, ast.SubqueryTable):
        return ast.SubqueryTable(
            query=_normalize_query(ref.query, env, counter),
            alias=env[ref.alias.lower()],
        )
    assert isinstance(ref, ast.Join)
    return ast.Join(
        left=_rewrite_ref(ref.left, env, counter),
        right=_rewrite_ref(ref.right, env, counter),
        kind=ref.kind,
        condition=(
            _rewrite_expr(ref.condition, env, counter)
            if ref.condition is not None
            else None
        ),
    )


def _rewrite_expr(
    expr: ast.Expr, env: Dict[str, str], counter: List[int]
) -> ast.Expr:
    def rewrite(node: ast.Expr) -> ast.Expr:
        return _rewrite_expr(node, env, counter)

    def subquery(query: ast.Query) -> ast.Query:
        return _normalize_query(query, env, counter)

    if isinstance(expr, ast.ColumnRef):
        if expr.table is not None:
            return ast.ColumnRef(
                name=expr.name,
                table=env.get(expr.table.lower(), expr.table.lower()),
            )
        return expr
    if isinstance(expr, ast.Star):
        if expr.table is not None:
            return ast.Star(table=env.get(expr.table.lower(), expr.table.lower()))
        return expr
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            op=expr.op, left=rewrite(expr.left), right=rewrite(expr.right)
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(op=expr.op, operand=rewrite(expr.operand))
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            name=expr.name.upper(),
            args=[rewrite(arg) for arg in expr.args],
            distinct=expr.distinct,
        )
    if isinstance(expr, ast.Cast):
        return ast.Cast(operand=rewrite(expr.operand), type_name=expr.type_name)
    if isinstance(expr, ast.Between):
        return ast.Between(
            operand=rewrite(expr.operand),
            low=rewrite(expr.low),
            high=rewrite(expr.high),
            negated=expr.negated,
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            operand=rewrite(expr.operand),
            items=[rewrite(item) for item in expr.items],
            negated=expr.negated,
        )
    if isinstance(expr, ast.InSubquery):
        return ast.InSubquery(
            operand=rewrite(expr.operand),
            query=subquery(expr.query),
            negated=expr.negated,
        )
    if isinstance(expr, ast.Exists):
        return ast.Exists(query=subquery(expr.query), negated=expr.negated)
    if isinstance(expr, ast.ScalarSubquery):
        return ast.ScalarSubquery(query=subquery(expr.query))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(operand=rewrite(expr.operand), negated=expr.negated)
    if isinstance(expr, ast.Like):
        return ast.Like(
            operand=rewrite(expr.operand),
            pattern=rewrite(expr.pattern),
            negated=expr.negated,
        )
    if isinstance(expr, ast.CaseWhen):
        return ast.CaseWhen(
            operand=rewrite(expr.operand) if expr.operand is not None else None,
            branches=[
                (rewrite(condition), rewrite(result))
                for condition, result in expr.branches
            ],
            else_result=(
                rewrite(expr.else_result) if expr.else_result is not None else None
            ),
        )
    return expr
