"""The adaptive materialization storage tier.

One :class:`StorageTier` per engine session routes repeated traffic
away from the model:

* a **normalized query-result cache** — whole result tables keyed on
  the bound, canonically-printed AST (plus model identity and the
  semantic engine configuration), so formatting/alias variants of a
  query hit without any model call;
* a **fragment store** — cells retrieved by scans and lookups are
  written back as reusable fragments (:mod:`repro.storage.fragments`)
  and serve later scans/lookups, including *partial* coverage: a scan
  missing only columns triggers a residual lookup of just those
  columns, and a lookup batch fetches only its uncached keys.

Both stores are :class:`~repro.storage.backend.StoreBackend`
implementations sharing LRU/TTL/byte-budget semantics: the in-process
:class:`~repro.storage.store.LRUByteStore` (default) or the persistent
process-shared :class:`~repro.storage.persistent.SqliteBackend`
(``storage_backend='sqlite'``), under which materialized knowledge
outlives the session — a restarted process replays a repeated workload
with ~0 model calls.

**Multi-tenancy.**  Every key the tier touches is prefixed with its
:class:`~repro.storage.backend.StorageScope` — ``(level, tenant)``
where level ∈ ``session | user | application`` — plus the scope's
current *generation stamp*.  Scopes are strictly isolated (a scope can
never serve another scope's entries; the (model identity, semantic
config, catalog fingerprint) fragment scope nests inside the tenant
prefix), each scope level can carry its own TTL default
(``scope_ttl_s``), and :meth:`clear` bumps the generation stamp so the
invalidation is observed by *every process* sharing a persistent
backend: their next access reads the new stamp and stops seeing the
old entries.

The tier only serves and stores under a **deterministic**
configuration (``votes == 1`` and ``temperature == 0``): sampled
results are never replayed, so storage can never change what a
nondeterministic engine would answer.

Results served from the tier are byte-identical to the storage-off
engine on deterministic workloads (temperature 0, no voting, no
injected noise) — fragments hold post-validation values keyed on the
exact prompt-relevant scan/lookup shape plus model identity.  One
caveat under *injected noise*: the simulated model's systematic errors
are addressed per retrieval mode, so a residual column fetch (lookup
prompts filling scan columns) serves the lookup-mode belief where a
fresh scan would have re-sampled the enumeration-mode one.  The tier
then consistently replays the values the session first retrieved —
arguably better than re-hallucinating — but it is a divergence from a
cold storage-off run, which is why the byte-identity bar is stated for
noise-free workloads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.config import STORAGE_MODES, EngineConfig
from repro.errors import ConfigError
from repro.obs import metrics as obs_metrics
from repro.relational.schema import TableSchema
from repro.relational.types import Value
from repro.storage.backend import StorageScope, StoreBackend, build_backends
from repro.storage.fragments import RowCells, ScanFragment
from repro.storage.store import approx_bytes

#: Config fields that affect query *results* (not wall-clock or storage
#: routing).  Concurrency and storage knobs are excluded on purpose:
#: results are invariant to them by construction, so a cache keyed this
#: way stays correct across those sweeps — and a persistent tier can
#: serve a process configured with a different backend/scope/budget.
_SEMANTIC_CONFIG_FIELDS = (
    "page_size",
    "lookup_batch_size",
    "votes",
    "temperature",
    "enable_pushdown",
    "enable_lookup_join",
    "enable_order_pushdown",
    # Streaming fetches a strict prefix of the materialized page chain,
    # but it changes which fragments (prefix vs whole-scan) a session
    # writes; keep streaming and non-streaming sessions from serving
    # each other's coverage expectations.
    "enable_streaming",
    "enable_cache",
    "enable_judge",
    "enable_validation",
    "max_retries",
    "max_output_tokens",
    "scan_guard_factor",
    # Sharding slices the enumeration cursor differently, which under
    # injected format noise can shift which lines are malformed; keep
    # shard configs from serving each other's rows.
    "scan_shards",
    "shard_min_rows",
)


def deterministic_config(config: EngineConfig) -> bool:
    """True when retrieval is replayable: no voting, greedy decoding."""
    return config.votes <= 1 and config.temperature <= 0.0


def semantic_fingerprint(config: EngineConfig) -> Tuple:
    """The config fields that can change retrieved values."""
    return tuple(getattr(config, name) for name in _SEMANTIC_CONFIG_FIELDS)


@dataclass(frozen=True)
class CachedResult:
    """A stored query result: the table plus everything render() needs."""

    schema: TableSchema
    rows: Tuple[Tuple[Value, ...], ...]
    explain_text: str
    warnings: Tuple[str, ...]
    calls: int

    def __approx_bytes__(self) -> int:
        return (
            approx_bytes(self.rows)
            + approx_bytes(self.explain_text)
            + approx_bytes(self.warnings)
            + 128
        )


@dataclass(frozen=True)
class StorageSnapshot:
    """Immutable point-in-time counters of the tier.

    ``persistent_hits``/``persistent_misses`` are the backing stores'
    own access counters, reported only for a persistent backend (they
    stay 0 on ``memory``); ``invalidations`` counts generation bumps
    this tier *observed* — its own :meth:`StorageTier.clear` calls plus
    any bump performed by another process sharing the store file.
    ``backend`` names the store implementation serving the tier.
    """

    result_hits: int = 0
    result_misses: int = 0
    fragment_hits: int = 0
    fragment_misses: int = 0
    calls_saved: int = 0
    evictions: int = 0
    expirations: int = 0
    oversized: int = 0
    persistent_hits: int = 0
    persistent_misses: int = 0
    invalidations: int = 0
    backend: str = "memory"

    def minus(self, earlier: "StorageSnapshot") -> "StorageSnapshot":
        return StorageSnapshot(
            result_hits=self.result_hits - earlier.result_hits,
            result_misses=self.result_misses - earlier.result_misses,
            fragment_hits=self.fragment_hits - earlier.fragment_hits,
            fragment_misses=self.fragment_misses - earlier.fragment_misses,
            calls_saved=self.calls_saved - earlier.calls_saved,
            evictions=self.evictions - earlier.evictions,
            expirations=self.expirations - earlier.expirations,
            oversized=self.oversized - earlier.oversized,
            persistent_hits=self.persistent_hits - earlier.persistent_hits,
            persistent_misses=self.persistent_misses
            - earlier.persistent_misses,
            invalidations=self.invalidations - earlier.invalidations,
            backend=self.backend,
        )


class StorageTier:
    """Session-scoped materialization tier (thread-safe).

    With the default ``memory`` backend the tier is in-process and dies
    with the session; with ``sqlite`` it composes over a process-shared
    WAL-mode file, so sessions, restarts, and concurrent processes all
    share one warm store — partitioned by :class:`StorageScope` so
    tenants never observe each other's entries.
    """

    def __init__(
        self,
        mode: str = "off",
        budget_bytes: int = 8_000_000,
        ttl_s: float = 0.0,
        clock: Optional[Callable[[], float]] = None,
        backend: str = "memory",
        path: Optional[str] = None,
        scope: Union[str, StorageScope] = "session",
        scope_ttl_s=None,
    ):
        if mode not in STORAGE_MODES:
            raise ConfigError(
                f"storage mode must be one of {', '.join(STORAGE_MODES)}; "
                f"got {mode!r}"
            )
        self.mode = mode
        self.budget_bytes = budget_bytes
        self.ttl_s = ttl_s
        self.scope = (
            scope if isinstance(scope, StorageScope) else StorageScope.parse(scope)
        )
        self._fragments: StoreBackend
        self._results: StoreBackend
        self._fragments, self._results, self.backend_note = build_backends(
            backend, budget_bytes, ttl_s, clock=clock, path=path
        )
        self.backend_name = self._fragments.name
        self.persistent = self._fragments.persistent
        # Per-scope TTL default: entries of this tier's scope level
        # carry it into the store (None inherits the store-level TTL).
        scope_ttls = dict(scope_ttl_s or ())
        self._entry_ttl: Optional[float] = scope_ttls.get(self.scope.level)
        self._lock = threading.Lock()
        # Serializes read-modify-write mutations (peek → merge → put):
        # concurrent plan-wave steps must not lose each other's writes.
        self._write_lock = threading.Lock()
        self._result_hits = 0
        self._result_misses = 0
        self._fragment_hits = 0
        self._fragment_misses = 0
        self._calls_saved = 0
        self._invalidations = 0
        # Optional observability registry (attach_registry): mirrors
        # hit/miss counters into named metrics.  None costs nothing.
        self._registry = None
        # Prior bumps recorded in an attached persistent file are
        # history, not invalidations observed by *this* tier.
        self._last_seen_gen = self._fragments.generation(self.scope.scope_id)

    @staticmethod
    def from_config(
        config: EngineConfig, clock: Optional[Callable[[], float]] = None
    ) -> "StorageTier":
        return StorageTier(
            mode=config.storage_mode,
            budget_bytes=config.storage_budget_bytes,
            ttl_s=config.storage_ttl_s,
            clock=clock,
            backend=config.storage_backend,
            path=config.storage_path,
            scope=config.storage_scope,
            scope_ttl_s=config.scope_ttl_s,
        )

    # ------------------------------------------------------------------
    # Scoped keys
    # ------------------------------------------------------------------

    def _observe_generation(self, store: StoreBackend) -> int:
        """The scope's current stamp, counting observed bumps.

        Reading the stamp *on every access* is what makes invalidation
        cross-process: another process bumps the shared file's stamp,
        and the next key we build here lands in the new namespace — the
        old entries are simply never addressed again.
        """
        gen = store.generation(self.scope.scope_id)
        with self._lock:
            if gen > self._last_seen_gen:
                self._invalidations += gen - self._last_seen_gen
                self._last_seen_gen = gen
        return gen

    def _scoped(self, store: StoreBackend, key: Tuple) -> Tuple:
        """Prefix a logical key with ``(level, tenant, generation)``."""
        return self.scope.prefix + (self._observe_generation(store), *key)

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def result_cache_active(self, config: EngineConfig) -> bool:
        """Serve/store whole results?

        Both the tier *and* the engine config must enable storage (an
        injected shared tier never overrides a storage-off config), and
        the config must be deterministic.
        """
        return (
            self.mode != "off"
            and config.storage_mode != "off"
            and deterministic_config(config)
        )

    def materialize_active(self, config: EngineConfig) -> bool:
        """Serve/store fragments?  Tier and config must both opt in."""
        return (
            self.mode == "materialize"
            and config.storage_mode == "materialize"
            and deterministic_config(config)
        )

    # ------------------------------------------------------------------
    # Result cache
    # ------------------------------------------------------------------

    @staticmethod
    def result_key(
        model_name: str,
        config: EngineConfig,
        normalized_sql: str,
        catalog: str = "",
    ) -> Tuple:
        return (
            "result",
            model_name,
            semantic_fingerprint(config),
            catalog,
            normalized_sql,
        )

    @staticmethod
    def fragment_scope(
        model_name: str, config: EngineConfig, catalog: str = ""
    ) -> Tuple:
        """The namespace fragments live under.

        Model identity, the semantic config fingerprint, *and* the
        engine's catalog fingerprint: a tier shared across engines or
        processes must neither serve one model's rows as another's, nor
        mix fragments across configs that retrieve differently
        (validation, page sizes, pushdown, ...), nor serve entries
        materialized under a different set of registered
        schemas/constraints.  The catalog fingerprint is what lets a
        restarted process that registers the *same* catalog reuse the
        persistent store instead of wiping it.
        """
        return (model_name, semantic_fingerprint(config), catalog)

    def attach_registry(self, registry) -> None:
        """Mirror probe counters into an observability registry."""
        self._registry = registry

    def _count_probe(self, name: str, amount: int = 1) -> None:
        registry = self._registry
        if registry is not None and amount > 0:
            registry.counter(name).inc(amount)

    def get_result(self, key: Tuple) -> Optional[CachedResult]:
        entry = self._results.get(self._scoped(self._results, key))
        with self._lock:
            if entry is None:
                self._result_misses += 1
            else:
                self._result_hits += 1
                self._calls_saved += entry.calls
        if entry is None:
            self._count_probe(obs_metrics.RESULT_MISSES_TOTAL)
        else:
            self._count_probe(obs_metrics.RESULT_HITS_TOTAL)
        return entry

    def put_result(
        self,
        key: Tuple,
        schema: TableSchema,
        rows: Sequence[Sequence[Value]],
        explain_text: str,
        warnings: Sequence[str],
        calls: int,
    ) -> None:
        entry = CachedResult(
            schema=schema,
            rows=tuple(tuple(row) for row in rows),
            explain_text=explain_text,
            warnings=tuple(warnings),
            calls=calls,
        )
        self._results.put(
            self._scoped(self._results, key),
            entry,
            approx_bytes(entry),
            ttl_s=self._entry_ttl,
        )

    # ------------------------------------------------------------------
    # Scan fragments
    # ------------------------------------------------------------------

    @staticmethod
    def _scan_key(
        scope: Tuple,
        table_name: str,
        condition: Optional[str],
        order: Optional[Tuple[str, bool]],
    ) -> Tuple:
        # Model identity partitions fragments: a tier shared across
        # engines must never serve one model's rows as another's.
        order_key = ""
        if order is not None:
            order_key = f"{order[0].lower()}:{'desc' if order[1] else 'asc'}"
        return ("scan", scope, table_name.lower(), condition or "", order_key)

    def scan_fragment(
        self,
        scope: Tuple,
        table_name: str,
        condition: Optional[str],
        order: Optional[Tuple[str, bool]],
    ) -> Optional[ScanFragment]:
        """The stored fragment for a scan shape, or None (no counters)."""
        return self._fragments.get(
            self._scoped(
                self._fragments,
                self._scan_key(scope, table_name, condition, order),
            )
        )

    def store_scan_fragment(
        self,
        scope: Tuple,
        table_name: str,
        condition: Optional[str],
        order: Optional[Tuple[str, bool]],
        fragment: ScanFragment,
    ) -> None:
        """Store a fragment, merging columns with a compatible entry."""
        key = self._scoped(
            self._fragments, self._scan_key(scope, table_name, condition, order)
        )
        with self._write_lock:
            existing = self._fragments.peek(key)
            if existing is not None:
                # Equal-length fragments merge their columns (both are
                # prefixes of the same deterministic enumeration, so
                # position identifies the row); the remaining guards
                # only see fragments of different lengths.
                merged = fragment.merged_with(existing)
                if merged is not None:
                    fragment = merged
                elif existing.complete and not fragment.complete:
                    return  # never replace a complete fragment with a prefix
                elif (
                    not existing.complete
                    and not fragment.complete
                    and len(existing.rows) > len(fragment.rows)
                ):
                    return  # keep the longer already-paid-for prefix
            self._fragments.put(
                key, fragment, approx_bytes(fragment), ttl_s=self._entry_ttl
            )

    def peek_scan_fragment(
        self,
        scope: Tuple,
        table_name: str,
        condition: Optional[str],
        columns: Sequence[str],
    ) -> Optional[ScanFragment]:
        """A complete fragment covering ``columns``, else None.

        A planner-side probe: no counters, no LRU effect.  Only
        unordered complete fragments count — they can serve any
        order/limit by leaving ordering to exact local compute.  The
        planner *pins* the returned fragment on the scan step, so a
        coverage-routed plan stays servable even if the entry is
        evicted or expires between planning and execution.
        """
        fragment = self._fragments.peek(
            self._scoped(
                self._fragments,
                self._scan_key(scope, table_name, condition, None),
            )
        )
        if fragment is None or not fragment.complete:
            return None
        if not fragment.covers_columns(columns):
            return None
        return fragment

    # ------------------------------------------------------------------
    # Shard fragments
    # ------------------------------------------------------------------

    @staticmethod
    def _shard_key(
        scope: Tuple,
        table_name: str,
        condition: Optional[str],
        shard_index: int,
        shard_count: int,
        start: int,
    ) -> Tuple:
        return (
            "scan-shard",
            scope,
            table_name.lower(),
            condition or "",
            (shard_index, shard_count, start),
        )

    def shard_fragment(
        self,
        scope: Tuple,
        table_name: str,
        condition: Optional[str],
        shard_index: int,
        shard_count: int,
        start: int,
    ) -> Optional[ScanFragment]:
        """The stored fragment for one shard of a sharded scan."""
        return self._fragments.get(
            self._scoped(
                self._fragments,
                self._shard_key(
                    scope, table_name, condition, shard_index, shard_count, start
                ),
            )
        )

    def store_shard_fragment(
        self,
        scope: Tuple,
        table_name: str,
        condition: Optional[str],
        shard_index: int,
        shard_count: int,
        start: int,
        fragment: ScanFragment,
    ) -> None:
        """Store one shard chain's rows for same-shape reuse.

        Shard fragments serve a later scan sharded the *same way*
        (count and cursor range included in the key); the union of a
        fully-successful sharded scan is additionally stored as a
        whole-scan fragment, which is what routes future whole-table
        scans — sharded or not — to materialized data.
        """
        key = self._scoped(
            self._fragments,
            self._shard_key(
                scope, table_name, condition, shard_index, shard_count, start
            ),
        )
        self._fragments.put(
            key, fragment, approx_bytes(fragment), ttl_s=self._entry_ttl
        )

    # ------------------------------------------------------------------
    # Lookup cells
    # ------------------------------------------------------------------

    @staticmethod
    def _row_key(scope: Tuple, table_name: str, normalized_key: Tuple) -> Tuple:
        return ("row", scope, table_name.lower(), normalized_key)

    def lookup_cells(
        self,
        scope: Tuple,
        table_name: str,
        normalized_key: Tuple,
        attributes: Sequence[str],
        touch: bool = True,
    ) -> Optional[Tuple[bool, Optional[List[Value]]]]:
        """Serve one lookup key from the cell store.

        Returns ``None`` on miss, ``(True, values)`` when every
        requested attribute is cached, or ``(False, None)`` when the
        entity is recorded as unknown for these attributes.  Counters
        are the caller's job (it knows whether storage is consulted at
        all for the step); ``touch=False`` is the planner's
        recency-neutral probe.
        """
        store = self._fragments.get if touch else self._fragments.peek
        cells = store(
            self._scoped(
                self._fragments, self._row_key(scope, table_name, normalized_key)
            )
        )
        if cells is None:
            return None
        if cells.covers(attributes):
            return True, cells.values_for(attributes)
        if cells.is_negative_for(attributes):
            return False, None
        return None

    def store_lookup_row(
        self,
        scope: Tuple,
        table_name: str,
        normalized_key: Tuple,
        attributes: Sequence[str],
        values: Sequence[Value],
    ) -> None:
        key = self._scoped(
            self._fragments, self._row_key(scope, table_name, normalized_key)
        )
        with self._write_lock:
            cells: Optional[RowCells] = self._fragments.peek(key)
            cells = (cells or RowCells()).with_values(attributes, values)
            self._fragments.put(
                key,
                cells,
                approx_bytes(cells) + approx_bytes(normalized_key),
                ttl_s=self._entry_ttl,
            )

    def store_lookup_negative(
        self,
        scope: Tuple,
        table_name: str,
        normalized_key: Tuple,
        attributes: Sequence[str],
    ) -> None:
        key = self._scoped(
            self._fragments, self._row_key(scope, table_name, normalized_key)
        )
        with self._write_lock:
            cells: Optional[RowCells] = self._fragments.peek(key)
            cells = (cells or RowCells()).with_negative(attributes)
            self._fragments.put(
                key,
                cells,
                approx_bytes(cells) + approx_bytes(normalized_key),
                ttl_s=self._entry_ttl,
            )

    def peek_lookup_coverage(
        self,
        scope: Tuple,
        table_name: str,
        normalized_keys: Sequence[Tuple],
        attributes: Sequence[str],
    ) -> int:
        """How many of ``normalized_keys`` the cell store can serve."""
        covered = 0
        for normalized_key in normalized_keys:
            outcome = self.lookup_cells(
                scope, table_name, normalized_key, attributes, touch=False
            )
            if outcome is not None:
                covered += 1
        return covered

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------

    def record_fragment_hits(self, count: int = 1, calls_saved: int = 0) -> None:
        with self._lock:
            self._fragment_hits += count
            self._calls_saved += calls_saved
        self._count_probe(obs_metrics.FRAGMENT_HITS_TOTAL, count)

    def record_fragment_misses(self, count: int = 1) -> None:
        with self._lock:
            self._fragment_misses += count
        self._count_probe(obs_metrics.FRAGMENT_MISSES_TOTAL, count)

    def snapshot(self) -> StorageSnapshot:
        frag = self._fragments.snapshot_stats()
        res = self._results.snapshot_stats()
        with self._lock:
            return StorageSnapshot(
                result_hits=self._result_hits,
                result_misses=self._result_misses,
                fragment_hits=self._fragment_hits,
                fragment_misses=self._fragment_misses,
                calls_saved=self._calls_saved,
                evictions=frag[2] + res[2],
                expirations=frag[3] + res[3],
                oversized=frag[5] + res[5],
                persistent_hits=(frag[0] + res[0]) if self.persistent else 0,
                persistent_misses=(frag[1] + res[1]) if self.persistent else 0,
                invalidations=self._invalidations,
                backend=self.backend_name,
            )

    def reset_counters(self) -> None:
        with self._lock:
            self._result_hits = 0
            self._result_misses = 0
            self._fragment_hits = 0
            self._fragment_misses = 0
            self._calls_saved = 0
            self._invalidations = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Invalidate this scope's fragments and cached results.

        Physically drops the scope's entries from both stores *and*
        bumps the scope's generation stamp, so on a shared persistent
        backend every other process observes the invalidation on its
        next access (their reads move to the new stamp's namespace).
        Other scopes' entries are untouched.
        """
        prefix = self.scope.prefix
        self._fragments.remove_scope(prefix)
        self._results.remove_scope(prefix)
        scope_id = self.scope.scope_id
        new_gen = self._fragments.bump_generation(scope_id)
        # Persistent backends share one generations table per file; a
        # second bump there would double-count the invalidation.  The
        # in-memory pair keeps separate per-store stamps and needs both
        # advanced in lockstep.
        if self._results.generation(scope_id) < new_gen:
            self._results.bump_generation(scope_id)
        gen = self._fragments.generation(scope_id)
        with self._lock:
            # Our own bumps count as observed invalidations too — the
            # counter reports invalidation events, whoever caused them.
            self._invalidations += max(0, gen - self._last_seen_gen)
            self._last_seen_gen = gen

    @property
    def bytes_used(self) -> int:
        return self._fragments.bytes_used + self._results.bytes_used

    def describe(self) -> str:
        """One-line status for the REPL's ``.storage`` command."""
        snap = self.snapshot()
        text = (
            f"mode={self.mode} backend={self.backend_name} "
            f"scope={self.scope.scope_id} "
            f"bytes={self.bytes_used}/{self.budget_bytes} "
            f"results {snap.result_hits}h/{snap.result_misses}m, "
            f"fragments {snap.fragment_hits}h/{snap.fragment_misses}m, "
            f"{snap.calls_saved} call(s) saved, "
            f"{snap.evictions} evicted, {snap.expirations} expired"
        )
        if self.persistent:
            text += (
                f", persistent {snap.persistent_hits}h/"
                f"{snap.persistent_misses}m, "
                f"{snap.invalidations} invalidation(s)"
            )
        if self.backend_note:
            text += f" [{self.backend_note}]"
        return text
