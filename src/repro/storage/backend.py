"""The store backend protocol and multi-tenant scope machinery.

The storage tier composes over any :class:`StoreBackend` — a
byte-budgeted key/value store with TTL semantics matching
:class:`~repro.storage.store.LRUByteStore` (which is the in-memory
implementation) plus two multi-tenancy primitives:

* **scope-prefixed removal** — every key the tier writes starts with a
  ``(level, tenant)`` prefix, so one scope's entries can be dropped
  without touching any other tenant's;
* **generation stamps** — a monotonic per-scope counter.  The tier
  includes the current stamp in every key it reads or writes, so
  bumping the stamp (``clear()``-style invalidation) makes all older
  entries unreachable *for every process sharing the backend*: the next
  access in any process reads the new stamp and stops seeing them.

:class:`StorageScope` carries the access level (``session`` | ``user``
| ``application``) and the tenant identity inside it.  Scopes are
strictly isolated by key prefix — a scope can never serve another
scope's entries — and the existing (model identity, semantic config)
fragment scope nests inside the tenant prefix.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Protocol, Tuple

from repro.config import SCOPE_LEVELS, parse_storage_scope

__all__ = [
    "SCOPE_LEVELS",
    "StorageScope",
    "StoreBackend",
    "build_backends",
]


class StoreBackend(Protocol):
    """What the storage tier needs from a store.

    Semantics (matching :class:`~repro.storage.store.LRUByteStore`):
    ``get`` bumps recency and counts a hit/miss/expiration; ``peek`` is
    strictly read-only (an expired entry reports a miss without being
    deleted or counted); ``put`` admits under a byte budget with LRU
    eviction, an optional explicit size, and an optional per-entry TTL
    override; ``remove``/``clear`` drop entries without stat mutation.
    ``stats`` counters are process-local and reset with the session —
    a persistent backend's *entries* outlive the process, its counters
    do not.
    """

    name: str
    persistent: bool

    def get(self, key: Hashable) -> Optional[Any]: ...

    def peek(self, key: Hashable) -> Optional[Any]: ...

    def put(
        self,
        key: Hashable,
        payload: Any,
        size: Optional[int] = None,
        ttl_s: Optional[float] = None,
    ) -> None: ...

    def remove(self, key: Hashable) -> None: ...

    def clear(self) -> None: ...

    def remove_scope(self, prefix: Tuple) -> int: ...

    def generation(self, scope_id: str) -> int: ...

    def bump_generation(self, scope_id: str) -> int: ...

    def snapshot_stats(self) -> Tuple[int, int, int, int, int, int]: ...

    @property
    def budget_bytes(self) -> int: ...

    @property
    def bytes_used(self) -> int: ...


#: Default tenant per level when the scope string names none.  A
#: session without an explicit tenant must never share with another
#: session, so its default is a fresh unique id (minted per tier);
#: user/application default to one shared tenant.
_SHARED_DEFAULT_TENANT = {"user": "default", "application": "shared"}


@dataclass(frozen=True)
class StorageScope:
    """One tenant's namespace: access level + identity within it."""

    level: str
    tenant: str

    @staticmethod
    def parse(scope: str) -> "StorageScope":
        """Build from ``"level"`` / ``"level:tenant"`` config syntax."""
        level, tenant = parse_storage_scope(scope)
        if tenant is None:
            tenant = _SHARED_DEFAULT_TENANT.get(level) or uuid.uuid4().hex
        return StorageScope(level=level, tenant=tenant)

    @property
    def scope_id(self) -> str:
        """The string form generation stamps are keyed by."""
        return f"{self.level}:{self.tenant}"

    @property
    def prefix(self) -> Tuple[str, str]:
        """The key prefix isolating this scope's entries."""
        return (self.level, self.tenant)


def build_backends(
    backend: str,
    budget_bytes: int,
    ttl_s: float,
    clock=None,
    path: Optional[str] = None,
) -> Tuple[StoreBackend, StoreBackend, Optional[str]]:
    """A ``(fragments, results)`` backend pair, plus a fallback note.

    ``sqlite`` backends share one WAL-mode file (two logical stores);
    a file that cannot be opened — corrupt, locked, unwritable — does
    not fail the engine: the pair degrades to in-memory stores and the
    reason is returned as the third element for surfacing in
    ``.storage`` output.
    """
    import time

    from repro.storage.store import LRUByteStore

    note = None
    if backend == "sqlite":
        from repro.storage.persistent import SqliteBackend, StorageBackendError

        try:
            fragments = SqliteBackend(
                path, budget_bytes, ttl_s, clock=clock, store="fragments"
            )
            results = SqliteBackend(
                path, budget_bytes, ttl_s, clock=clock, store="results"
            )
            return fragments, results, None
        except StorageBackendError as exc:
            note = f"sqlite backend unavailable ({exc}); using memory"
    clock = clock or time.monotonic
    return (
        LRUByteStore(budget_bytes, ttl_s, clock),
        LRUByteStore(budget_bytes, ttl_s, clock),
        note,
    )
