"""Materialized fragment payloads.

Two fragment shapes cover the engine's retrieval operators:

* :class:`ScanFragment` — the full (or limit-truncated) output of one
  enumeration: an ordered row set for a ``(table, condition, order)``
  key, with the column set it covers.  Fragments widen over time: a
  residual column fetch merges new columns into the stored rows.
* :class:`RowCells` — per-entity lookup knowledge: the cells retrieved
  for one primary-key value, plus the attribute sets for which the
  model declared the entity unknown (negative knowledge, so repeated
  probes for a missing entity stay free).

Payloads store *post-validation* values: serving a fragment reproduces
exactly the local table a fresh retrieval would have built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.relational.types import Value
from repro.storage.store import approx_bytes


@dataclass(frozen=True)
class ScanFragment:
    """One materialized enumeration result.

    Attributes:
        columns: fetched columns, in fetch order.
        rows: row tuples in ``columns`` order, in enumeration order.
        complete: the scan ended naturally (the fragment holds *every*
            row the model would enumerate for its condition).  A
            ``False`` fragment was truncated by a limit hint and can
            only serve scans requesting at most ``len(rows)`` rows.
        source_calls: model calls paid to materialize the fragment;
            re-serving it saves this many calls.
    """

    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Value, ...], ...]
    complete: bool
    source_calls: int = 0

    def __approx_bytes__(self) -> int:
        # Sized on logical content (not a pickled encoding), so the
        # memory and persistent backends charge identical sizes and
        # evict at the same budget boundaries.
        return approx_bytes(self.rows) + approx_bytes(self.columns) + 96

    def column_index(self) -> Dict[str, int]:
        return {name.lower(): i for i, name in enumerate(self.columns)}

    def covers_columns(self, wanted: Sequence[str]) -> bool:
        have = {name.lower() for name in self.columns}
        return all(name.lower() in have for name in wanted)

    def missing_columns(self, wanted: Sequence[str]) -> List[str]:
        have = {name.lower() for name in self.columns}
        return [name for name in wanted if name.lower() not in have]

    def project(
        self, wanted: Sequence[str], limit: Optional[int] = None
    ) -> List[List[Value]]:
        """Rows restricted to ``wanted`` columns (must be covered)."""
        index = self.column_index()
        positions = [index[name.lower()] for name in wanted]
        rows = self.rows if limit is None else self.rows[:limit]
        return [[row[p] for p in positions] for row in rows]

    def widened(
        self,
        new_columns: Sequence[str],
        values_by_row: Sequence[Sequence[Value]],
    ) -> "ScanFragment":
        """A copy with ``new_columns`` appended to every row."""
        assert len(values_by_row) == len(self.rows)
        rows = tuple(
            tuple(row) + tuple(extra)
            for row, extra in zip(self.rows, values_by_row)
        )
        return ScanFragment(
            columns=self.columns + tuple(new_columns),
            rows=rows,
            complete=self.complete,
            source_calls=self.source_calls,
        )

    def merged_with(self, other: "ScanFragment") -> Optional["ScanFragment"]:
        """Positional column union with ``other``; None when unsafe.

        Only fragments of equal length merge: both are prefixes (from
        cursor 0) of the same deterministic enumeration for the same
        scan shape, so equal length means the same rows in the same
        order and position identifies the entity.  This covers complete
        pairs, incomplete (early-exited) prefix pairs, and the mixed
        case — an incomplete prefix as long as a complete enumeration
        holds every row, so the union keeps the ``complete`` mark.
        """
        if len(self.rows) != len(other.rows):
            return None
        index = self.column_index()
        extra_positions = [
            (name, i)
            for i, name in enumerate(other.columns)
            if name.lower() not in index
        ]
        complete = self.complete or other.complete
        if not extra_positions:
            if complete == self.complete:
                return self
            return ScanFragment(
                columns=self.columns,
                rows=self.rows,
                complete=complete,
                source_calls=max(self.source_calls, other.source_calls),
            )
        rows = tuple(
            tuple(row) + tuple(other_row[i] for _, i in extra_positions)
            for row, other_row in zip(self.rows, other.rows)
        )
        return ScanFragment(
            columns=self.columns + tuple(name for name, _ in extra_positions),
            rows=rows,
            complete=complete,
            source_calls=max(self.source_calls, other.source_calls),
        )


@dataclass
class RowCells:
    """Cached lookup knowledge for one ``(table, primary key)`` entity.

    ``cells`` maps lower-cased column name to the validated value the
    model returned (``None`` is a real stored value: the model answered
    NULL).  ``negative_attrs`` records attribute sets for which the
    model declared the whole entity unknown; a request whose attributes
    are covered by one recorded set is served as "no row" without a
    call.
    """

    cells: Dict[str, Value] = field(default_factory=dict)
    negative_attrs: Tuple[FrozenSet[str], ...] = ()

    def __approx_bytes__(self) -> int:
        return approx_bytes(self.cells) + approx_bytes(self.negative_attrs) + 64

    def covers(self, attributes: Sequence[str]) -> bool:
        return all(name.lower() in self.cells for name in attributes)

    def values_for(self, attributes: Sequence[str]) -> List[Value]:
        return [self.cells[name.lower()] for name in attributes]

    def is_negative_for(self, attributes: Sequence[str]) -> bool:
        wanted = frozenset(name.lower() for name in attributes)
        return any(wanted <= recorded for recorded in self.negative_attrs)

    def with_values(
        self, attributes: Sequence[str], values: Sequence[Value]
    ) -> "RowCells":
        cells = dict(self.cells)
        for name, value in zip(attributes, values):
            cells[name.lower()] = value
        known = set(cells)
        negatives = tuple(
            recorded
            for recorded in self.negative_attrs
            if not (recorded & known)
        )
        return RowCells(cells=cells, negative_attrs=negatives)

    def with_negative(self, attributes: Sequence[str]) -> "RowCells":
        recorded = frozenset(name.lower() for name in attributes)
        if any(recorded <= existing for existing in self.negative_attrs):
            return self
        return RowCells(
            cells=dict(self.cells),
            negative_attrs=self.negative_attrs + (recorded,),
        )
