"""Persistent store backend: a single process-safe SQLite file.

One file holds every logical store of the tier (``fragments`` and
``results`` rows are partitioned by a ``store`` column) plus the
per-scope generation stamps that implement cross-process invalidation.
The file is opened in WAL mode so concurrent processes — the serving
layer's workers, parallel CLI invocations, a restarted session — can
read and write it simultaneously; every mutation runs in an
``IMMEDIATE`` transaction under a busy timeout.

Semantics mirror :class:`~repro.storage.store.LRUByteStore` exactly:

* byte budget with LRU eviction (recency is a monotonic ``last_used``
  sequence shared through the file, so LRU order is global across
  processes, not per connection);
* TTL expiry on access, with per-entry overrides (entries carry the
  writing scope's TTL, so readers honor it regardless of their own
  configuration);
* ``peek`` strictly read-only; the oversized-admission policy and its
  counter; hit/miss/eviction/expiration stats (process-local, like the
  memory store's — entries persist, counters reset with the session).

Sizing is deterministic: entries are sized by :func:`approx_bytes` over
the *logical* payload before pickling (payload classes define
``__approx_bytes__``), never by the encoded blob — so the memory and
persistent backends evict at the same budget boundaries.

Degradation is graceful and ``error:``-free: a corrupt, locked, or
unwritable file raises :class:`StorageBackendError` at open (the tier
falls back to memory and notes why), and an I/O failure mid-session
flips the instance onto an in-memory store so the engine keeps
answering queries.
"""

from __future__ import annotations

import pickle
import sqlite3
import threading
import time
from typing import Any, Callable, Hashable, Optional, Tuple

from repro.storage.store import LRUByteStore, StoreStats, approx_bytes

__all__ = ["SqliteBackend", "StorageBackendError"]


class StorageBackendError(Exception):
    """A persistent backend could not be opened or kept alive."""


_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    store     TEXT NOT NULL,
    key       TEXT NOT NULL,
    payload   BLOB NOT NULL,
    size      INTEGER NOT NULL,
    stored_at REAL NOT NULL,
    ttl_s     REAL NOT NULL,
    last_used INTEGER NOT NULL,
    PRIMARY KEY (store, key)
);
CREATE INDEX IF NOT EXISTS entries_lru ON entries (store, last_used);
CREATE TABLE IF NOT EXISTS generations (
    scope TEXT PRIMARY KEY,
    gen   INTEGER NOT NULL
);
"""


def encode_key(key: Hashable) -> str:
    """Canonical text form of a tier key.

    Keys are tuples of primitives (strings, numbers, bools, None,
    nested tuples), whose ``repr`` is deterministic across processes
    and Python versions — unlike pickle bytes, which may differ by
    memoization.  The tuple repr is also prefix-stable: the repr of
    ``(a, b)`` minus its closing paren prefixes the repr of
    ``(a, b, *rest)``, which is what scope removal matches on.
    """
    return repr(key)


def scope_prefix_pattern(prefix: Tuple) -> str:
    """The encoded-key prefix every key under ``prefix`` starts with."""
    text = repr(prefix)
    if text.endswith(",)"):  # 1-tuple: ('a',) -> "('a',"
        return text[:-1]
    return text[:-1] + ","  # ('a', 'b') -> "('a', 'b',"


class SqliteBackend:
    """A :class:`~repro.storage.backend.StoreBackend` over one file."""

    name = "sqlite"
    persistent = True

    def __init__(
        self,
        path: str,
        budget_bytes: int,
        ttl_s: float = 0.0,
        clock: Optional[Callable[[], float]] = None,
        store: str = "store",
    ):
        self._path = path
        self._budget_bytes = max(1, int(budget_bytes))
        self._ttl_s = float(ttl_s)
        # Wall clock, not monotonic: timestamps must mean the same
        # thing to every process sharing the file.
        self._clock = clock or time.time
        self._store = store
        self._lock = threading.RLock()
        self._fallback: Optional[LRUByteStore] = None
        self.failure_note: Optional[str] = None
        self.stats = StoreStats()
        try:
            self._conn = sqlite3.connect(
                path, timeout=5.0, check_same_thread=False
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=5000")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
        except (sqlite3.Error, OSError, ValueError) as exc:
            raise StorageBackendError(str(exc)) from exc

    # ------------------------------------------------------------------
    # Degradation
    # ------------------------------------------------------------------

    def _degrade(self, exc: Exception) -> LRUByteStore:
        """Swap in an empty in-memory store after an I/O failure.

        The session keeps working (warm entries are lost, correctness
        is not: a miss only means re-paying the model).  The reason is
        kept for the tier's ``.storage`` rendering.
        """
        if self._fallback is None:
            self.failure_note = f"sqlite degraded to memory ({exc})"
            fallback = LRUByteStore(self._budget_bytes, self._ttl_s)
            fallback.stats = self.stats  # keep one counter stream
            self._fallback = fallback
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
        return self._fallback

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def budget_bytes(self) -> int:
        return self._budget_bytes

    @property
    def bytes_used(self) -> int:
        with self._lock:
            if self._fallback is not None:
                return self._fallback.bytes_used
            try:
                row = self._conn.execute(
                    "SELECT COALESCE(SUM(size), 0) FROM entries WHERE store = ?",
                    (self._store,),
                ).fetchone()
                return int(row[0])
            except sqlite3.Error as exc:
                return self._degrade(exc).bytes_used

    def __len__(self) -> int:
        with self._lock:
            if self._fallback is not None:
                return len(self._fallback)
            try:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM entries WHERE store = ?",
                    (self._store,),
                ).fetchone()
                return int(row[0])
            except sqlite3.Error as exc:
                return len(self._degrade(exc))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def _expired(self, stored_at: float, ttl_s: float) -> bool:
        return ttl_s > 0 and self._clock() - stored_at >= ttl_s

    def _next_seq(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(MAX(last_used), 0) + 1 FROM entries"
        ).fetchone()
        return int(row[0])

    def get(self, key: Hashable) -> Optional[Any]:
        """The payload for ``key``, bumping recency; None on miss/expiry."""
        text = encode_key(key)
        with self._lock:
            if self._fallback is not None:
                return self._fallback.get(key)
            try:
                with self._conn:  # one transaction per access
                    row = self._conn.execute(
                        "SELECT payload, stored_at, ttl_s FROM entries "
                        "WHERE store = ? AND key = ?",
                        (self._store, text),
                    ).fetchone()
                    if row is None:
                        self.stats.misses += 1
                        return None
                    payload_blob, stored_at, ttl_s = row
                    if self._expired(stored_at, ttl_s):
                        self._conn.execute(
                            "DELETE FROM entries WHERE store = ? AND key = ?",
                            (self._store, text),
                        )
                        self.stats.expirations += 1
                        self.stats.misses += 1
                        return None
                    self._conn.execute(
                        "UPDATE entries SET last_used = ? "
                        "WHERE store = ? AND key = ?",
                        (self._next_seq(), self._store, text),
                    )
                self.stats.hits += 1
                return pickle.loads(payload_blob)
            except (sqlite3.Error, pickle.PickleError) as exc:
                return self._degrade(exc).get(key)

    def peek(self, key: Hashable) -> Optional[Any]:
        """Like :meth:`get` but strictly read-only (planner probes)."""
        text = encode_key(key)
        with self._lock:
            if self._fallback is not None:
                return self._fallback.peek(key)
            try:
                row = self._conn.execute(
                    "SELECT payload, stored_at, ttl_s FROM entries "
                    "WHERE store = ? AND key = ?",
                    (self._store, text),
                ).fetchone()
                if row is None:
                    return None
                payload_blob, stored_at, ttl_s = row
                if self._expired(stored_at, ttl_s):
                    return None
                return pickle.loads(payload_blob)
            except (sqlite3.Error, pickle.PickleError) as exc:
                return self._degrade(exc).peek(key)

    def put(
        self,
        key: Hashable,
        payload: Any,
        size: Optional[int] = None,
        ttl_s: Optional[float] = None,
    ) -> None:
        """Insert or replace ``key``; evicts LRU entries over budget.

        Mirrors the memory store: replacing a dead entry records an
        expiration, oversized entries are admitted alone and counted,
        and ``size`` defaults to :func:`approx_bytes` over the logical
        payload — *before* pickling, so both backends agree on budgets.
        """
        if size is None:
            size = approx_bytes(payload)
        size = max(1, int(size))
        entry_ttl = self._ttl_s if ttl_s is None else float(ttl_s)
        text = encode_key(key)
        with self._lock:
            if self._fallback is not None:
                self._fallback.put(key, payload, size=size, ttl_s=ttl_s)
                return
            try:
                blob = pickle.dumps(payload, protocol=4)
                with self._conn:
                    old = self._conn.execute(
                        "SELECT stored_at, ttl_s FROM entries "
                        "WHERE store = ? AND key = ?",
                        (self._store, text),
                    ).fetchone()
                    if old is not None and self._expired(old[0], old[1]):
                        self.stats.expirations += 1
                    self._conn.execute(
                        "INSERT OR REPLACE INTO entries "
                        "(store, key, payload, size, stored_at, ttl_s, last_used) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?)",
                        (
                            self._store,
                            text,
                            blob,
                            size,
                            self._clock(),
                            entry_ttl,
                            self._next_seq(),
                        ),
                    )
                    self.stats.stored += 1
                    if size > self._budget_bytes:
                        self.stats.oversized += 1
                    self._evict_over_budget()
            except (sqlite3.Error, pickle.PickleError) as exc:
                self._degrade(exc).put(key, payload, size=size, ttl_s=ttl_s)

    def _evict_over_budget(self) -> None:
        """Drop least-recently-used rows while over budget (keep >= 1)."""
        while True:
            used, count = self._conn.execute(
                "SELECT COALESCE(SUM(size), 0), COUNT(*) FROM entries "
                "WHERE store = ?",
                (self._store,),
            ).fetchone()
            if used <= self._budget_bytes or count <= 1:
                return
            self._conn.execute(
                "DELETE FROM entries WHERE store = ?1 AND key = ("
                "SELECT key FROM entries WHERE store = ?1 "
                "ORDER BY last_used ASC LIMIT 1)",
                (self._store,),
            )
            self.stats.evictions += 1

    def remove(self, key: Hashable) -> None:
        with self._lock:
            if self._fallback is not None:
                self._fallback.remove(key)
                return
            try:
                with self._conn:
                    self._conn.execute(
                        "DELETE FROM entries WHERE store = ? AND key = ?",
                        (self._store, encode_key(key)),
                    )
            except sqlite3.Error as exc:
                self._degrade(exc).remove(key)

    def clear(self) -> None:
        with self._lock:
            if self._fallback is not None:
                self._fallback.clear()
                return
            try:
                with self._conn:
                    self._conn.execute(
                        "DELETE FROM entries WHERE store = ?", (self._store,)
                    )
            except sqlite3.Error as exc:
                self._degrade(exc).clear()

    def remove_scope(self, prefix: Tuple) -> int:
        """Delete every key of one ``(level, tenant)`` scope prefix."""
        pattern = scope_prefix_pattern(prefix)
        with self._lock:
            if self._fallback is not None:
                return self._fallback.remove_scope(prefix)
            try:
                with self._conn:
                    cursor = self._conn.execute(
                        "DELETE FROM entries WHERE store = ? "
                        "AND substr(key, 1, ?) = ?",
                        (self._store, len(pattern), pattern),
                    )
                    return cursor.rowcount
            except sqlite3.Error as exc:
                return self._degrade(exc).remove_scope(prefix)

    # ------------------------------------------------------------------
    # Scope generations (cross-process invalidation)
    # ------------------------------------------------------------------

    def generation(self, scope_id: str) -> int:
        """The scope's stamp as currently recorded *in the file* — a
        bump by any process is observed here by all of them."""
        with self._lock:
            if self._fallback is not None:
                return self._fallback.generation(scope_id)
            try:
                row = self._conn.execute(
                    "SELECT gen FROM generations WHERE scope = ?", (scope_id,)
                ).fetchone()
                return int(row[0]) if row is not None else 0
            except sqlite3.Error as exc:
                return self._degrade(exc).generation(scope_id)

    def bump_generation(self, scope_id: str) -> int:
        with self._lock:
            if self._fallback is not None:
                return self._fallback.bump_generation(scope_id)
            try:
                with self._conn:
                    self._conn.execute(
                        "INSERT INTO generations (scope, gen) VALUES (?, 1) "
                        "ON CONFLICT(scope) DO UPDATE SET gen = gen + 1",
                        (scope_id,),
                    )
                    row = self._conn.execute(
                        "SELECT gen FROM generations WHERE scope = ?",
                        (scope_id,),
                    ).fetchone()
                    return int(row[0])
            except sqlite3.Error as exc:
                return self._degrade(exc).bump_generation(scope_id)

    # ------------------------------------------------------------------
    # Stats / lifecycle
    # ------------------------------------------------------------------

    def snapshot_stats(self) -> Tuple[int, int, int, int, int, int]:
        with self._lock:
            stats = self.stats
            return (
                stats.hits,
                stats.misses,
                stats.evictions,
                stats.expirations,
                stats.stored,
                stats.oversized,
            )

    def close(self) -> None:
        with self._lock:
            if self._fallback is None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
