"""Adaptive materialization storage tier.

Repeated traffic is the dominant cost of an LLM-as-storage engine:
without local storage every query re-pays model calls for rows the
session has already retrieved.  This package adds a session-scoped
tier between the planner/executor and the model:

* :class:`~repro.storage.tier.StorageTier` — the facade: a normalized
  query-result cache plus a fragment store with LRU/TTL eviction under
  a byte budget.
* :mod:`repro.storage.fragments` — scan fragments and per-entity
  lookup cells (including negative knowledge).
* :mod:`repro.storage.normalize` — canonical cache keys from bound
  ASTs (whitespace / keyword-case / alias variants collapse).
* :mod:`repro.storage.store` — the byte-budgeted LRU/TTL substrate and
  in-memory store backend.
* :mod:`repro.storage.backend` — the pluggable
  :class:`~repro.storage.backend.StoreBackend` protocol and the
  multi-tenant :class:`~repro.storage.backend.StorageScope` machinery
  (scope-prefixed keys, per-scope TTLs, generation-stamp
  invalidation).
* :mod:`repro.storage.persistent` — the process-shared SQLite backend
  (``storage_backend='sqlite'``): one WAL-mode file under which the
  warm tier outlives the session and is shared by concurrent
  processes.

Enabled via ``EngineConfig.storage_mode`` (``off`` | ``result_cache``
| ``materialize``); serving is gated to deterministic configurations
so results stay byte-identical to the storage-off engine.
"""

from repro.storage.backend import StorageScope, StoreBackend, build_backends
from repro.storage.fragments import RowCells, ScanFragment
from repro.storage.normalize import canonical_sql_key
from repro.storage.persistent import SqliteBackend, StorageBackendError
from repro.storage.store import LRUByteStore, approx_bytes
from repro.storage.tier import (
    STORAGE_MODES,
    CachedResult,
    StorageSnapshot,
    StorageTier,
    deterministic_config,
)

__all__ = [
    "STORAGE_MODES",
    "CachedResult",
    "LRUByteStore",
    "RowCells",
    "ScanFragment",
    "SqliteBackend",
    "StorageBackendError",
    "StorageScope",
    "StorageSnapshot",
    "StorageTier",
    "StoreBackend",
    "approx_bytes",
    "build_backends",
    "canonical_sql_key",
    "deterministic_config",
]
