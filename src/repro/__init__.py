"""repro — Large Language Models as Storage for SQL Querying (ICDE 2024).

A complete reproduction of the LLM-as-storage line of work: a SQL engine
that answers queries over *virtual tables* whose rows live in a language
model, by compiling relational operators into targeted prompts and
running all exact compute locally.

Public surface:

* :class:`~repro.core.engine.LLMStorageEngine` — the decomposed engine
  (the paper's contribution).
* :class:`~repro.config.EngineConfig` — planner/runtime knobs.
* :mod:`repro.baselines` — direct prompting, naive decomposition, and
  the materialized ground truth.
* :mod:`repro.llm` — the model interface plus the simulated, seedable
  model used offline.
* :mod:`repro.eval` — metrics, synthetic worlds, workloads, and the
  experiment harness that regenerates every table and figure.
"""

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.core.results import QueryResult
from repro.core.virtual import ColumnConstraint
from repro.storage import StorageTier

__version__ = "1.0.0"

__all__ = [
    "EngineConfig",
    "LLMStorageEngine",
    "QueryResult",
    "ColumnConstraint",
    "StorageTier",
    "__version__",
]
