"""Baseline engines the decomposed engine is evaluated against.

* :class:`~repro.baselines.direct.DirectPromptEngine` — the whole SQL
  query in one prompt, one completion, no decomposition.
* :func:`~repro.baselines.naive.naive_engine` — the decomposed engine
  with every optimization disabled (no pushdown, no lookup joins, no
  caching, no batching).
* :class:`~repro.baselines.materialized.MaterializedEngine` — classical
  SQL over the ground-truth world; the accuracy oracle and the zero-cost
  reference point.
"""

from repro.baselines.direct import DirectPromptEngine
from repro.baselines.materialized import MaterializedEngine
from repro.baselines.naive import naive_engine

__all__ = ["DirectPromptEngine", "MaterializedEngine", "naive_engine"]
