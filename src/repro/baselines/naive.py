"""The unoptimized decomposed engine.

Same decomposition machinery, every optimization off: full-table scans
(no predicate pushdown), no lookup joins (both join sides enumerated),
no caching, lookups one entity per call.  Comparing it with the default
configuration isolates what the optimizer buys (Figures 4 and 6).
"""

from __future__ import annotations

from typing import Optional

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.llm.accounting import Budget, PriceModel
from repro.llm.interface import LanguageModel


def naive_engine(
    model: LanguageModel,
    price_model: PriceModel = PriceModel(),
    budget: Optional[Budget] = None,
    **config_overrides,
) -> LLMStorageEngine:
    """Build a decomposed engine with all optimizations disabled."""
    config = EngineConfig.naive()
    if config_overrides:
        config = config.with_(**config_overrides)
    engine = LLMStorageEngine(
        model, config=config, price_model=price_model, budget=budget
    )
    engine.name = "naive"
    return engine
