"""Direct prompting baseline: the whole query in one prompt.

This is the regime decomposition is measured against: the model must
emulate scans, joins, aggregation and sorting in-context, and must fit
the entire result into one output budget.  The engine side only parses
and types the answer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.config import EngineConfig
from repro.core.results import QueryResult
from repro.errors import LLMProtocolError
from repro.llm.accounting import Budget, MeteredModel, PriceModel, UsageMeter
from repro.llm.interface import CompletionOptions, LanguageModel
from repro.prompts.direct import DirectRequest, build_direct_prompt
from repro.prompts.parsing import parse_direct_completion
from repro.relational.catalog import Catalog
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.sql.printer import print_statement


class DirectPromptEngine:
    """One prompt per query; the model is the whole execution engine."""

    name = "direct"

    def __init__(
        self,
        model: LanguageModel,
        config: EngineConfig = EngineConfig(),
        price_model: PriceModel = PriceModel(),
        budget: Optional[Budget] = None,
    ):
        self._meter = UsageMeter(price_model, budget)
        self._model = MeteredModel(model, self._meter)
        self._config = config
        self._catalog = Catalog()
        self._schemas: Dict[str, TableSchema] = {}

    # -- registration mirrors the decomposed engine -------------------------

    def register_virtual_table(self, schema: TableSchema, **_ignored) -> None:
        self._catalog.register_virtual(schema)
        self._schemas[schema.name.lower()] = schema

    def register_world_schemas(self, world, **_ignored) -> None:
        for schema in world.schemas():
            self.register_virtual_table(schema)

    # -- execution ------------------------------------------------------------

    def execute(self, sql: Union[str, ast.Statement]) -> QueryResult:
        statement = parse(sql) if isinstance(sql, str) else sql
        sql_text = sql if isinstance(sql, str) else print_statement(statement)
        bound = Binder(self._catalog).bind(statement)

        referenced = self._referenced_schemas(statement)
        prompt = build_direct_prompt(
            DirectRequest(schemas=tuple(referenced), sql=print_statement(bound.query))
        )
        options = CompletionOptions(
            temperature=self._config.temperature,
            max_tokens=self._config.max_output_tokens,
        )
        before = self._meter.snapshot()
        completion = self._model.complete(prompt, options)
        warnings: List[str] = []
        dtypes = [column.dtype for column in bound.output_columns]
        try:
            answer = parse_direct_completion(completion.text, dtypes)
            rows = answer.rows
            if not answer.complete:
                warnings.append("answer truncated by the output budget")
            if answer.malformed_lines:
                warnings.append(f"{answer.malformed_lines} malformed line(s) skipped")
        except LLMProtocolError as exc:
            rows = []
            warnings.append(f"unusable answer: {exc}")
        usage = self._meter.snapshot().minus(before)

        columns = tuple(
            Column(name=column.name, dtype=column.dtype, nullable=True)
            for column in bound.output_columns
        )
        table = Table(TableSchema(name="result", columns=columns))
        for row in rows:
            try:
                table.insert(row, coerce=True)
            except Exception:
                warnings.append("dropped a row that did not fit the output schema")
        return QueryResult(
            table=table,
            usage=usage,
            explain_text="DirectPrompt: 1 call, whole query",
            warnings=warnings,
            sql=sql_text,
            engine_name=self.name,
        )

    def _referenced_schemas(self, statement: ast.Statement) -> List[TableSchema]:
        from repro.llm.simulated import _referenced_tables

        names = _referenced_tables(statement)
        schemas = []
        for name in names:
            schema = self._schemas.get(name.lower())
            if schema is not None:
                schemas.append(schema)
        return schemas

    @property
    def usage(self):
        return self._meter.snapshot()

    def reset_usage(self) -> None:
        self._meter.reset()
