"""Ground-truth baseline: classical SQL over the materialized world."""

from __future__ import annotations

from typing import Union

from repro.core.results import QueryResult
from repro.llm.accounting import UsageSnapshot
from repro.llm.world import World
from repro.sql import ast
from repro.sql.printer import print_statement


class MaterializedEngine:
    """The oracle: exact execution, zero model cost."""

    name = "materialized"

    def __init__(self, world: World):
        self._world = world
        self._executor = world.executor()

    def execute(self, sql: Union[str, ast.Statement]) -> QueryResult:
        sql_text = sql if isinstance(sql, str) else print_statement(sql)
        table = self._executor.execute(sql)
        return QueryResult(
            table=table,
            usage=UsageSnapshot(),
            explain_text="Materialized: classical execution over ground truth",
            sql=sql_text,
            engine_name=self.name,
        )
