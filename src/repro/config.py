"""Engine configuration.

One dataclass carries every knob the planner and executor share.  The
ablation experiments (Table 3, Figures 4-6) are sweeps over these fields;
:meth:`EngineConfig.naive` is the unoptimized configuration used as the
"decomposed but naive" baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional, Tuple

from repro.errors import ConfigError

#: Valid values of :attr:`EngineConfig.storage_mode`.
STORAGE_MODES = ("off", "result_cache", "materialize")

#: Valid values of :attr:`EngineConfig.storage_backend`.
STORAGE_BACKENDS = ("memory", "sqlite")

#: Valid values of :attr:`EngineConfig.transport`.  Kept as a static
#: tuple (mirroring the registry in :mod:`repro.llm.transport`) so
#: config validation never has to import the transport stack.
TRANSPORTS = ("simulated", "openai", "llamacpp")

#: Multi-tenant access levels of :attr:`EngineConfig.storage_scope`,
#: narrowest first.  A scope can never serve another scope's entries.
SCOPE_LEVELS = ("session", "user", "application")


def parse_storage_scope(scope: str) -> Tuple[str, Optional[str]]:
    """Split ``"level"`` / ``"level:tenant"`` into its parts.

    The level must be one of :data:`SCOPE_LEVELS`; the tenant (an
    identifier inside the level, e.g. the user name under ``user``) is
    optional — the storage tier picks a default per level (a unique id
    for ``session``, a shared one otherwise).
    """
    level, _, tenant = scope.partition(":")
    level = level.strip().lower()
    tenant = tenant.strip()
    if level not in SCOPE_LEVELS:
        raise ConfigError(
            f"storage scope level must be one of {', '.join(SCOPE_LEVELS)} "
            f"(optionally 'level:tenant'); got {scope!r}"
        )
    return level, tenant or None


@dataclass(frozen=True)
class EngineConfig:
    """Planner and runtime knobs of the decomposed engine.

    Attributes:
        page_size: rows requested per enumeration page.
        lookup_batch_size: entities per batched lookup/judge call.
        votes: samples per lookup batch for self-consistency voting
            (1 disables voting).
        temperature: decoding temperature for retrieval calls.  Voting
            requires > 0 to obtain independent samples.
        enable_pushdown: ship single-table predicates inside scan prompts
            instead of filtering retrieved supersets locally.
        enable_lookup_join: allow key-lookup fetching for equi-joins on a
            virtual table's primary key (otherwise both sides are
            scanned and joined locally).
        enable_order_pushdown: allow ORDER BY ... LIMIT plans to request
            model-side ordering and stop enumerating early.
        enable_streaming: consume eligible scans/lookups as early-exit
            row streams.  Single-step LIMIT plans whose filter must run
            locally (so ``limit_hint`` would be unsound) and EXISTS
            subqueries install a row quota; the executor pulls pages
            until exact local compute over the fetched prefix already
            yields the quota, then closes the stream.  Results are
            byte-identical to materialized execution (the streamed
            pages are a prefix of the pages the materialized path would
            fetch); only the page/call count drops.  A stream cut short
            writes back a partial-coverage (prefix) fragment when the
            storage tier is materializing, so early exit never poisons
            the cache and a later wider scan resumes from the prefix.
        enable_cache: reuse completions for repeated identical prompts.
        enable_judge: evaluate non-pushed single-table predicates with
            batched judgement calls instead of retrieving the predicate
            columns (an extension; saves tokens when predicate columns
            are not otherwise needed).
        enable_validation: apply schema/range validators to retrieved
            cells, nulling implausible values.
        max_retries: re-issues of a refused/unusable completion before
            giving up on a call.
        max_output_tokens: completion budget per call.
        scan_guard_factor: abort a scan after this multiple of the
            estimated page count (protects against runaway pagination).
        max_in_flight: concurrent model calls the runtime dispatcher may
            keep open.  1 (the default) runs every call inline and
            sequentially; larger values overlap independent calls —
            vote samples, lookup/judge batches, prefetched scan pages,
            independent plan steps — changing reported wall-clock
            (``wall_ms``) but, by construction, never results, token
            usage, or call counts.
        scan_prefetch_pages: speculative pages a scan may keep in
            flight beyond the one it is reading (effective only when
            ``max_in_flight > 1``; capped at ``max_in_flight - 1``).
            Speculation is un-metered unless consumed, so a wrong guess
            costs nothing in tokens.
        serve_jobs: default number of statements the concurrent serving
            layer (``Engine.execute_many``, CLI ``--jobs``) admits at
            once against one session.  All admitted queries share the
            single ``max_in_flight`` dispatcher budget and the
            cross-query single-flight registry; per-query results are
            byte-identical to serial execution at any value.
        scan_shards: partition large scans into this many independent
            page chains (key-range shards over the enumeration cursor).
            1 (the default) keeps the single sequential chain; larger
            values fan shards out through the dispatcher and merge the
            results deterministically (stable shard-order concatenation),
            so rows are byte-identical to unsharded execution on clean
            protocol runs.  Aggregate-only queries additionally push
            COUNT/SUM/MIN/MAX/AVG into per-shard partial states merged
            with algebraic combiners.
        shard_min_rows: minimum estimated rows per shard; the planner
            caps the shard count so no shard is expected to fetch fewer
            rows than this (small tables stay unsharded).
        retry_backoff_ms: base delay before the first retry of a
            refused/unusable completion, doubling per further retry.
            0 disables backoff (right for the simulated model; a
            networked backend would set a real base).
        storage_mode: the adaptive materialization tier
            (:mod:`repro.storage`).  ``off`` disables it; ``result_cache``
            serves repeated queries from a normalized query-result cache;
            ``materialize`` additionally writes retrieved scan/lookup
            fragments into a local fragment store and routes later
            scans/lookups to them (partial coverage triggers a residual
            fetch of only the missing rows/columns).  Storage only serves
            under deterministic configurations (``votes == 1`` and
            ``temperature == 0``), so results stay byte-identical to the
            storage-off engine.
        storage_budget_bytes: approximate byte budget for each storage
            tier store; least-recently-used entries are evicted beyond it.
        storage_ttl_s: seconds before a stored fragment/result expires
            (0 disables expiry).  Useful when the backing model may be
            updated underneath a long-lived session.
        storage_backend: where the storage tier keeps its entries.
            ``memory`` (the default) dies with the process; ``sqlite``
            persists them in a single process-safe WAL-mode file at
            ``storage_path``, so a restarted process serves a repeated
            workload with ~0 model calls and concurrent processes share
            one warm tier.  An unusable file degrades gracefully to
            ``memory`` with a note — never an error.
        storage_path: filesystem path of the persistent store (required
            when ``storage_backend='sqlite'``).
        storage_scope: multi-tenant access level of this engine's
            entries — ``session`` | ``user`` | ``application``,
            optionally ``'level:tenant'`` (e.g. ``'user:alice'``).
            Scopes are strictly isolated: a scope never serves another
            scope's entries, and the (model identity, semantic config)
            fragment scope nests inside it.  ``session`` without a
            tenant gets a unique id per tier, so two sessions never
            share; ``user``/``application`` default to a shared tenant.
        scope_ttl_s: per-scope-level TTL defaults overriding
            ``storage_ttl_s``, as a mapping (or tuple of pairs) from
            level to seconds, e.g. ``{"session": 0, "user": 3600}``.
        enable_tracing: collect a structured span tree per query (parse
            / bind / optimize / plan steps / dispatcher flights /
            storage probes) with deterministic simulated timestamps,
            and activate the session metrics registry.  Off by default:
            the engine then runs against a shared no-op tracer, so
            instrumentation costs one attribute check per site and
            results, usage totals, and wall accounting are untouched
            either way.
        transport: which model transport assemblers (the CLI, demos)
            should build — ``simulated`` (in-process), ``openai``
            (HTTP chat-completions, online only with an API key), or
            ``llamacpp`` (local ``llama-server``, online only with a
            server URL).  Network transports without credentials
            delegate every request to the deterministic in-process
            fallback model, so results are byte-identical offline.
            Advisory for code that constructs its own model object.
        transport_url: endpoint override for network transports (the
            OpenAI-style base URL or the llama-server root).
        enable_continuous_batching: pool raw model calls from *all*
            in-flight queries of the session into shared slot-based
            batches (the llama.cpp ``examples/parallel`` serving
            model) instead of per-query waves.  Results, tokens, and
            call counts are byte-identical at any setting; only the
            wall-clock (and real elapsed time on latency-bound
            transports) changes.
        batch_slots: size of the continuous-batching request pool —
            how many coalesced model calls one shared wave may carry.
            Decoupled from ``max_in_flight`` (a per-query dispatch
            width) exactly as llama.cpp's ``n_parallel`` is decoupled
            from per-client concurrency.
        slow_query_ms: record statements whose simulated wall time
            meets this threshold (statement, wall, top-3 slowest spans)
            into the session's slow-query log, surfaced by the
            ``.metrics`` REPL command and batch summaries.  Implies
            tracing.  0 disables the log.
        enable_adaptive: let the optimizer consult the online
            statistics catalog (observed table cardinalities and
            predicate selectivities from earlier executions) ahead of
            static ``row_estimate`` hints, and allow mid-query
            re-planning of streamed scans whose observed selectivity
            diverges from the estimate by more than
            ``replan_threshold``.  Off (the default) keeps planning
            byte- and cost-identical to the static engine; the catalog
            still *records* observations either way (``.stats``).
            Adaptive plans return byte-identical rows — only call/page
            counts and plan shape may differ.
        replan_threshold: divergence factor that triggers a mid-query
            re-plan of a streamed scan — fire when the estimated
            residual selectivity over- or under-shoots the observed
            one by at least this multiple.  Must be > 1.
    """

    page_size: int = 20
    lookup_batch_size: int = 16
    votes: int = 1
    temperature: float = 0.0
    enable_pushdown: bool = True
    enable_lookup_join: bool = True
    enable_order_pushdown: bool = True
    enable_streaming: bool = True
    enable_cache: bool = True
    enable_judge: bool = False
    enable_validation: bool = True
    max_retries: int = 2
    max_output_tokens: int = 512
    scan_guard_factor: int = 8
    max_in_flight: int = 1
    scan_prefetch_pages: int = 2
    serve_jobs: int = 4
    scan_shards: int = 1
    shard_min_rows: int = 32
    retry_backoff_ms: float = 0.0
    storage_mode: str = "off"
    storage_budget_bytes: int = 8_000_000
    storage_ttl_s: float = 0.0
    storage_backend: str = "memory"
    storage_path: Optional[str] = None
    storage_scope: str = "session"
    scope_ttl_s: Optional[Tuple[Tuple[str, float], ...]] = None
    enable_tracing: bool = False
    slow_query_ms: float = 0.0
    transport: str = "simulated"
    transport_url: Optional[str] = None
    enable_continuous_batching: bool = False
    batch_slots: int = 32
    enable_adaptive: bool = False
    replan_threshold: float = 4.0

    def __post_init__(self):
        if self.transport not in TRANSPORTS:
            raise ConfigError(
                f"transport must be one of {', '.join(TRANSPORTS)}; "
                f"got {self.transport!r}"
            )
        if self.storage_mode not in STORAGE_MODES:
            raise ConfigError(
                f"storage_mode must be one of {', '.join(STORAGE_MODES)}; "
                f"got {self.storage_mode!r}"
            )
        if self.storage_backend not in STORAGE_BACKENDS:
            raise ConfigError(
                f"storage_backend must be one of {', '.join(STORAGE_BACKENDS)}; "
                f"got {self.storage_backend!r}"
            )
        if self.storage_backend == "sqlite" and not self.storage_path:
            raise ConfigError(
                "storage_backend='sqlite' requires storage_path "
                "(the store file shared across processes)"
            )
        parse_storage_scope(self.storage_scope)
        if self.scope_ttl_s is not None:
            # Accept any mapping or pair-iterable; store a canonical
            # sorted tuple so the frozen config stays hashable.
            pairs = (
                self.scope_ttl_s.items()
                if isinstance(self.scope_ttl_s, Mapping)
                else self.scope_ttl_s
            )
            normalized = []
            for level, ttl in pairs:
                level = str(level).strip().lower()
                if level not in SCOPE_LEVELS:
                    raise ConfigError(
                        f"scope_ttl_s level must be one of "
                        f"{', '.join(SCOPE_LEVELS)}; got {level!r}"
                    )
                ttl = float(ttl)
                if ttl < 0:
                    raise ConfigError(
                        f"scope_ttl_s[{level!r}] must be >= 0; got {ttl}"
                    )
                normalized.append((level, ttl))
            object.__setattr__(
                self, "scope_ttl_s", tuple(sorted(dict(normalized).items()))
            )
        if self.storage_budget_bytes <= 0:
            raise ConfigError(
                f"storage_budget_bytes must be positive; "
                f"got {self.storage_budget_bytes}"
            )
        if self.storage_ttl_s < 0:
            raise ConfigError(
                f"storage_ttl_s must be >= 0; got {self.storage_ttl_s}"
            )
        if self.slow_query_ms < 0:
            raise ConfigError(
                f"slow_query_ms must be >= 0; got {self.slow_query_ms}"
            )
        if self.replan_threshold <= 1.0:
            raise ConfigError(
                f"replan_threshold must be > 1; got {self.replan_threshold}"
            )
        for name, minimum in (
            ("page_size", 1),
            ("lookup_batch_size", 1),
            ("votes", 1),
            ("max_in_flight", 1),
            ("serve_jobs", 1),
            ("max_output_tokens", 1),
            ("scan_shards", 1),
            ("shard_min_rows", 1),
            ("batch_slots", 1),
        ):
            if getattr(self, name) < minimum:
                raise ConfigError(
                    f"{name} must be >= {minimum}; got {getattr(self, name)}"
                )

    @staticmethod
    def default() -> "EngineConfig":
        return EngineConfig()

    @staticmethod
    def naive() -> "EngineConfig":
        """The unoptimized decomposed engine: fetch everything, locally."""
        return EngineConfig(
            enable_pushdown=False,
            enable_lookup_join=False,
            enable_order_pushdown=False,
            enable_streaming=False,
            enable_cache=False,
            enable_judge=False,
            votes=1,
            lookup_batch_size=1,
        )

    def with_(self, **changes) -> "EngineConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
