"""EXPLAIN ANALYZE: estimated vs actual, rendered from a trace.

The plan tree and the span tree are walked together: each plan step is
matched to its ``step`` span (by step index, within the enclosing
execution scope), and the step's actuals — output rows, model calls
(retries included), pages fetched, simulated wall — are aggregated
from the flight spans beneath it.  The estimated numbers are exactly
what static EXPLAIN prints (the same :func:`step_line` builds both
headers), which is the feedback loop a statistics catalog needs:
est_rows vs rows, estimated calls vs flights actually flown.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.trace import QueryTrace, Span
from repro.plan.explain import step_line
from repro.plan.physical import (
    DerivedStep,
    PlanNode,
    RetrievalPlan,
    SetOpPlan,
)
from repro.sql.printer import print_statement

_PAGE_KINDS = frozenset({"scan-page", "lookup-batch"})


class _TraceView:
    """Index over a trace for plan-aligned lookups."""

    def __init__(self, trace: QueryTrace) -> None:
        self.children: Dict[Optional[int], List[Span]] = (
            trace.children_index()
        )

    def child_spans(self, scope_id: Optional[int], name: str) -> List[Span]:
        if scope_id is None:
            return []
        return [
            span
            for span in self.children.get(scope_id, [])
            if span.name == name
        ]

    def step_spans(self, scope_id: Optional[int]) -> Dict[int, Span]:
        spans: Dict[int, Span] = {}
        for span in self.child_spans(scope_id, "step"):
            index = span.tags.get("step")
            if isinstance(index, int) and index not in spans:
                spans[index] = span
        return spans

    def flight_totals(self, span: Span) -> Dict[str, int]:
        """Calls/pages aggregated over the span's whole subtree."""
        calls = 0
        pages = 0
        stack = [span.span_id]
        while stack:
            for child in self.children.get(stack.pop(), []):
                if child.name == "flight":
                    calls += int(child.tags.get("attempts", 1))
                    if child.tags.get("kind") in _PAGE_KINDS:
                        pages += 1
                else:
                    stack.append(child.span_id)
        return {"calls": calls, "pages": pages}

    def storage_outcome(self, span: Span) -> Optional[str]:
        for child in self.children.get(span.span_id, []):
            if child.name == "storage":
                outcome = child.tags.get("outcome")
                if outcome is not None:
                    return str(outcome)
        return None


def _pad(indent: int) -> str:
    return "  " * indent


def _actual_line(view: _TraceView, span: Optional[Span]) -> str:
    if span is None:
        return "actual: not executed"
    totals = view.flight_totals(span)
    parts = []
    rows = span.tags.get("rows")
    if rows is not None:
        parts.append(f"rows={rows}")
    parts.append(f"calls={totals['calls']}")
    parts.append(f"pages={totals['pages']}")
    parts.append(f"wall={span.duration_ms:.0f} ms")
    outcome = view.storage_outcome(span)
    if outcome is not None:
        parts.append(f"storage={outcome}")
    est_sel = span.tags.get("sel_est")
    if est_sel is not None:
        act_sel = span.tags.get("sel_act")
        act_text = act_sel if act_sel is not None else "?"
        parts.append(f"sel: est={est_sel} act={act_text}")
    replanned = span.tags.get("replanned")
    if replanned is not None:
        parts.append(f"replanned[{replanned}]")
    return "actual: " + " ".join(parts)


def _render(
    plan: PlanNode,
    view: _TraceView,
    lines: List[str],
    indent: int,
    scope_id: Optional[int],
) -> None:
    if isinstance(plan, SetOpPlan):
        word = plan.op.upper() + (" ALL" if plan.all else "")
        lines.append(f"{_pad(indent)}SetOp {word} [{plan.estimate.render()}]")
        branches = {
            span.tags.get("side"): span
            for span in view.child_spans(scope_id, "branch")
        }
        left = branches.get("left")
        right = branches.get("right")
        _render(
            plan.left, view, lines, indent + 1,
            left.span_id if left else None,
        )
        _render(
            plan.right, view, lines, indent + 1,
            right.span_id if right else None,
        )
        return
    assert isinstance(plan, RetrievalPlan)
    lines.append(
        f"{_pad(indent)}LocalCompute: {print_statement(plan.statement)} "
        f"[{plan.estimate.render()}]"
    )
    for note in plan.notes:
        lines.append(f"{_pad(indent + 1)}note: {note}")
    step_spans = view.step_spans(scope_id)
    for index, step in enumerate(plan.steps):
        span = step_spans.get(index)
        if isinstance(step, DerivedStep):
            lines.append(f"{_pad(indent + 1)}Derived {step.binding}:")
            lines.append(f"{_pad(indent + 2)}{_actual_line(view, span)}")
            _render(
                step.plan, view, lines, indent + 2,
                span.span_id if span else None,
            )
        else:
            lines.append(f"{_pad(indent + 1)}{step_line(step)}")
            lines.append(f"{_pad(indent + 2)}{_actual_line(view, span)}")
    subquery_spans = view.child_spans(scope_id, "subquery")
    for position, subplan in enumerate(plan.subplans):
        lines.append(f"{_pad(indent + 1)}Subquery:")
        span = (
            subquery_spans[position]
            if position < len(subquery_spans)
            else None
        )
        _render(
            subplan.plan, view, lines, indent + 2,
            span.span_id if span else None,
        )


def explain_analyze(plan: PlanNode, trace: QueryTrace, usage) -> str:
    """Render ``plan`` with per-step actuals taken from ``trace``."""
    view = _TraceView(trace)
    scope_id: Optional[int] = None
    for root in view.children.get(None, []):
        if root.name == "query":
            for child in view.children.get(root.span_id, []):
                if child.name == "execute":
                    scope_id = child.span_id
                    break
            break
    lines: List[str] = []
    _render(plan, view, lines, indent=0, scope_id=scope_id)
    lines.append(f"-- actual: {usage.render()}")
    return "\n".join(lines)
