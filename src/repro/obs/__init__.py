"""End-to-end query observability.

Deterministic span tracing (:mod:`repro.obs.trace`), an
order-invariant metrics registry (:mod:`repro.obs.metrics`), trace and
batch exporters (:mod:`repro.obs.export`), EXPLAIN ANALYZE rendering
(:mod:`repro.obs.analyze`), and the per-session hub wiring them
together (:mod:`repro.obs.hub`).  Everything here is opt-in via
``EngineConfig.enable_tracing`` / ``slow_query_ms``; disabled, the
engine runs against no-op stand-ins with byte-identical results.
"""

from repro.obs.analyze import explain_analyze
from repro.obs.export import (
    batch_summary,
    exact_percentile,
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.obs.hub import Observability, SlowQueryEntry, SlowQueryLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NOOP_TRACER,
    NoopTracer,
    QueryTrace,
    QueryTracer,
    Span,
)

__all__ = [
    "explain_analyze",
    "batch_summary",
    "exact_percentile",
    "read_trace_jsonl",
    "write_trace_jsonl",
    "Observability",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoopTracer",
    "QueryTrace",
    "QueryTracer",
    "Span",
]
