"""Structured, deterministic query tracing.

A :class:`QueryTracer` collects a span tree per executed statement:
one ``query`` root, children for parse/bind/optimize/execute, a span
per plan step, a ``flight`` span per dispatcher completion, and a
``storage`` span per tier probe.  Timestamps are *simulated
milliseconds* read from the query's :class:`LatencyLedger` — the same
deterministic critical-path clock the wall accounting uses — so the
same statement under the same config produces the same span tree with
the same timings, byte for byte, at any ``max_in_flight``.

Tracing is strictly opt-in: the module-level :data:`NOOP_TRACER` is a
shared, allocation-free stand-in whose ``enabled`` flag lets hot paths
skip even tag construction, so a disabled tracer costs one attribute
check per instrumentation site.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Tags that legitimately differ across concurrency settings (e.g. a
#: page served via prefetch at ``max_in_flight>1`` but fetched inline
#: serially).  :meth:`QueryTrace.shape` ignores them so shape equality
#: is the right invariant across ``max_in_flight``.
VOLATILE_TAGS = frozenset({"via"})


class Span:
    """One timed node of a query's trace tree."""

    __slots__ = ("span_id", "parent_id", "name", "start_ms", "end_ms", "tags")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_ms: float = 0.0,
        end_ms: float = 0.0,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.tags = tags if tags is not None else {}

    @property
    def duration_ms(self) -> float:
        return max(0.0, self.end_ms - self.start_ms)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": round(self.start_ms, 4),
            "end_ms": round(self.end_ms, 4),
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            span_id=int(payload["span_id"]),
            parent_id=(
                None
                if payload.get("parent_id") is None
                else int(payload["parent_id"])
            ),
            name=str(payload["name"]),
            start_ms=float(payload.get("start_ms", 0.0)),
            end_ms=float(payload.get("end_ms", 0.0)),
            tags=dict(payload.get("tags") or {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.span_id}, parent={self.parent_id}, {self.name!r}, "
            f"{self.start_ms:.1f}..{self.end_ms:.1f}, {self.tags})"
        )


def _tag_key(tags: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(
        sorted(
            (key, str(value))
            for key, value in tags.items()
            if key not in VOLATILE_TAGS
        )
    )


class QueryTrace:
    """Thread-safe span collection for one statement."""

    def __init__(self, statement: str = "") -> None:
        self.statement = statement
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._next_id = 1

    def new_span_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def append(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def roots(self) -> List[Span]:
        return [span for span in self.spans if span.parent_id is None]

    def children_index(self) -> Dict[Optional[int], List[Span]]:
        """Parent id -> children, each list ordered by span id."""
        index: Dict[Optional[int], List[Span]] = {}
        for span in sorted(self.spans, key=lambda item: item.span_id):
            index.setdefault(span.parent_id, []).append(span)
        return index

    def shape(self) -> Tuple:
        """Canonical tree shape, invariant across thread interleavings.

        Nodes are ``(name, stable-tags, sorted-children)``; span ids,
        timings, and :data:`VOLATILE_TAGS` are excluded, and siblings
        are sorted, so two executions of the same statement compare
        equal iff they did the same logical work.
        """
        index = self.children_index()

        def node(span: Span) -> Tuple:
            children = tuple(
                sorted(node(child) for child in index.get(span.span_id, []))
            )
            return (span.name, _tag_key(span.tags), children)

        return tuple(sorted(node(root) for root in index.get(None, [])))

    def slowest(self, count: int = 3) -> List[Span]:
        """Top ``count`` non-root spans by duration (deterministic tie
        break on span id)."""
        candidates = [s for s in self.spans if s.parent_id is not None]
        candidates.sort(key=lambda s: (-s.duration_ms, s.span_id))
        return candidates[:count]

    def render(self) -> str:
        """Indented text tree (debugging / demo output)."""
        index = self.children_index()
        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            tags = " ".join(
                f"{key}={value}" for key, value in sorted(span.tags.items())
            )
            lines.append(
                "  " * depth
                + f"{span.name} [{span.start_ms:.0f}..{span.end_ms:.0f} ms]"
                + (f" {tags}" if tags else "")
            )
            for child in index.get(span.span_id, []):
                walk(child, depth + 1)

        for root in index.get(None, []):
            walk(root, 0)
        return "\n".join(lines)


class _ActiveSpan:
    """Context-manager handle for an open span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "QueryTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def set_tag(self, key: str, value: Any) -> None:
        self._span.tags[key] = value

    @property
    def span_id(self) -> int:
        return self._span.span_id

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self._span)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.end_ms = self._tracer.now()
        if exc_type is not None:
            self._span.tags.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)


class _Bind:
    """Context manager installing an ambient parent on this thread."""

    __slots__ = ("_tracer", "_parent_id", "_saved")

    def __init__(self, tracer: "QueryTracer", parent_id: Optional[int]):
        self._tracer = tracer
        self._parent_id = parent_id
        self._saved: Optional[List[Optional[int]]] = None

    def __enter__(self) -> None:
        local = self._tracer._local
        self._saved = getattr(local, "stack", None)
        local.stack = [self._parent_id]

    def __exit__(self, exc_type, exc, tb) -> None:
        local = self._tracer._local
        if self._saved is None:
            del local.stack
        else:
            local.stack = self._saved


class QueryTracer:
    """Collects spans for one query against a deterministic clock.

    The clock defaults to a constant zero and is rebound to the query's
    ``LatencyLedger.now`` once the client exists, so span timestamps
    are simulated model milliseconds, not host time.
    """

    enabled = True

    def __init__(
        self,
        trace: Optional[QueryTrace] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._trace = trace if trace is not None else QueryTrace()
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self._local = threading.local()

    @property
    def trace(self) -> QueryTrace:
        return self._trace

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    def current_parent(self) -> Optional[int]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def span(self, name: str, **tags: Any) -> _ActiveSpan:
        """Open a child of this thread's ambient span."""
        span = Span(
            span_id=self._trace.new_span_id(),
            parent_id=self.current_parent(),
            name=name,
            start_ms=self.now(),
            tags=tags,
        )
        return _ActiveSpan(self, span)

    def bind(self, parent_id: Optional[int]) -> _Bind:
        """Adopt ``parent_id`` as the ambient parent on this thread.

        Worker threads started by ``run_parallel`` have no ambient
        stack; call sites capture :meth:`current_parent` before fanning
        out and bind it inside each thunk so cross-thread spans keep
        their tree position.
        """
        return _Bind(self, parent_id)

    def emit(
        self,
        name: str,
        start_ms: float,
        end_ms: float,
        tags: Optional[Dict[str, Any]] = None,
        parent_id: Optional[int] = None,
        use_ambient_parent: bool = True,
    ) -> Span:
        """Record an already-timed span (analytic flight spans)."""
        if parent_id is None and use_ambient_parent:
            parent_id = self.current_parent()
        span = Span(
            span_id=self._trace.new_span_id(),
            parent_id=parent_id,
            name=name,
            start_ms=start_ms,
            end_ms=end_ms,
            tags=dict(tags) if tags else {},
        )
        self._trace.append(span)
        return span

    # -- internal -----------------------------------------------------
    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span.span_id)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] == span.span_id:
            stack.pop()
        self._trace.append(span)


class _NoopHandle:
    """Shared no-op stand-in for both spans and binds."""

    __slots__ = ()

    def __enter__(self) -> "_NoopHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set_tag(self, key: str, value: Any) -> None:
        return None

    @property
    def span_id(self) -> None:
        return None


_NOOP_HANDLE = _NoopHandle()


class NoopTracer:
    """Does nothing, allocates nothing; ``enabled`` gates hot paths."""

    enabled = False
    trace = None

    def set_clock(self, clock: Callable[[], float]) -> None:
        return None

    def now(self) -> float:
        return 0.0

    def current_parent(self) -> None:
        return None

    def span(self, name: str, **tags: Any) -> _NoopHandle:
        return _NOOP_HANDLE

    def bind(self, parent_id: Optional[int]) -> _NoopHandle:
        return _NOOP_HANDLE

    def emit(self, *args: Any, **kwargs: Any) -> None:
        return None


NOOP_TRACER = NoopTracer()
