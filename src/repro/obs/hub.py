"""Session-level observability hub.

One :class:`Observability` instance lives on each engine session.  It
owns the metrics registry, a bounded buffer of recent query traces,
and the slow-query log, and implements the meter-observer protocol
(:meth:`on_completion` / :meth:`on_pages` / :meth:`on_dedup`) so the
root :class:`~repro.llm.accounting.UsageMeter` can feed call-level
metrics without knowing anything about metrics.

When disabled (the default) the hub hands out :data:`NOOP_TRACER`, the
registry is inactive, and nothing else is wired — the engine's hot
paths see one falsy attribute and move on.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple, Union

from repro.obs import metrics as m
from repro.obs.metrics import MetricsRegistry, format_bound
from repro.obs.trace import (
    NOOP_TRACER,
    NoopTracer,
    QueryTrace,
    QueryTracer,
)


@dataclass(frozen=True)
class SlowQueryEntry:
    """One over-threshold query: statement, wall, hottest spans."""

    statement: str
    wall_ms: float
    #: ``(span name, duration ms, stable tag pairs)`` for the top-3
    #: slowest non-root spans.
    top_spans: Tuple[Tuple[str, float, Tuple[Tuple[str, str], ...]], ...]

    def render(self) -> str:
        text = f"{self.wall_ms:.0f} ms  {self.statement}"
        for name, duration, tags in self.top_spans:
            described = " ".join(f"{k}={v}" for k, v in tags)
            text += f"\n    {name} {duration:.0f} ms"
            if described:
                text += f" ({described})"
        return text


class SlowQueryLog:
    """Bounded, thread-safe log of the slowest offenders."""

    def __init__(self, capacity: int = 32) -> None:
        self._entries: Deque[SlowQueryEntry] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, entry: SlowQueryEntry) -> None:
        with self._lock:
            self._entries.append(entry)

    @property
    def entries(self) -> List[SlowQueryEntry]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def render(self) -> str:
        entries = self.entries
        if not entries:
            return "(no slow queries)"
        return "\n".join(entry.render() for entry in entries)


@dataclass
class Observability:
    """Per-session tracing + metrics + slow-query state."""

    enabled: bool = False
    slow_query_ms: float = 0.0
    trace_capacity: int = 256
    registry: MetricsRegistry = field(init=False)
    slow_log: SlowQueryLog = field(init=False)

    def __post_init__(self) -> None:
        self.registry = MetricsRegistry(active=self.enabled)
        self.slow_log = SlowQueryLog()
        self._traces: Deque[QueryTrace] = deque(maxlen=self.trace_capacity)
        self._lock = threading.Lock()

    @classmethod
    def from_config(cls, config) -> "Observability":
        """A slow-query threshold alone needs spans too, so either
        knob turns tracing on."""
        slow_ms = float(getattr(config, "slow_query_ms", 0.0) or 0.0)
        enabled = bool(getattr(config, "enable_tracing", False)) or (
            slow_ms > 0
        )
        return cls(enabled=enabled, slow_query_ms=slow_ms)

    # -- tracer hand-out ----------------------------------------------
    def query_tracer(
        self, statement: str = ""
    ) -> Union[QueryTracer, NoopTracer]:
        if not self.enabled:
            return NOOP_TRACER
        return QueryTracer(QueryTrace(statement=statement))

    # -- per-query recording ------------------------------------------
    def record_query(self, statement: str, usage, trace) -> None:
        if not self.enabled:
            return
        self.registry.counter(m.QUERIES_TOTAL).inc()
        self.registry.histogram(m.QUERY_WALL_MS).observe(usage.wall_ms)
        if trace is not None:
            with self._lock:
                self._traces.append(trace)
        if self.slow_query_ms > 0 and usage.wall_ms >= self.slow_query_ms:
            self.registry.counter(m.SLOW_QUERIES_TOTAL).inc()
            top: Tuple = ()
            if trace is not None:
                top = tuple(
                    (
                        span.name,
                        span.duration_ms,
                        tuple(
                            sorted(
                                (key, str(value))
                                for key, value in span.tags.items()
                            )
                        ),
                    )
                    for span in trace.slowest(3)
                )
            self.slow_log.record(
                SlowQueryEntry(
                    statement=statement,
                    wall_ms=usage.wall_ms,
                    top_spans=top,
                )
            )

    @property
    def traces(self) -> List[QueryTrace]:
        with self._lock:
            return list(self._traces)

    # -- UsageMeter observer protocol ---------------------------------
    def on_completion(self, completion) -> None:
        registry = self.registry
        registry.counter(m.MODEL_CALLS_TOTAL).inc()
        registry.histogram(m.CALL_LATENCY_MS).observe(completion.latency_ms)
        registry.histogram(m.TOKENS_PER_CALL).observe(
            completion.prompt_tokens + completion.completion_tokens
        )

    def on_pages(self, fetched: int, skipped: int) -> None:
        if fetched > 0:
            self.registry.counter(m.PAGES_FETCHED_TOTAL).inc(fetched)
        if skipped > 0:
            self.registry.counter(m.PAGES_SKIPPED_TOTAL).inc(skipped)

    def on_dedup(self) -> None:
        self.registry.counter(m.DEDUP_HITS_TOTAL).inc()

    # -- summaries -----------------------------------------------------
    def latency_summary(self) -> Optional[str]:
        """One-line call-latency percentile summary, or ``None`` if no
        calls were observed (keeps ``UsageSnapshot.render`` unchanged
        on idle sessions)."""
        if not self.enabled:
            return None
        histogram = self.registry.histogram(m.CALL_LATENCY_MS)
        if histogram.count == 0:
            return None
        p50 = format_bound(histogram.percentile(50))
        p99 = format_bound(histogram.percentile(99))
        return f"call latency p50/p99 <= {p50}/{p99} ms"

    def render_report(self) -> str:
        """The ``.metrics`` REPL payload: registry + slow queries."""
        lines = [self.registry.render_summary()]
        if self.slow_query_ms > 0:
            lines.append("")
            lines.append(f"slow queries (>= {self.slow_query_ms:.0f} ms):")
            lines.append(self.slow_log.render())
        return "\n".join(lines)
