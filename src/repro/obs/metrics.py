"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

Histograms use *fixed* bucket bounds with integer occupancy counts, so
percentiles are computed by integer rank over cumulative bucket counts
— the result is invariant to the order observations arrive in, which
makes p50/p90/p99 reproducible under any thread interleaving (a
float-summation quantile estimator would not be).  A percentile
resolves to the upper bound of the bucket holding its rank;
observations above the top bound land in an overflow bucket whose
"upper bound" reports as ``inf``.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# -- canonical metric names (one place, used by feeds and docs) -------
QUERIES_TOTAL = "queries_total"
MODEL_CALLS_TOTAL = "model_calls_total"
DEDUP_HITS_TOTAL = "dedup_hits_total"
RESULT_HITS_TOTAL = "result_cache_hits_total"
RESULT_MISSES_TOTAL = "result_cache_misses_total"
FRAGMENT_HITS_TOTAL = "fragment_hits_total"
FRAGMENT_MISSES_TOTAL = "fragment_misses_total"
PAGES_FETCHED_TOTAL = "pages_fetched_total"
PAGES_SKIPPED_TOTAL = "pages_skipped_total"
SLOW_QUERIES_TOTAL = "slow_queries_total"
INFLIGHT_CURRENT = "inflight_current"
INFLIGHT_PEAK = "inflight_peak"
CALL_LATENCY_MS = "call_latency_ms"
TOKENS_PER_CALL = "tokens_per_call"
PAGES_PER_SCAN = "pages_per_scan"
QUEUE_WAIT_MS = "queue_wait_ms"
QUERY_WALL_MS = "query_wall_ms"
BATCH_WAVES_TOTAL = "batch_waves_total"
BATCH_REQUESTS_TOTAL = "batch_requests_total"
BATCH_OCCUPANCY = "batch_occupancy"
REPLANS_TOTAL = "replans_total"
REPLAN_SHARDS_TOTAL = "replan_shards_total"

LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
)
TOKEN_BUCKETS: Tuple[float, ...] = (
    16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
)
PAGE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
WAIT_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.5, 1, 5, 10, 25, 50, 100, 250, 500, 1000, 5000,
)
WALL_BUCKETS_MS: Tuple[float, ...] = (
    10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000,
)

#: Default bucket layout per histogram name; unknown names fall back
#: to :data:`LATENCY_BUCKETS_MS`.
DEFAULT_BUCKETS: Dict[str, Tuple[float, ...]] = {
    CALL_LATENCY_MS: LATENCY_BUCKETS_MS,
    TOKENS_PER_CALL: TOKEN_BUCKETS,
    PAGES_PER_SCAN: PAGE_BUCKETS,
    QUEUE_WAIT_MS: WAIT_BUCKETS_MS,
    QUERY_WALL_MS: WALL_BUCKETS_MS,
    # Continuous-batching wave occupancy shares the power-of-two page
    # layout: slot pools are small integers on the same scale.
    BATCH_OCCUPANCY: PAGE_BUCKETS,
}


class Counter:
    """Monotonic named counter."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-write-wins value with a monotonic-max helper."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def max_update(self, value: float) -> None:
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with order-invariant percentiles."""

    def __init__(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help_text: str = "",
    ) -> None:
        if buckets is None:
            buckets = DEFAULT_BUCKETS.get(name, LATENCY_BUCKETS_MS)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help_text = help_text
        self.bounds = bounds
        # counts[i] observes value <= bounds[i]; counts[-1] is overflow.
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0  # informational only; never drives percentiles
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    def merge_counts(self, counts: Sequence[int], total: float = 0.0) -> None:
        """Fold another histogram's bucket occupancy into this one.

        Bucket counts are additive and order-invariant, so merging a
        persisted snapshot (or a sibling process's counts) commutes
        with live observation — the statistics catalog relies on this
        to combine cross-process histograms without double counting.
        The bucket layouts must match.
        """
        if len(counts) != len(self._counts):
            raise ValueError(
                f"bucket layout mismatch: {len(counts)} counts into "
                f"{len(self._counts)} buckets"
            )
        with self._lock:
            for i, bucket_count in enumerate(counts):
                self._counts[i] += int(bucket_count)
                self._count += int(bucket_count)
            self._sum += float(total)

    def percentile(self, pct: float) -> Optional[float]:
        """Upper bound of the bucket holding the ``pct`` rank.

        Integer-rank selection (``ceil(pct/100 * count)``) over integer
        cumulative counts: deterministic regardless of observation
        order.  Returns ``None`` with no observations and ``inf`` when
        the rank lands in the overflow bucket.
        """
        with self._lock:
            if self._count == 0:
                return None
            rank = max(1, math.ceil(self._count * pct / 100.0))
            cumulative = 0
            for i, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank:
                    if i < len(self.bounds):
                        return self.bounds[i]
                    return math.inf
        return math.inf  # pragma: no cover - unreachable


def format_bound(value: Optional[float]) -> str:
    """Compact human rendering of a percentile value."""
    if value is None:
        return "-"
    if math.isinf(value):
        return "inf"
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


class MetricsRegistry:
    """Named metric store; creation is idempotent and thread-safe.

    ``active`` is the feed gate: instrumentation sites check it (or are
    simply never wired) when observability is disabled, so an inactive
    registry costs nothing on the hot path.
    """

    def __init__(self, active: bool = True) -> None:
        self.active = active
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._get(name, lambda: Counter(name, help_text))
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is not a counter")
        return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._get(name, lambda: Gauge(name, help_text))
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is not a gauge")
        return metric

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help_text: str = "",
    ) -> Histogram:
        metric = self._get(name, lambda: Histogram(name, buckets, help_text))
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is not a histogram")
        return metric

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def _items(self) -> Iterable[Tuple[str, object]]:
        with self._lock:
            snapshot = dict(self._metrics)
        return sorted(snapshot.items())

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition (counters, gauges, histograms)."""
        lines: List[str] = []
        for name, metric in self._items():
            full = prefix + name
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {full} counter")
                lines.append(f"{full} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {full} gauge")
                lines.append(f"{full} {metric.value:g}")
            elif isinstance(metric, Histogram):
                lines.append(f"# TYPE {full} histogram")
                cumulative = 0
                counts = metric.bucket_counts()
                for bound, bucket_count in zip(metric.bounds, counts):
                    cumulative += bucket_count
                    lines.append(
                        f'{full}_bucket{{le="{format_bound(bound)}"}} '
                        f"{cumulative}"
                    )
                cumulative += counts[-1]
                lines.append(f'{full}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{full}_sum {metric.sum:g}")
                lines.append(f"{full}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_summary(self) -> str:
        """Human-readable one-screen summary for the ``.metrics`` REPL
        command."""
        lines: List[str] = []
        for name, metric in self._items():
            if isinstance(metric, Counter):
                lines.append(f"{name} = {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"{name} = {metric.value:g}")
            elif isinstance(metric, Histogram):
                p50 = format_bound(metric.percentile(50))
                p90 = format_bound(metric.percentile(90))
                p99 = format_bound(metric.percentile(99))
                lines.append(
                    f"{name}: count={metric.count} "
                    f"p50/p90/p99={p50}/{p90}/{p99}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
