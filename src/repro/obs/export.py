"""Trace export (JSON lines) and fleet-wide batch aggregation.

The JSONL format is one object per span, each carrying its ``trace``
sequence number and the traced statement on the first span of a trace,
so a file round-trips back into the same list of span trees
(:func:`read_trace_jsonl`) and streams cleanly into external tools.
"""

from __future__ import annotations

import json
import math
from typing import IO, Iterable, List, Optional, Sequence

from repro.obs.trace import QueryTrace, Span


def write_trace_jsonl(path: str, traces: Iterable[QueryTrace]) -> int:
    """Write traces as JSON lines; returns the number of spans written."""
    with open(path, "w", encoding="utf-8") as handle:
        return dump_traces(handle, traces)


def dump_traces(handle: IO[str], traces: Iterable[QueryTrace]) -> int:
    written = 0
    for index, trace in enumerate(traces):
        spans = sorted(trace.spans, key=lambda span: span.span_id)
        for position, span in enumerate(spans):
            payload = span.to_dict()
            payload["trace"] = index
            if position == 0 and trace.statement:
                payload["statement"] = trace.statement
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            written += 1
    return written


def read_trace_jsonl(path: str) -> List[QueryTrace]:
    """Inverse of :func:`write_trace_jsonl`."""
    traces: List[QueryTrace] = []
    current_index: Optional[int] = None
    current: Optional[QueryTrace] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            index = int(payload.get("trace", 0))
            if index != current_index:
                current = QueryTrace(
                    statement=str(payload.get("statement", ""))
                )
                traces.append(current)
                current_index = index
            assert current is not None
            current.append(Span.from_dict(payload))
    return traces


def exact_percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile over an explicit sample (deterministic:
    sorts the values, so arrival order never matters)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(len(ordered) * pct / 100.0))
    return ordered[min(rank, len(ordered)) - 1]


def batch_summary(outcomes) -> str:
    """Fleet-wide one-liner for an ``execute_many`` batch.

    Aggregates per-query ``UsageSnapshot`` attribution (already exact
    per job) into p50/p99 wall, total calls/tokens, and hit counts.
    """
    usages = [
        outcome.usage for outcome in outcomes if outcome.usage is not None
    ]
    if not usages:
        return "-- fleet: no usage attributed"
    walls = [usage.wall_ms for usage in usages]
    calls = sum(usage.calls for usage in usages)
    tokens = sum(
        usage.prompt_tokens + usage.completion_tokens for usage in usages
    )
    text = (
        f"-- fleet: {len(usages)} quer{'y' if len(usages) == 1 else 'ies'}, "
        f"wall p50/p99 = {exact_percentile(walls, 50):.0f}/"
        f"{exact_percentile(walls, 99):.0f} ms, "
        f"{calls} call(s), {tokens} token(s)"
    )
    dedup = sum(usage.dedup_hits for usage in usages)
    fragment = sum(usage.fragment_hits for usage in usages)
    result_hits = sum(usage.result_cache_hits for usage in usages)
    extras = []
    if result_hits:
        extras.append(f"{result_hits} result hit(s)")
    if fragment:
        extras.append(f"{fragment} fragment hit(s)")
    if dedup:
        extras.append(f"{dedup} dedup join(s)")
    if extras:
        text += ", " + ", ".join(extras)
    return text
