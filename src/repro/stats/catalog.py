"""Online statistics catalog: observed cardinalities and selectivities.

Every executed plan feeds back what it actually saw — how many rows a
full enumeration returned, what fraction of rows survived a pushed or
residual predicate, how long each prompt kind took and how many tokens
it burned.  The catalog records those observations keyed the same way
the planner will ask for them:

* **tables** — last observed full-enumeration row count per table
  (last-value: the model's answer *is* the cardinality, there is
  nothing to average);
* **predicates** — additive ``(rows_in, rows_out)`` accumulators per
  ``(table, predicate fingerprint)``, where the fingerprint is the
  alias-normalized canonical text of the bound conjuncts
  (:func:`repro.storage.normalize.predicate_fingerprint`), so the same
  predicate shape written against any alias shares one accumulator;
* **calls** — per-prompt-kind latency and token histograms with the
  fixed bucket layouts of :mod:`repro.obs.metrics`, so occupancy
  counts merge additively and order-invariantly.

Persistence goes through the same :class:`~repro.storage.backend.
StoreBackend` protocol as the fragment/result stores, under keys that
lead with a literal ``"stats"`` component — deliberately *outside* the
generation-stamped scope namespace, so statistics survive cache
invalidation (``clear()`` drops cached answers, not what was learned
about the data).  Cross-process merge is delta-based: a flush reads
the persisted blob, folds in only the observations recorded since the
previous flush, and writes the merged blob back — two processes
flushing interleaved never double-count an observation.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    TOKEN_BUCKETS,
    Histogram,
    format_bound,
)

__all__ = ["StatisticsCatalog"]

#: Persisted payload schema version.
_PAYLOAD_VERSION = 1


def _empty_payload() -> Dict:
    return {
        "v": _PAYLOAD_VERSION,
        "tables": {},       # table -> observed row count (last value)
        "predicates": {},   # (table, fingerprint) -> [rows_in, rows_out]
        "latency": {},      # kind -> [counts..., count, sum] flat record
        "tokens": {},       # kind -> [counts..., count, sum] flat record
    }


def _merge_payload(base: Dict, delta: Dict) -> Dict:
    """Fold ``delta`` into ``base`` (both payload dicts); returns base.

    Tables merge last-value (delta wins: it is the newer observation);
    everything else merges additively.
    """
    base["tables"].update(delta["tables"])
    for key, (rows_in, rows_out) in delta["predicates"].items():
        acc = base["predicates"].setdefault(key, [0.0, 0.0])
        acc[0] += rows_in
        acc[1] += rows_out
    for field in ("latency", "tokens"):
        for kind, record in delta[field].items():
            counts, total = record
            existing = base[field].get(kind)
            if existing is None:
                base[field][kind] = [list(counts), float(total)]
            else:
                for i, c in enumerate(counts):
                    if i < len(existing[0]):
                        existing[0][i] += c
                existing[1] += float(total)
    return base


def _histogram_record(histogram: Histogram) -> List:
    return [histogram.bucket_counts(), histogram.sum]


def _percentile(
    bounds: Tuple[float, ...], counts: List[int], pct: float
) -> Optional[float]:
    """Integer-rank percentile over cumulative bucket counts (the same
    rule as :meth:`repro.obs.metrics.Histogram.percentile`)."""
    total = sum(counts)
    if total == 0:
        return None
    rank = max(1, math.ceil(total * pct / 100.0))
    cumulative = 0
    for i, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if cumulative >= rank:
            return bounds[i] if i < len(bounds) else math.inf
    return math.inf


class StatisticsCatalog:
    """Observed statistics with delta-based cross-process persistence.

    ``backend=None`` keeps the catalog in-memory for the session; with
    a backend, :meth:`flush` persists the unflushed delta under the
    key set by :meth:`set_scope` (which also loads what other
    processes have already recorded for that scope).
    """

    def __init__(self, backend=None):
        self._backend = backend
        self._key: Optional[Tuple] = None
        self._lock = threading.Lock()
        # Merged view (persisted + this process's unflushed delta):
        # what the planner reads.
        self._tables: Dict[str, int] = {}
        self._predicates: Dict[Tuple[str, str], List[float]] = {}
        self._latency: Dict[str, Histogram] = {}
        self._tokens: Dict[str, Histogram] = {}
        # Unflushed delta: what a flush will fold into the store.
        self._delta = _empty_payload()
        self.replans = 0           # session-local, surfaced by .stats
        self.replan_shards = 0

    # ------------------------------------------------------------------
    # Scope / persistence
    # ------------------------------------------------------------------

    def set_scope(self, key: Optional[Tuple]) -> None:
        """Bind the catalog to a persisted scope key and (re)load it.

        Keys lead with a literal ``"stats"`` component so the catalog's
        rows live outside the generation-stamped cache namespace.  A
        pending delta is flushed to the *old* key first, so switching
        scopes (catalog re-registration) never drops observations.
        """
        with self._lock:
            if key == self._key:
                return
            self._flush_locked()
            self._key = tuple(key) if key is not None else None
            self._reload_locked()

    def _reload_locked(self) -> None:
        self._tables = {}
        self._predicates = {}
        self._latency = {}
        self._tokens = {}
        payload = None
        if self._backend is not None and self._key is not None:
            payload = self._backend.peek(self._key)
        if isinstance(payload, dict) and payload.get("v") == _PAYLOAD_VERSION:
            self._tables.update(payload["tables"])
            for key, (rows_in, rows_out) in payload["predicates"].items():
                self._predicates[key] = [float(rows_in), float(rows_out)]
            for field, store, buckets in (
                ("latency", self._latency, LATENCY_BUCKETS_MS),
                ("tokens", self._tokens, TOKEN_BUCKETS),
            ):
                for kind, (counts, total) in payload[field].items():
                    histogram = Histogram(kind, buckets)
                    if len(counts) == len(buckets) + 1:
                        histogram.merge_counts(counts, total)
                    store[kind] = histogram
        # Re-apply the unflushed delta on top of the persisted view so
        # the merged state stays consistent across a reload.
        self._apply_delta_to_view(self._delta)

    def _apply_delta_to_view(self, delta: Dict) -> None:
        self._tables.update(delta["tables"])
        for key, (rows_in, rows_out) in delta["predicates"].items():
            acc = self._predicates.setdefault(key, [0.0, 0.0])
            acc[0] += rows_in
            acc[1] += rows_out
        for field, store, buckets in (
            ("latency", self._latency, LATENCY_BUCKETS_MS),
            ("tokens", self._tokens, TOKEN_BUCKETS),
        ):
            for kind, (counts, total) in delta[field].items():
                histogram = store.get(kind)
                if histogram is None:
                    histogram = Histogram(kind, buckets)
                    store[kind] = histogram
                histogram.merge_counts(counts, total)

    def flush(self) -> None:
        """Fold the unflushed delta into the persisted blob.

        Read-merge-write: only *this process's new observations* are
        added to whatever the store holds now, so concurrent processes
        flushing in any order never double-count (each observation is
        folded in exactly once, by the process that made it).
        """
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if self._backend is None or self._key is None:
            return
        if not self._delta_dirty():
            return
        persisted = self._backend.peek(self._key)
        if not (
            isinstance(persisted, dict)
            and persisted.get("v") == _PAYLOAD_VERSION
        ):
            persisted = _empty_payload()
        _merge_payload(persisted, self._delta)
        self._backend.put(self._key, persisted)
        self._delta = _empty_payload()
        # The persisted blob may contain other processes' observations
        # we have not seen; refresh the merged view from it.
        self._tables = dict(persisted["tables"])
        self._predicates = {
            key: [float(a), float(b)]
            for key, (a, b) in persisted["predicates"].items()
        }
        self._latency = {}
        self._tokens = {}
        for field, store, buckets in (
            ("latency", self._latency, LATENCY_BUCKETS_MS),
            ("tokens", self._tokens, TOKEN_BUCKETS),
        ):
            for kind, (counts, total) in persisted[field].items():
                histogram = Histogram(kind, buckets)
                if len(counts) == len(buckets) + 1:
                    histogram.merge_counts(counts, total)
                store[kind] = histogram

    def _delta_dirty(self) -> bool:
        delta = self._delta
        return bool(
            delta["tables"]
            or delta["predicates"]
            or delta["latency"]
            or delta["tokens"]
        )

    # ------------------------------------------------------------------
    # Recording (executor feedback)
    # ------------------------------------------------------------------

    def record_table_rows(self, table: str, rows: int) -> None:
        """A full enumeration of ``table`` returned ``rows`` rows."""
        table = table.lower()
        rows = int(rows)
        with self._lock:
            self._tables[table] = rows
            self._delta["tables"][table] = rows

    def record_selectivity(
        self, table: str, fingerprint: str, rows_in: float, rows_out: float
    ) -> None:
        """``rows_out`` of ``rows_in`` rows survived the predicate."""
        if rows_in <= 0:
            return
        key = (table.lower(), fingerprint)
        with self._lock:
            for store in (self._predicates, self._delta["predicates"]):
                acc = store.setdefault(key, [0.0, 0.0])
                acc[0] += float(rows_in)
                acc[1] += float(rows_out)

    def record_call(self, kind: str, latency_ms: float, tokens: float) -> None:
        """One model call of prompt ``kind`` completed."""
        with self._lock:
            for store, buckets, value in (
                (self._latency, LATENCY_BUCKETS_MS, float(latency_ms)),
                (self._tokens, TOKEN_BUCKETS, float(tokens)),
            ):
                histogram = store.get(kind)
                if histogram is None:
                    histogram = Histogram(kind, buckets)
                    store[kind] = histogram
                histogram.observe(value)
            for field, buckets, value in (
                ("latency", LATENCY_BUCKETS_MS, float(latency_ms)),
                ("tokens", TOKEN_BUCKETS, float(tokens)),
            ):
                record = self._delta[field].get(kind)
                if record is None:
                    record = [[0] * (len(buckets) + 1), 0.0]
                    self._delta[field][kind] = record
                index = len(buckets)
                for i, bound in enumerate(buckets):
                    if value <= bound:
                        index = i
                        break
                record[0][index] += 1
                record[1] += value

    # ------------------------------------------------------------------
    # Planner queries
    # ------------------------------------------------------------------

    def observed_rows(self, table: str) -> Optional[int]:
        """The last observed full row count of ``table`` (None: never
        fully enumerated)."""
        with self._lock:
            return self._tables.get(table.lower())

    def observed_selectivity(
        self, table: str, fingerprint: str
    ) -> Optional[float]:
        """Observed fraction of rows surviving the predicate shape.

        None until at least one observation exists.  The ratio is
        clamped away from exact 0 (a selective predicate may still
        match in unseen data) but may legitimately reach 1.0.
        """
        with self._lock:
            acc = self._predicates.get((table.lower(), fingerprint))
        if acc is None or acc[0] <= 0:
            return None
        rows_in, rows_out = acc
        return min(1.0, max(rows_out, 0.5) / rows_in)

    # ------------------------------------------------------------------
    # Introspection (.stats REPL command)
    # ------------------------------------------------------------------

    def describe(self) -> str:
        with self._lock:
            tables = dict(self._tables)
            predicates = {
                key: tuple(acc) for key, acc in self._predicates.items()
            }
            latency = {
                kind: (hist.bucket_counts(), hist.count)
                for kind, hist in self._latency.items()
            }
            tokens = {
                kind: hist.bucket_counts() for kind, hist in self._tokens.items()
            }
            replans = self.replans
            replan_shards = self.replan_shards
        lines: List[str] = []
        lines.append("tables:")
        if tables:
            for name in sorted(tables):
                lines.append(f"  {name}: rows={tables[name]}")
        else:
            lines.append("  (none observed)")
        lines.append("predicates:")
        if predicates:
            for (table, fingerprint) in sorted(predicates):
                rows_in, rows_out = predicates[(table, fingerprint)]
                sel = min(1.0, max(rows_out, 0.5) / rows_in) if rows_in else 0.0
                lines.append(
                    f"  {table} | {fingerprint}: sel={sel:.3f} "
                    f"({rows_out:g}/{rows_in:g})"
                )
        else:
            lines.append("  (none observed)")
        lines.append("calls:")
        if latency:
            for kind in sorted(latency):
                counts, count = latency[kind]
                p50 = format_bound(
                    _percentile(LATENCY_BUCKETS_MS, counts, 50)
                )
                tok_counts = tokens.get(kind)
                tok50 = (
                    format_bound(_percentile(TOKEN_BUCKETS, tok_counts, 50))
                    if tok_counts
                    else "-"
                )
                lines.append(
                    f"  {kind}: count={count} p50_latency_ms={p50} "
                    f"p50_tokens={tok50}"
                )
        else:
            lines.append("  (none observed)")
        if replans:
            lines.append(
                f"replans: {replans} (residual shards: {replan_shards})"
            )
        return "\n".join(lines)
