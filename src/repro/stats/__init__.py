"""Online statistics: observed cardinality/selectivity catalog."""

from repro.stats.catalog import StatisticsCatalog

__all__ = ["StatisticsCatalog"]
