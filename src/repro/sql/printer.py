"""Renders AST nodes back to SQL text.

The printer emits *canonical* SQL: keywords upper-case, ``!=`` as ``<>``,
minimal but sufficient parenthesization.  For parser-canonical ASTs,
``parse(to_sql(node)) == node`` — a property the test suite enforces and
the engine relies on when it ships predicates to the language model inside
prompts (the model side re-parses them with the same grammar).
"""

from __future__ import annotations

from typing import List

from repro.sql import ast

# Precedence levels, mirroring the parser.  Higher binds tighter.
_PREC_OR = 1
_PREC_AND = 2
_PREC_NOT = 3
_PREC_COMPARISON = 4
_PREC_ADDITIVE = 5
_PREC_MULTIPLICATIVE = 6
_PREC_UNARY = 7
_PREC_PRIMARY = 8

_BINARY_PRECEDENCE = {
    "OR": _PREC_OR,
    "AND": _PREC_AND,
    "=": _PREC_COMPARISON,
    "<>": _PREC_COMPARISON,
    "<": _PREC_COMPARISON,
    "<=": _PREC_COMPARISON,
    ">": _PREC_COMPARISON,
    ">=": _PREC_COMPARISON,
    "+": _PREC_ADDITIVE,
    "-": _PREC_ADDITIVE,
    "||": _PREC_ADDITIVE,
    "*": _PREC_MULTIPLICATIVE,
    "/": _PREC_MULTIPLICATIVE,
    "%": _PREC_MULTIPLICATIVE,
}

_SAFE_IDENT_KEYWORD_CLASH = None  # computed lazily from the lexer keyword set


def _needs_quotes(name: str) -> bool:
    from repro.sql.tokens import KEYWORDS

    if not name:
        return True
    if not (name[0].isalpha() or name[0] == "_"):
        return True
    if any(not (ch.isalnum() or ch == "_") for ch in name):
        return True
    return name.upper() in KEYWORDS


def format_identifier(name: str) -> str:
    """Quote an identifier only when necessary."""
    if _needs_quotes(name):
        escaped = name.replace('"', '""')
        return f'"{escaped}"'
    return name


def format_string_literal(value: str) -> str:
    """Render a string literal with ``''`` escaping."""
    escaped = value.replace("'", "''")
    return f"'{escaped}'"


def format_literal(value: object) -> str:
    """Render any literal value as SQL text."""
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, float):
        text = repr(value)
        # Ensure the token re-lexes as a FLOAT, not an INTEGER.
        if "e" not in text and "E" not in text and "." not in text:
            text += ".0"
        return text
    if isinstance(value, int):
        return str(value)
    return format_string_literal(str(value))


def _expr_precedence(expr: ast.Expr) -> int:
    if isinstance(expr, ast.BinaryOp):
        return _BINARY_PRECEDENCE[expr.op]
    if isinstance(expr, ast.UnaryOp):
        return _PREC_NOT if expr.op == "NOT" else _PREC_UNARY
    if isinstance(
        expr, (ast.Between, ast.InList, ast.InSubquery, ast.Like, ast.IsNull)
    ):
        return _PREC_COMPARISON
    return _PREC_PRIMARY


def _print_child(expr: ast.Expr, parent_precedence: int, *, strict: bool) -> str:
    """Print a child expression, adding parens when precedence demands it.

    ``strict`` requires the child to bind strictly tighter (used for right
    operands of left-associative operators and all comparison operands).
    """
    text = print_expression(expr)
    child_precedence = _expr_precedence(expr)
    if child_precedence < parent_precedence or (
        strict and child_precedence == parent_precedence
    ):
        return f"({text})"
    return text


def print_expression(expr: ast.Expr) -> str:
    """Render an expression AST as SQL text."""
    if isinstance(expr, ast.Literal):
        return format_literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        if expr.table:
            return f"{format_identifier(expr.table)}.{format_identifier(expr.name)}"
        return format_identifier(expr.name)
    if isinstance(expr, ast.Star):
        return f"{format_identifier(expr.table)}.*" if expr.table else "*"
    if isinstance(expr, ast.BinaryOp):
        precedence = _BINARY_PRECEDENCE[expr.op]
        # The grammar is left-associative, so an equal-precedence RIGHT
        # child always needs parentheses; a LEFT child only does at the
        # (non-associative) comparison level.
        left = _print_child(expr.left, precedence, strict=precedence == _PREC_COMPARISON)
        right = _print_child(expr.right, precedence, strict=True)
        return f"{left} {expr.op} {right}"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            operand = _print_child(expr.operand, _PREC_NOT, strict=False)
            return f"NOT {operand}"
        operand = _print_child(expr.operand, _PREC_UNARY, strict=True)
        return f"{expr.op}{operand}"
    if isinstance(expr, ast.FunctionCall):
        inner = ", ".join(print_expression(arg) for arg in expr.args)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.Cast):
        return f"CAST({print_expression(expr.operand)} AS {expr.type_name})"
    if isinstance(expr, ast.Between):
        word = "NOT BETWEEN" if expr.negated else "BETWEEN"
        operand = _print_child(expr.operand, _PREC_COMPARISON, strict=True)
        low = _print_child(expr.low, _PREC_COMPARISON, strict=True)
        high = _print_child(expr.high, _PREC_COMPARISON, strict=True)
        return f"{operand} {word} {low} AND {high}"
    if isinstance(expr, ast.InList):
        word = "NOT IN" if expr.negated else "IN"
        operand = _print_child(expr.operand, _PREC_COMPARISON, strict=True)
        items = ", ".join(print_expression(item) for item in expr.items)
        return f"{operand} {word} ({items})"
    if isinstance(expr, ast.InSubquery):
        word = "NOT IN" if expr.negated else "IN"
        operand = _print_child(expr.operand, _PREC_COMPARISON, strict=True)
        return f"{operand} {word} ({print_statement(expr.query)})"
    if isinstance(expr, ast.Exists):
        prefix = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{prefix} ({print_statement(expr.query)})"
    if isinstance(expr, ast.ScalarSubquery):
        return f"({print_statement(expr.query)})"
    if isinstance(expr, ast.IsNull):
        word = "IS NOT NULL" if expr.negated else "IS NULL"
        operand = _print_child(expr.operand, _PREC_COMPARISON, strict=True)
        return f"{operand} {word}"
    if isinstance(expr, ast.Like):
        word = "NOT LIKE" if expr.negated else "LIKE"
        operand = _print_child(expr.operand, _PREC_COMPARISON, strict=True)
        pattern = _print_child(expr.pattern, _PREC_COMPARISON, strict=True)
        return f"{operand} {word} {pattern}"
    if isinstance(expr, ast.CaseWhen):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(print_expression(expr.operand))
        for condition, result in expr.branches:
            parts.append(
                f"WHEN {print_expression(condition)} THEN {print_expression(result)}"
            )
        if expr.else_result is not None:
            parts.append(f"ELSE {print_expression(expr.else_result)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"cannot print expression node {type(expr).__name__}")


def _print_table_ref(ref: ast.TableRef) -> str:
    if isinstance(ref, ast.NamedTable):
        text = format_identifier(ref.name)
        if ref.alias:
            text += f" AS {format_identifier(ref.alias)}"
        return text
    if isinstance(ref, ast.SubqueryTable):
        return f"({print_statement(ref.query)}) AS {format_identifier(ref.alias)}"
    if isinstance(ref, ast.Join):
        left = _print_table_ref(ref.left)
        right = _print_table_ref(ref.right)
        if ref.kind == "cross":
            return f"{left} CROSS JOIN {right}"
        keyword = {"inner": "JOIN", "left": "LEFT JOIN"}[ref.kind]
        condition = print_expression(ref.condition)
        return f"{left} {keyword} {right} ON {condition}"
    raise TypeError(f"cannot print table reference {type(ref).__name__}")


def _print_order_by(items: List[ast.OrderItem]) -> str:
    rendered = []
    for item in items:
        text = print_expression(item.expr)
        if item.descending:
            text += " DESC"
        if item.nulls_last is True:
            text += " NULLS LAST"
        elif item.nulls_last is False:
            text += " NULLS FIRST"
        rendered.append(text)
    return "ORDER BY " + ", ".join(rendered)


def _print_query(query: ast.Query) -> str:
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    select_items = []
    for item in query.select:
        text = print_expression(item.expr)
        if item.alias:
            text += f" AS {format_identifier(item.alias)}"
        select_items.append(text)
    parts.append(", ".join(select_items))
    if query.from_clause is not None:
        parts.append("FROM " + _print_table_ref(query.from_clause))
    if query.where is not None:
        parts.append("WHERE " + print_expression(query.where))
    if query.group_by:
        parts.append(
            "GROUP BY " + ", ".join(print_expression(e) for e in query.group_by)
        )
    if query.having is not None:
        parts.append("HAVING " + print_expression(query.having))
    if query.order_by:
        parts.append(_print_order_by(query.order_by))
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    if query.offset is not None:
        parts.append(f"OFFSET {query.offset}")
    return " ".join(parts)


def print_statement(statement: ast.Statement) -> str:
    """Render a full statement (query or set operation) as SQL text."""
    if isinstance(statement, ast.Query):
        return _print_query(statement)
    if isinstance(statement, ast.SetOperation):
        op_word = statement.op.upper()
        if statement.all:
            op_word += " ALL"
        left = print_statement(
            statement.left
            if isinstance(statement.left, ast.SetOperation)
            else statement.left
        )
        right = _print_query(statement.right)
        parts = [f"{left} {op_word} {right}"]
        if statement.order_by:
            parts.append(_print_order_by(statement.order_by))
        if statement.limit is not None:
            parts.append(f"LIMIT {statement.limit}")
        if statement.offset is not None:
            parts.append(f"OFFSET {statement.offset}")
        return " ".join(parts)
    raise TypeError(f"cannot print statement {type(statement).__name__}")


def to_sql(node: ast.Node) -> str:
    """Render any AST node (statement or expression) as SQL text."""
    if isinstance(node, (ast.Query, ast.SetOperation)):
        return print_statement(node)
    if isinstance(node, ast.Expr):
        return print_expression(node)
    raise TypeError(f"cannot print node {type(node).__name__}")
