"""Hand-written SQL tokenizer.

Supports:

* ``--`` line comments and ``/* ... */`` block comments,
* single-quoted string literals with ``''`` escaping,
* double-quoted identifiers,
* integer and float literals (decimal point and/or exponent),
* the operator and punctuation inventory in :mod:`repro.sql.tokens`.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import LexerError
from repro.sql.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)


class Lexer:
    """Converts SQL text into a token stream."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    # -- character helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self._pos, self._line, self._column)

    # -- whitespace / comments --------------------------------------------

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while True:
                    if not self._peek():
                        raise self._error("unterminated block comment")
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
            else:
                return

    # -- token scanners ----------------------------------------------------

    def _make(self, kind: TokenKind, text: str, value: object = None) -> Token:
        return Token(
            kind=kind,
            text=text,
            value=value,
            position=self._start_pos,
            line=self._start_line,
            column=self._start_column,
        )

    def _scan_string(self) -> Token:
        self._advance()  # opening quote
        pieces: List[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise self._error("unterminated string literal")
            if ch == "'":
                if self._peek(1) == "'":
                    pieces.append("'")
                    self._advance(2)
                    continue
                self._advance()
                break
            pieces.append(ch)
            self._advance()
        value = "".join(pieces)
        return self._make(TokenKind.STRING, f"'{value}'", value)

    def _scan_quoted_ident(self) -> Token:
        self._advance()  # opening double quote
        pieces: List[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise self._error("unterminated quoted identifier")
            if ch == '"':
                if self._peek(1) == '"':
                    pieces.append('"')
                    self._advance(2)
                    continue
                self._advance()
                break
            pieces.append(ch)
            self._advance()
        name = "".join(pieces)
        if not name:
            raise self._error("empty quoted identifier")
        return self._make(TokenKind.IDENT, name, name)

    def _scan_number(self) -> Token:
        start = self._pos
        saw_dot = False
        saw_exp = False
        while True:
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not saw_dot and not saw_exp and self._peek(1).isdigit():
                saw_dot = True
                self._advance()
            elif ch in "eE" and not saw_exp:
                nxt = self._peek(1)
                nxt2 = self._peek(2)
                if nxt.isdigit() or (nxt in "+-" and nxt2.isdigit()):
                    saw_exp = True
                    self._advance(2 if nxt in "+-" else 1)
                else:
                    break
            else:
                break
        text = self._source[start : self._pos]
        if saw_dot or saw_exp:
            return self._make(TokenKind.FLOAT, text, float(text))
        return self._make(TokenKind.INTEGER, text, int(text))

    def _scan_word(self) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start : self._pos]
        upper = text.upper()
        if upper in KEYWORDS:
            return self._make(TokenKind.KEYWORD, upper)
        return self._make(TokenKind.IDENT, text, text)

    # -- public API ----------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until (and including) EOF."""
        while True:
            self._skip_trivia()
            self._start_pos = self._pos
            self._start_line = self._line
            self._start_column = self._column
            ch = self._peek()
            if not ch:
                yield self._make(TokenKind.EOF, "")
                return
            if ch == "'":
                yield self._scan_string()
            elif ch == '"':
                yield self._scan_quoted_ident()
            elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                yield self._scan_number()
            elif ch.isalpha() or ch == "_":
                yield self._scan_word()
            else:
                two = ch + self._peek(1)
                if two in MULTI_CHAR_OPERATORS:
                    self._advance(2)
                    yield self._make(TokenKind.OPERATOR, two)
                elif ch in SINGLE_CHAR_OPERATORS:
                    self._advance()
                    yield self._make(TokenKind.OPERATOR, ch)
                elif ch in PUNCTUATION:
                    self._advance()
                    yield self._make(TokenKind.PUNCT, ch)
                else:
                    raise self._error(f"unexpected character {ch!r}")


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a list ending with an EOF token."""
    return list(Lexer(source).tokens())
