"""Recursive-descent parser for the supported SQL subset.

The grammar (informally)::

    statement   := query_expr [';']
    query_expr  := select_core (set_op select_core)* [order_by] [limit]
    set_op      := (UNION | INTERSECT | EXCEPT) [ALL]
    select_core := SELECT [DISTINCT | ALL] select_list
                   [FROM from_clause] [WHERE expr]
                   [GROUP BY expr_list] [HAVING expr]
    from_clause := table_primary (join_clause)*
    join_clause := [INNER | LEFT [OUTER] | CROSS] JOIN table_primary [ON expr]

Expression precedence, loosest first::

    OR < AND < NOT < comparison/IS/IN/BETWEEN/LIKE < + - || < * / % < unary

``!=`` is normalized to ``<>`` so that the printer/parser round trip is an
identity on ASTs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenKind

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_SET_OPS = {"UNION": "union", "INTERSECT": "intersect", "EXCEPT": "except"}
_TYPE_NAMES = {"INTEGER", "REAL", "FLOAT", "TEXT", "VARCHAR", "BOOLEAN"}


class Parser:
    """Parses a token stream into AST nodes."""

    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._index = 0

    # -- token stream helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self._peek()
        return ParseError(
            f"{message}, found {token.describe()}", token.line, token.column
        )

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._peek().is_keyword(*names):
            return self._advance()
        return None

    def _expect_keyword(self, name: str) -> Token:
        token = self._accept_keyword(name)
        if token is None:
            raise self._error(f"expected {name}")
        return token

    def _accept_operator(self, *ops: str) -> Optional[Token]:
        if self._peek().is_operator(*ops):
            return self._advance()
        return None

    def _accept_punct(self, *chars: str) -> Optional[Token]:
        if self._peek().is_punct(*chars):
            return self._advance()
        return None

    def _expect_punct(self, char: str) -> Token:
        token = self._accept_punct(char)
        if token is None:
            raise self._error(f"expected {char!r}")
        return token

    def _expect_ident(self, what: str = "identifier") -> Token:
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            return self._advance()
        raise self._error(f"expected {what}")

    # -- entry points ----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Parse a full statement and require EOF afterwards."""
        statement = self._parse_query_expr()
        self._accept_punct(";")
        if self._peek().kind is not TokenKind.EOF:
            raise self._error("unexpected trailing input")
        return statement

    def parse_only_expression(self) -> ast.Expr:
        """Parse a standalone expression (used to re-parse shipped predicates)."""
        expr = self._parse_expr()
        if self._peek().kind is not TokenKind.EOF:
            raise self._error("unexpected trailing input after expression")
        return expr

    # -- query structure ---------------------------------------------------------

    def _parse_query_expr(self) -> ast.Statement:
        node: ast.Statement = self._parse_select_core()
        while self._peek().is_keyword(*_SET_OPS):
            op_token = self._advance()
            use_all = self._accept_keyword("ALL") is not None
            right = self._parse_select_core()
            node = ast.SetOperation(
                op=_SET_OPS[op_token.text], left=node, right=right, all=use_all
            )
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit_offset()
        if isinstance(node, ast.SetOperation):
            node.order_by = order_by
            node.limit = limit
            node.offset = offset
        else:
            node.order_by = order_by
            node.limit = limit
            node.offset = offset
        return node

    def _parse_select_core(self) -> ast.Query:
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")
        select_items = [self._parse_select_item()]
        while self._accept_punct(","):
            select_items.append(self._parse_select_item())

        from_clause = None
        if self._accept_keyword("FROM"):
            from_clause = self._parse_from_clause()

        where = self._parse_expr() if self._accept_keyword("WHERE") else None

        group_by: List[ast.Expr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expr())
            while self._accept_punct(","):
                group_by.append(self._parse_expr())

        having = self._parse_expr() if self._accept_keyword("HAVING") else None

        return ast.Query(
            select=select_items,
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.is_operator("*"):
            self._advance()
            return ast.SelectItem(expr=ast.Star())
        if (
            token.kind is TokenKind.IDENT
            and self._peek(1).is_punct(".")
            and self._peek(2).is_operator("*")
        ):
            table = self._advance().text
            self._advance()  # '.'
            self._advance()  # '*'
            return ast.SelectItem(expr=ast.Star(table=table))
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias after AS").text
        elif self._peek().kind is TokenKind.IDENT:
            alias = self._advance().text
        return ast.SelectItem(expr=expr, alias=alias)

    def _parse_from_clause(self) -> ast.TableRef:
        node = self._parse_table_primary()
        while True:
            kind = None
            if self._accept_keyword("CROSS"):
                self._expect_keyword("JOIN")
                kind = "cross"
            elif self._accept_keyword("INNER"):
                self._expect_keyword("JOIN")
                kind = "inner"
            elif self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                kind = "left"
            elif self._accept_keyword("JOIN"):
                kind = "inner"
            elif self._accept_punct(","):
                kind = "cross"
            else:
                return node
            right = self._parse_table_primary()
            condition = None
            if kind != "cross":
                self._expect_keyword("ON")
                condition = self._parse_expr()
            node = ast.Join(left=node, right=right, kind=kind, condition=condition)

    def _parse_table_primary(self) -> ast.TableRef:
        if self._accept_punct("("):
            if not self._peek().is_keyword("SELECT"):
                raise self._error("expected SELECT in derived table")
            query = self._parse_query_expr()
            self._expect_punct(")")
            self._accept_keyword("AS")
            alias = self._expect_ident("alias for derived table").text
            if not isinstance(query, ast.Query):
                raise self._error("set operations are not supported in derived tables")
            return ast.SubqueryTable(query=query, alias=alias)
        name = self._expect_ident("table name").text
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias after AS").text
        elif self._peek().kind is TokenKind.IDENT:
            alias = self._advance().text
        return ast.NamedTable(name=name, alias=alias)

    def _parse_order_by(self) -> List[ast.OrderItem]:
        if not self._accept_keyword("ORDER"):
            return []
        self._expect_keyword("BY")
        items = [self._parse_order_item()]
        while self._accept_punct(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        nulls_last: Optional[bool] = None
        if self._accept_keyword("NULLS"):
            if self._accept_keyword("LAST"):
                nulls_last = True
            elif self._accept_keyword("FIRST"):
                nulls_last = False
            else:
                raise self._error("expected FIRST or LAST after NULLS")
        return ast.OrderItem(expr=expr, descending=descending, nulls_last=nulls_last)

    def _parse_limit_offset(self) -> Tuple[Optional[int], Optional[int]]:
        limit = None
        offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_nonnegative_int("LIMIT")
        if self._accept_keyword("OFFSET"):
            offset = self._parse_nonnegative_int("OFFSET")
        return limit, offset

    def _parse_nonnegative_int(self, clause: str) -> int:
        token = self._peek()
        if token.kind is not TokenKind.INTEGER:
            raise self._error(f"expected integer after {clause}")
        self._advance()
        return int(token.value)

    # -- expressions --------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = ast.BinaryOp(op="OR", left=left, right=right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = ast.BinaryOp(op="AND", left=left, right=right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp(op="NOT", operand=self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.text in _COMPARISON_OPS:
            self._advance()
            op = "<>" if token.text == "!=" else token.text
            right = self._parse_additive()
            return ast.BinaryOp(op=op, left=left, right=right)
        if token.is_keyword("IS"):
            self._advance()
            negated = self._accept_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return ast.IsNull(operand=left, negated=negated)
        negated = False
        if token.is_keyword("NOT"):
            follower = self._peek(1)
            if follower.is_keyword("BETWEEN", "IN", "LIKE"):
                self._advance()
                negated = True
                token = self._peek()
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(operand=left, low=low, high=high, negated=negated)
        if token.is_keyword("IN"):
            self._advance()
            return self._parse_in_tail(left, negated)
        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._parse_additive()
            return ast.Like(operand=left, pattern=pattern, negated=negated)
        return left

    def _parse_in_tail(self, operand: ast.Expr, negated: bool) -> ast.Expr:
        self._expect_punct("(")
        if self._peek().is_keyword("SELECT"):
            query = self._parse_query_expr()
            self._expect_punct(")")
            if not isinstance(query, ast.Query):
                raise self._error("set operations are not supported in IN subqueries")
            return ast.InSubquery(operand=operand, query=query, negated=negated)
        items = [self._parse_expr()]
        while self._accept_punct(","):
            items.append(self._parse_expr())
        self._expect_punct(")")
        return ast.InList(operand=operand, items=items, negated=negated)

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._accept_operator("+", "-", "||")
            if token is None:
                return left
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op=token.text, left=left, right=right)

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._accept_operator("*", "/", "%")
            if token is None:
                return left
            right = self._parse_unary()
            left = ast.BinaryOp(op=token.text, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        token = self._accept_operator("-", "+")
        if token is not None:
            operand = self._parse_unary()
            # Fold unary minus into numeric literals so -3 round-trips.
            if token.text == "-" and isinstance(operand, ast.Literal):
                if isinstance(operand.value, (int, float)) and not isinstance(
                    operand.value, bool
                ):
                    return ast.Literal(value=-operand.value)
            if token.text == "+":
                return operand
            return ast.UnaryOp(op=token.text, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(value=token.value)
        if token.kind is TokenKind.INTEGER or token.kind is TokenKind.FLOAT:
            self._advance()
            return ast.Literal(value=token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(value=None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(value=True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(value=False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            query = self._parse_query_expr()
            self._expect_punct(")")
            if not isinstance(query, ast.Query):
                raise self._error("set operations are not supported in EXISTS")
            return ast.Exists(query=query)
        if token.is_punct("("):
            self._advance()
            if self._peek().is_keyword("SELECT"):
                query = self._parse_query_expr()
                self._expect_punct(")")
                if not isinstance(query, ast.Query):
                    raise self._error(
                        "set operations are not supported in scalar subqueries"
                    )
                return ast.ScalarSubquery(query=query)
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.kind is TokenKind.IDENT:
            return self._parse_ident_led()
        raise self._error("expected expression")

    def _parse_ident_led(self) -> ast.Expr:
        name_token = self._advance()
        if self._peek().is_punct("("):
            return self._parse_function_call(name_token.text)
        if self._peek().is_punct(".") and self._peek(1).kind is TokenKind.IDENT:
            self._advance()
            column = self._advance().text
            return ast.ColumnRef(name=column, table=name_token.text)
        return ast.ColumnRef(name=name_token.text)

    def _parse_function_call(self, name: str) -> ast.Expr:
        self._expect_punct("(")
        canonical = name.upper()
        distinct = self._accept_keyword("DISTINCT") is not None
        args: List[ast.Expr] = []
        if self._accept_punct(")"):
            return ast.FunctionCall(name=canonical, args=args, distinct=distinct)
        if self._peek().is_operator("*"):
            self._advance()
            args.append(ast.Star())
        else:
            args.append(self._parse_expr())
            while self._accept_punct(","):
                args.append(self._parse_expr())
        self._expect_punct(")")
        return ast.FunctionCall(name=canonical, args=args, distinct=distinct)

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("CASE")
        operand = None
        if not self._peek().is_keyword("WHEN"):
            operand = self._parse_expr()
        branches: List[Tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_expr()
            self._expect_keyword("THEN")
            result = self._parse_expr()
            branches.append((condition, result))
        if not branches:
            raise self._error("CASE requires at least one WHEN branch")
        else_result = None
        if self._accept_keyword("ELSE"):
            else_result = self._parse_expr()
        self._expect_keyword("END")
        return ast.CaseWhen(operand=operand, branches=branches, else_result=else_result)

    def _parse_cast(self) -> ast.Expr:
        self._expect_keyword("CAST")
        self._expect_punct("(")
        operand = self._parse_expr()
        self._expect_keyword("AS")
        token = self._peek()
        if not token.is_keyword(*_TYPE_NAMES):
            raise self._error("expected type name in CAST")
        self._advance()
        self._expect_punct(")")
        return ast.Cast(operand=operand, type_name=token.text)


def parse(source: str) -> ast.Statement:
    """Parse a SQL statement from text."""
    return Parser(source).parse_statement()


def parse_expression(source: str) -> ast.Expr:
    """Parse a standalone SQL expression from text."""
    return Parser(source).parse_only_expression()
