"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


#: Reserved words recognized by the lexer (upper-cased canonical forms).
KEYWORDS = frozenset(
    {
        "ALL",
        "AND",
        "AS",
        "ASC",
        "BETWEEN",
        "BOOLEAN",
        "BY",
        "CASE",
        "CAST",
        "CROSS",
        "DESC",
        "DISTINCT",
        "ELSE",
        "END",
        "EXCEPT",
        "EXISTS",
        "FALSE",
        "FIRST",
        "FLOAT",
        "FROM",
        "FULL",
        "GROUP",
        "HAVING",
        "IN",
        "INNER",
        "INTEGER",
        "INTERSECT",
        "IS",
        "JOIN",
        "LAST",
        "LEFT",
        "LIKE",
        "LIMIT",
        "NOT",
        "NULL",
        "NULLS",
        "OFFSET",
        "ON",
        "OR",
        "ORDER",
        "OUTER",
        "REAL",
        "RIGHT",
        "SELECT",
        "TEXT",
        "THEN",
        "TRUE",
        "UNION",
        "USING",
        "VARCHAR",
        "WHEN",
        "WHERE",
    }
)

#: Multi-character operators, longest first so the lexer can match greedily.
MULTI_CHAR_OPERATORS = ("<>", "!=", ">=", "<=", "||")

#: Single-character operators.
SINGLE_CHAR_OPERATORS = frozenset("+-*/%=<>")

#: Punctuation characters.
PUNCTUATION = frozenset("(),.;")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: lexical category.
        text: canonical text (keywords upper-cased, identifiers as written).
        value: decoded value for literals (str for STRING, int/float for
            numbers); ``None`` otherwise.
        position: 0-based character offset in the source.
        line: 1-based source line.
        column: 1-based source column.
    """

    kind: TokenKind
    text: str
    value: object = None
    position: int = 0
    line: int = 1
    column: int = 1

    def is_keyword(self, *names: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_operator(self, *ops: str) -> bool:
        """Return True if this token is one of the given operators."""
        return self.kind is TokenKind.OPERATOR and self.text in ops

    def is_punct(self, *chars: str) -> bool:
        """Return True if this token is one of the given punctuation marks."""
        return self.kind is TokenKind.PUNCT and self.text in chars

    def describe(self) -> str:
        """Human-readable description used in parse errors."""
        if self.kind is TokenKind.EOF:
            return "end of input"
        return f"{self.kind.value} {self.text!r}"
