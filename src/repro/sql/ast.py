"""Abstract syntax tree for the supported SQL subset.

All nodes are plain dataclasses with structural equality, so round-trip
tests can assert ``parse(to_sql(node)) == node``.  Expression nodes carry no
type information; typing happens in the binder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


class Node:
    """Marker base class for every AST node."""


class Expr(Node):
    """Marker base class for expression nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(eq=True)
class Literal(Expr):
    """A constant: string, int, float, bool or NULL (value None)."""

    value: Union[str, int, float, bool, None]


@dataclass(eq=True)
class ColumnRef(Expr):
    """Reference to a column, optionally qualified by table or alias."""

    name: str
    table: Optional[str] = None

    def key(self) -> str:
        """Qualified display form used in error messages."""
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(eq=True)
class Star(Expr):
    """``*`` or ``table.*`` in a select list or ``COUNT(*)``."""

    table: Optional[str] = None


@dataclass(eq=True)
class BinaryOp(Expr):
    """Binary operator application (arithmetic, comparison, AND/OR, ||)."""

    op: str
    left: Expr
    right: Expr


@dataclass(eq=True)
class UnaryOp(Expr):
    """Unary operator application: NOT, unary minus or plus."""

    op: str
    operand: Expr


@dataclass(eq=True)
class FunctionCall(Expr):
    """Scalar or aggregate function call.

    ``COUNT(*)`` is represented with a single :class:`Star` argument.
    """

    name: str
    args: List[Expr] = field(default_factory=list)
    distinct: bool = False


@dataclass(eq=True)
class Cast(Expr):
    """``CAST(expr AS type_name)``."""

    operand: Expr
    type_name: str


@dataclass(eq=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(eq=True)
class InList(Expr):
    """``expr [NOT] IN (item, ...)``."""

    operand: Expr
    items: List[Expr]
    negated: bool = False


@dataclass(eq=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expr
    query: "Query"
    negated: bool = False


@dataclass(eq=True)
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: "Query"
    negated: bool = False


@dataclass(eq=True)
class ScalarSubquery(Expr):
    """A parenthesized SELECT used as a scalar value."""

    query: "Query"


@dataclass(eq=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass(eq=True)
class Like(Expr):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass(eq=True)
class CaseWhen(Expr):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    operand: Optional[Expr]
    branches: List[Tuple[Expr, Expr]]
    else_result: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Table references
# ---------------------------------------------------------------------------


class TableRef(Node):
    """Marker base class for FROM-clause items."""


@dataclass(eq=True)
class NamedTable(TableRef):
    """A base (physical or virtual) table, optionally aliased."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        """Name under which columns of this table are visible."""
        return self.alias or self.name


@dataclass(eq=True)
class SubqueryTable(TableRef):
    """A derived table: ``(SELECT ...) alias``."""

    query: "Query"
    alias: str


@dataclass(eq=True)
class Join(TableRef):
    """A join between two table references.

    ``kind`` is one of ``"inner"``, ``"left"``, ``"cross"``.
    ``condition`` is None only for cross joins.
    """

    left: TableRef
    right: TableRef
    kind: str = "inner"
    condition: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass(eq=True)
class SelectItem(Node):
    """One item of the SELECT list."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(eq=True)
class OrderItem(Node):
    """One ORDER BY key."""

    expr: Expr
    descending: bool = False
    nulls_last: Optional[bool] = None  # None = dialect default


@dataclass(eq=True)
class Query(Node):
    """A single SELECT statement (no set operations)."""

    select: List[SelectItem]
    from_clause: Optional[TableRef] = None
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass(eq=True)
class SetOperation(Node):
    """``query UNION [ALL] query`` (also INTERSECT/EXCEPT).

    Left-associative chains parse into left-nested SetOperations.  ORDER
    BY/LIMIT attached to the whole set operation live here, not on the
    operand queries.
    """

    op: str  # "union" | "intersect" | "except"
    left: Union["Query", "SetOperation"]
    right: "Query"
    all: bool = False
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None


Statement = Union[Query, SetOperation]


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def expression_children(expr: Expr) -> List[Expr]:
    """Direct sub-expressions of ``expr`` (excluding subquery bodies)."""
    if isinstance(expr, BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, UnaryOp):
        return [expr.operand]
    if isinstance(expr, FunctionCall):
        return list(expr.args)
    if isinstance(expr, Cast):
        return [expr.operand]
    if isinstance(expr, Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, InSubquery):
        return [expr.operand]
    if isinstance(expr, IsNull):
        return [expr.operand]
    if isinstance(expr, Like):
        return [expr.operand, expr.pattern]
    if isinstance(expr, CaseWhen):
        children: List[Expr] = []
        if expr.operand is not None:
            children.append(expr.operand)
        for condition, result in expr.branches:
            children.extend((condition, result))
        if expr.else_result is not None:
            children.append(expr.else_result)
        return children
    return []


def walk_expression(expr: Expr):
    """Yield ``expr`` and all nested sub-expressions, depth-first."""
    yield expr
    for child in expression_children(expr):
        yield from walk_expression(child)


def collect_column_refs(expr: Expr) -> List[ColumnRef]:
    """All :class:`ColumnRef` nodes in ``expr`` (excluding subquery bodies)."""
    return [node for node in walk_expression(expr) if isinstance(node, ColumnRef)]


def contains_subquery(expr: Expr) -> bool:
    """True if ``expr`` contains any form of subquery."""
    return any(
        isinstance(node, (InSubquery, Exists, ScalarSubquery))
        for node in walk_expression(expr)
    )


#: Aggregate function names recognized across the engine.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


def is_aggregate_call(expr: Expr) -> bool:
    """True if ``expr`` is a call to an aggregate function."""
    return isinstance(expr, FunctionCall) and expr.name.upper() in AGGREGATE_FUNCTIONS


def contains_aggregate(expr: Expr) -> bool:
    """True if any node in ``expr`` is an aggregate call."""
    return any(is_aggregate_call(node) for node in walk_expression(expr))
