"""SQL frontend: lexer, parser, AST, printer and binder.

This package implements, from scratch, the SQL subset the engine supports:

* ``SELECT [DISTINCT] expr [AS alias], ...``
* ``FROM table [alias]`` with ``INNER/LEFT/CROSS JOIN ... ON``
* ``WHERE`` with full boolean expressions (3-valued logic downstream)
* ``GROUP BY`` / ``HAVING`` with the standard aggregate functions
* ``ORDER BY expr [ASC|DESC] [NULLS FIRST|LAST]``, ``LIMIT`` / ``OFFSET``
* scalar subqueries, ``IN (SELECT ...)``, ``EXISTS``, ``UNION [ALL]``
* ``CASE WHEN``, ``CAST``, ``BETWEEN``, ``LIKE``, ``IS [NOT] NULL``

The printer renders ASTs back to SQL text; ``parse(print(q))`` is an
identity, which the engine exploits to ship predicates to the LLM inside
prompts and re-parse them on the model side (see ``repro.llm.simulated``).
"""

from repro.sql.lexer import Lexer, tokenize
from repro.sql.parser import Parser, parse, parse_expression
from repro.sql.printer import to_sql
from repro.sql.binder import Binder, BoundQuery

__all__ = [
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "parse_expression",
    "to_sql",
    "Binder",
    "BoundQuery",
]
