"""Semantic analysis: resolve names against a catalog and type the output.

The binder takes a parsed statement plus a
:class:`~repro.relational.catalog.Catalog` and produces a
:class:`BoundQuery`:

* every :class:`~repro.sql.ast.ColumnRef` is rewritten to carry its binding
  (table alias) explicitly, so downstream planning never guesses scope;
* unknown tables/columns and ambiguous names raise
  :class:`~repro.errors.BindError` with precise messages;
* aggregate misuse is rejected (aggregates in WHERE, HAVING without
  grouping context, nested aggregates);
* an output schema (column names and inferred types) is computed.

Binding returns *new* AST nodes; the input statement is never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import BindError
from repro.relational import functions as scalar_functions
from repro.relational.aggregates import is_aggregate_function
from repro.relational.catalog import Catalog
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType, infer_type
from repro.sql import ast
from repro.sql.printer import print_expression


@dataclass
class BindingScope:
    """Tables visible at one query level; chains to outer levels."""

    tables: Dict[str, TableSchema] = field(default_factory=dict)
    parent: Optional["BindingScope"] = None

    def add(self, binding: str, schema: TableSchema) -> None:
        key = binding.lower()
        if key in self.tables:
            raise BindError(f"duplicate table name or alias {binding!r}")
        self.tables[key] = schema

    def resolve_column(
        self, table: Optional[str], name: str
    ) -> Tuple[str, Column]:
        """Resolve to (binding name, column), searching outward."""
        if table is not None:
            key = table.lower()
            scope: Optional[BindingScope] = self
            while scope is not None:
                if key in scope.tables:
                    schema = scope.tables[key]
                    column = schema.find_column(name)
                    if column is None:
                        raise BindError(
                            f"no column {name!r} in table {table!r} "
                            f"(columns: {', '.join(schema.column_names)})"
                        )
                    return key, column
                scope = scope.parent
            raise BindError(f"unknown table or alias {table!r}")
        scope = self
        while scope is not None:
            matches = [
                (binding, schema.find_column(name))
                for binding, schema in scope.tables.items()
                if schema.has_column(name)
            ]
            if len(matches) > 1:
                candidates = ", ".join(sorted(binding for binding, _ in matches))
                raise BindError(
                    f"ambiguous column {name!r} (found in {candidates})"
                )
            if matches:
                binding, column = matches[0]
                assert column is not None
                return binding, column
            scope = scope.parent
        raise BindError(f"unknown column {name!r}")

    def bindings_in_order(self) -> List[Tuple[str, TableSchema]]:
        return list(self.tables.items())


@dataclass
class BoundQuery:
    """Result of binding: rewritten AST plus derived metadata."""

    query: ast.Statement
    output_columns: List[Column]
    #: binding name (lower-cased) -> schema, this level only
    tables: Dict[str, TableSchema]
    uses_aggregates: bool
    has_group_by: bool

    @property
    def output_names(self) -> List[str]:
        return [column.name for column in self.output_columns]


class Binder:
    """Binds statements against a catalog."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    # -- public API -------------------------------------------------------------

    def bind(self, statement: ast.Statement) -> BoundQuery:
        """Bind a statement; raises BindError on any semantic problem."""
        if isinstance(statement, ast.SetOperation):
            return self._bind_set_operation(statement)
        return self._bind_query(statement, parent=None)

    # -- set operations ------------------------------------------------------------

    def _bind_set_operation(self, setop: ast.SetOperation) -> BoundQuery:
        left = (
            self._bind_set_operation(setop.left)
            if isinstance(setop.left, ast.SetOperation)
            else self._bind_query(setop.left, parent=None)
        )
        right = self._bind_query(setop.right, parent=None)
        if len(left.output_columns) != len(right.output_columns):
            raise BindError(
                f"{setop.op.upper()} operands have different column counts "
                f"({len(left.output_columns)} vs {len(right.output_columns)})"
            )
        for item in setop.order_by:
            self._check_setop_order_item(item, left.output_columns)
        bound = ast.SetOperation(
            op=setop.op,
            left=left.query,
            right=right.query,  # type: ignore[arg-type]
            all=setop.all,
            order_by=list(setop.order_by),
            limit=setop.limit,
            offset=setop.offset,
        )
        return BoundQuery(
            query=bound,
            output_columns=list(left.output_columns),
            tables={},
            uses_aggregates=left.uses_aggregates or right.uses_aggregates,
            has_group_by=False,
        )

    def _check_setop_order_item(
        self, item: ast.OrderItem, columns: List[Column]
    ) -> None:
        expr = item.expr
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            if not 1 <= expr.value <= len(columns):
                raise BindError(f"ORDER BY position {expr.value} is out of range")
            return
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            names = {column.name.lower() for column in columns}
            if expr.name.lower() in names:
                return
        raise BindError(
            "ORDER BY on a set operation must use output column names or positions"
        )

    # -- queries -----------------------------------------------------------------------

    def _bind_query(
        self, query: ast.Query, parent: Optional[BindingScope]
    ) -> BoundQuery:
        scope = BindingScope(parent=parent)
        from_clause = None
        if query.from_clause is not None:
            from_clause = self._bind_table_ref(query.from_clause, scope)

        where = None
        if query.where is not None:
            where = self._bind_expression(query.where, scope)
            if ast.contains_aggregate(where):
                raise BindError("aggregates are not allowed in WHERE")

        select_items = self._expand_stars(query.select, scope)
        bound_select = [
            ast.SelectItem(
                expr=self._bind_expression(item.expr, scope), alias=item.alias
            )
            for item in select_items
        ]

        group_by = [self._bind_expression(expr, scope) for expr in query.group_by]
        for expr in group_by:
            if ast.contains_aggregate(expr):
                raise BindError("aggregates are not allowed in GROUP BY")

        having = None
        if query.having is not None:
            having = self._bind_expression(query.having, scope)

        uses_aggregates = any(
            ast.contains_aggregate(item.expr) for item in bound_select
        )
        if having is not None:
            uses_aggregates = uses_aggregates or ast.contains_aggregate(having)
            if not (group_by or uses_aggregates):
                raise BindError("HAVING requires GROUP BY or aggregates")

        output_names = self._output_names(bound_select)
        order_by = [
            self._bind_order_item(item, scope, output_names, bound_select)
            for item in query.order_by
        ]
        uses_aggregates = uses_aggregates or any(
            ast.contains_aggregate(item.expr) for item in order_by
        )

        if group_by or uses_aggregates:
            self._check_grouped_select(bound_select, group_by, having, order_by)

        for item in bound_select:
            self._check_no_nested_aggregates(item.expr)

        bound_query = ast.Query(
            select=bound_select,
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=query.limit,
            offset=query.offset,
            distinct=query.distinct,
        )
        output_columns = [
            Column(name=name, dtype=self._infer_expr_type(item.expr, scope))
            for name, item in zip(output_names, bound_select)
        ]
        return BoundQuery(
            query=bound_query,
            output_columns=output_columns,
            tables=dict(scope.tables),
            uses_aggregates=uses_aggregates,
            has_group_by=bool(group_by),
        )

    # -- FROM ---------------------------------------------------------------------------

    def _bind_table_ref(self, ref: ast.TableRef, scope: BindingScope) -> ast.TableRef:
        if isinstance(ref, ast.NamedTable):
            schema = self._catalog.schema(ref.name)  # raises CatalogError
            binding = ref.binding_name
            scope.add(binding, schema)
            return ast.NamedTable(name=schema.name, alias=ref.alias)
        if isinstance(ref, ast.SubqueryTable):
            inner = self._bind_query(ref.query, parent=None)
            derived = TableSchema(
                name=ref.alias,
                columns=tuple(inner.output_columns),
                description=f"derived table {ref.alias}",
            )
            scope.add(ref.alias, derived)
            assert isinstance(inner.query, ast.Query)
            return ast.SubqueryTable(query=inner.query, alias=ref.alias)
        if isinstance(ref, ast.Join):
            left = self._bind_table_ref(ref.left, scope)
            right = self._bind_table_ref(ref.right, scope)
            condition = None
            if ref.condition is not None:
                condition = self._bind_expression(ref.condition, scope)
                if ast.contains_aggregate(condition):
                    raise BindError("aggregates are not allowed in JOIN conditions")
            return ast.Join(left=left, right=right, kind=ref.kind, condition=condition)
        raise BindError(f"cannot bind table reference {type(ref).__name__}")

    # -- select list ---------------------------------------------------------------------

    def _expand_stars(
        self, select: List[ast.SelectItem], scope: BindingScope
    ) -> List[ast.SelectItem]:
        expanded: List[ast.SelectItem] = []
        for item in select:
            if not isinstance(item.expr, ast.Star):
                expanded.append(item)
                continue
            if item.alias:
                raise BindError("'*' cannot be aliased")
            bindings = scope.bindings_in_order()
            if item.expr.table is not None:
                wanted = item.expr.table.lower()
                bindings = [
                    (binding, schema)
                    for binding, schema in bindings
                    if binding == wanted
                ]
                if not bindings:
                    raise BindError(
                        f"unknown table {item.expr.table!r} in select list"
                    )
            if not bindings:
                raise BindError("SELECT * requires a FROM clause")
            for binding, schema in bindings:
                for column in schema.columns:
                    expanded.append(
                        ast.SelectItem(
                            expr=ast.ColumnRef(name=column.name, table=binding)
                        )
                    )
        return expanded

    def _output_names(self, select_items: List[ast.SelectItem]) -> List[str]:
        names: List[str] = []
        used: Dict[str, int] = {}
        for item in select_items:
            if item.alias:
                base = item.alias
            elif isinstance(item.expr, ast.ColumnRef):
                base = item.expr.name
            else:
                base = print_expression(item.expr)
            lowered = base.lower()
            count = used.get(lowered, 0)
            used[lowered] = count + 1
            names.append(base if count == 0 else f"{base}_{count + 1}")
        return names

    def _bind_order_item(
        self,
        item: ast.OrderItem,
        scope: BindingScope,
        output_names: List[str],
        bound_select: List[ast.SelectItem],
    ) -> ast.OrderItem:
        expr = item.expr
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            if not 1 <= expr.value <= len(output_names):
                raise BindError(f"ORDER BY position {expr.value} is out of range")
            return ast.OrderItem(
                expr=expr, descending=item.descending, nulls_last=item.nulls_last
            )
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            lowered = [name.lower() for name in output_names]
            if expr.name.lower() in lowered:
                # Refers to a select alias/output name; leave unqualified.
                return ast.OrderItem(
                    expr=ast.ColumnRef(name=expr.name),
                    descending=item.descending,
                    nulls_last=item.nulls_last,
                )
        bound = self._bind_expression(expr, scope)
        return ast.OrderItem(
            expr=bound, descending=item.descending, nulls_last=item.nulls_last
        )

    def _check_grouped_select(
        self,
        select_items: List[ast.SelectItem],
        group_by: List[ast.Expr],
        having: Optional[ast.Expr],
        order_by: List[ast.OrderItem],
    ) -> None:
        """Grouped query sanity: bare columns should appear in GROUP BY.

        We follow SQLite's permissive model at *execution* time but still
        reject the clearest mistake: a non-aggregated bare column in a
        query whose only grouping is implicit (no GROUP BY at all).
        """
        if group_by:
            return
        for item in select_items:
            if ast.contains_aggregate(item.expr):
                continue
            if any(
                isinstance(node, ast.ColumnRef)
                for node in ast.walk_expression(item.expr)
            ):
                raise BindError(
                    f"column {print_expression(item.expr)!r} must appear in "
                    f"GROUP BY or be inside an aggregate"
                )

    def _check_no_nested_aggregates(self, expr: ast.Expr) -> None:
        for node in ast.walk_expression(expr):
            if ast.is_aggregate_call(node):
                assert isinstance(node, ast.FunctionCall)
                for arg in node.args:
                    if ast.contains_aggregate(arg):
                        raise BindError(
                            f"nested aggregate in {print_expression(node)}"
                        )

    # -- expressions -----------------------------------------------------------------------

    def _bind_expression(self, expr: ast.Expr, scope: BindingScope) -> ast.Expr:
        if isinstance(expr, ast.Literal):
            return ast.Literal(value=expr.value)
        if isinstance(expr, ast.ColumnRef):
            binding, column = scope.resolve_column(expr.table, expr.name)
            return ast.ColumnRef(name=column.name, table=binding)
        if isinstance(expr, ast.Star):
            return ast.Star(table=expr.table)
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(
                op=expr.op,
                left=self._bind_expression(expr.left, scope),
                right=self._bind_expression(expr.right, scope),
            )
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(
                op=expr.op, operand=self._bind_expression(expr.operand, scope)
            )
        if isinstance(expr, ast.FunctionCall):
            name = expr.name.upper()
            if not is_aggregate_function(name) and not scalar_functions.is_scalar_function(name):
                raise BindError(
                    f"unknown function {expr.name!r} "
                    f"(scalar: {', '.join(scalar_functions.scalar_function_names())})"
                )
            args = []
            for arg in expr.args:
                if isinstance(arg, ast.Star):
                    if name != "COUNT":
                        raise BindError(f"{name}(*) is not valid SQL")
                    args.append(ast.Star())
                else:
                    args.append(self._bind_expression(arg, scope))
            return ast.FunctionCall(name=name, args=args, distinct=expr.distinct)
        if isinstance(expr, ast.Cast):
            try:
                DataType.from_name(expr.type_name)
            except ValueError as exc:
                raise BindError(str(exc)) from exc
            return ast.Cast(
                operand=self._bind_expression(expr.operand, scope),
                type_name=expr.type_name,
            )
        if isinstance(expr, ast.Between):
            return ast.Between(
                operand=self._bind_expression(expr.operand, scope),
                low=self._bind_expression(expr.low, scope),
                high=self._bind_expression(expr.high, scope),
                negated=expr.negated,
            )
        if isinstance(expr, ast.InList):
            return ast.InList(
                operand=self._bind_expression(expr.operand, scope),
                items=[self._bind_expression(item, scope) for item in expr.items],
                negated=expr.negated,
            )
        if isinstance(expr, ast.InSubquery):
            inner = self._bind_query(expr.query, parent=scope)
            if len(inner.output_columns) != 1:
                raise BindError("IN subquery must return exactly one column")
            assert isinstance(inner.query, ast.Query)
            return ast.InSubquery(
                operand=self._bind_expression(expr.operand, scope),
                query=inner.query,
                negated=expr.negated,
            )
        if isinstance(expr, ast.Exists):
            inner = self._bind_query(expr.query, parent=scope)
            assert isinstance(inner.query, ast.Query)
            return ast.Exists(query=inner.query, negated=expr.negated)
        if isinstance(expr, ast.ScalarSubquery):
            inner = self._bind_query(expr.query, parent=scope)
            if len(inner.output_columns) != 1:
                raise BindError("scalar subquery must return exactly one column")
            assert isinstance(inner.query, ast.Query)
            return ast.ScalarSubquery(query=inner.query)
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(
                operand=self._bind_expression(expr.operand, scope),
                negated=expr.negated,
            )
        if isinstance(expr, ast.Like):
            return ast.Like(
                operand=self._bind_expression(expr.operand, scope),
                pattern=self._bind_expression(expr.pattern, scope),
                negated=expr.negated,
            )
        if isinstance(expr, ast.CaseWhen):
            return ast.CaseWhen(
                operand=(
                    self._bind_expression(expr.operand, scope)
                    if expr.operand is not None
                    else None
                ),
                branches=[
                    (
                        self._bind_expression(condition, scope),
                        self._bind_expression(result, scope),
                    )
                    for condition, result in expr.branches
                ],
                else_result=(
                    self._bind_expression(expr.else_result, scope)
                    if expr.else_result is not None
                    else None
                ),
            )
        raise BindError(f"cannot bind expression {type(expr).__name__}")

    # -- type inference -----------------------------------------------------------------------

    def _infer_expr_type(self, expr: ast.Expr, scope: BindingScope) -> DataType:
        """Best-effort static typing; TEXT is the safe fallback."""
        if isinstance(expr, ast.Literal):
            inferred = infer_type(expr.value)
            return inferred if inferred is not None else DataType.TEXT
        if isinstance(expr, ast.ColumnRef):
            _, column = scope.resolve_column(expr.table, expr.name)
            return column.dtype
        if isinstance(expr, ast.Cast):
            return DataType.from_name(expr.type_name)
        if isinstance(
            expr,
            (ast.IsNull, ast.Between, ast.InList, ast.InSubquery, ast.Exists, ast.Like),
        ):
            return DataType.BOOLEAN
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "NOT":
                return DataType.BOOLEAN
            return self._infer_expr_type(expr.operand, scope)
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("AND", "OR", "=", "<>", "<", "<=", ">", ">="):
                return DataType.BOOLEAN
            if expr.op == "||":
                return DataType.TEXT
            if expr.op == "/":
                return DataType.REAL
            left = self._infer_expr_type(expr.left, scope)
            right = self._infer_expr_type(expr.right, scope)
            if DataType.REAL in (left, right):
                return DataType.REAL
            return DataType.INTEGER
        if isinstance(expr, ast.FunctionCall):
            return self._infer_call_type(expr, scope)
        if isinstance(expr, ast.ScalarSubquery):
            inner = self._bind_query(expr.query, parent=scope)
            return inner.output_columns[0].dtype
        if isinstance(expr, ast.CaseWhen):
            candidates = [result for _, result in expr.branches]
            if expr.else_result is not None:
                candidates.append(expr.else_result)
            types = {self._infer_expr_type(c, scope) for c in candidates}
            types.discard(DataType.TEXT)  # NULL literals infer as TEXT
            if len(types) == 1:
                return types.pop()
            if types <= {DataType.INTEGER, DataType.REAL} and types:
                return DataType.REAL
            return DataType.TEXT
        return DataType.TEXT

    def _infer_call_type(self, call: ast.FunctionCall, scope: BindingScope) -> DataType:
        name = call.name.upper()
        if name == "COUNT":
            return DataType.INTEGER
        if name == "AVG":
            return DataType.REAL
        if name in ("SUM", "MIN", "MAX"):
            if call.args and not isinstance(call.args[0], ast.Star):
                return self._infer_expr_type(call.args[0], scope)
            return DataType.REAL
        text_functions = {
            "UPPER", "LOWER", "SUBSTR", "SUBSTRING", "TRIM", "REPLACE", "CONCAT",
        }
        integer_functions = {"LENGTH", "FLOOR", "CEIL", "CEILING", "SIGN"}
        real_functions = {"ROUND", "SQRT", "POWER", "POW"}
        if name in text_functions:
            return DataType.TEXT
        if name in integer_functions:
            return DataType.INTEGER
        if name in real_functions:
            return DataType.REAL
        if name in ("COALESCE", "NULLIF") and call.args:
            return self._infer_expr_type(call.args[0], scope)
        if name == "ABS" and call.args:
            return self._infer_expr_type(call.args[0], scope)
        return DataType.TEXT
