"""Setup shim.

This environment has setuptools 65 without the `wheel` package, so PEP 660
editable installs (which need bdist_wheel) fail.  Keeping a setup.py lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work offline.
"""

from setuptools import setup

setup()
