"""Observability tour: span trees, EXPLAIN ANALYZE, metrics, exports.

Run:  python examples/tracing_demo.py
      python examples/tracing_demo.py --trace-out /tmp/trace.jsonl

Executes a small workload with tracing enabled and shows the four
observability surfaces:

* the per-query **span tree** (``result.trace``) — every parse/bind/
  optimize phase, plan step, model-call flight, and storage probe with
  deterministic simulated timings off the session's latency ledger;
* ``engine.explain(sql, analyze=True)`` — the plan annotated with
  estimated *and* actual rows / calls / pages / wall per step;
* the **metrics registry** — counters and fixed-bucket histograms
  (p50/p99 without float-order nondeterminism), rendered as a report
  and as Prometheus text exposition;
* the **JSONL trace export** for offline analysis.

Tracing is zero-overhead by default: with ``enable_tracing=False`` the
engine hands out a shared no-op tracer and results are byte-identical.
"""

import argparse

from repro import EngineConfig, LLMStorageEngine
from repro.eval.worlds import geography_world
from repro.llm import NoiseConfig, SimulatedLLM

WORKLOAD = [
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "SELECT c.name, ci.city FROM countries c "
    "JOIN cities ci ON c.name = ci.country WHERE ci.is_capital",
    "SELECT COUNT(*) FROM countries",
]


def build_engine() -> LLMStorageEngine:
    world = geography_world()
    model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=42)
    config = EngineConfig(
        enable_tracing=True, slow_query_ms=500.0, max_in_flight=4
    )
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    return engine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="also write every span as JSON lines to PATH",
    )
    args = parser.parse_args()

    engine = build_engine()

    print("=== span tree (deterministic simulated timings) ===")
    result = engine.execute(WORKLOAD[1])
    print(f"SQL> {WORKLOAD[1]}")
    print(result.trace.render())

    print("\n=== EXPLAIN ANALYZE: estimated vs actual per step ===")
    print(engine.explain(WORKLOAD[0], analyze=True))

    print("\n=== metrics report after the full workload ===")
    for sql in WORKLOAD:
        engine.execute(sql)
    print(engine.metrics_report())

    print("\n=== Prometheus exposition (excerpt) ===")
    lines = engine.prometheus_metrics().splitlines()
    for line in lines[:12]:
        print(line)
    print(f"... ({len(lines)} lines total)")

    if args.trace_out:
        spans = engine.export_trace(args.trace_out)
        print(f"\nwrote {spans} span(s) to {args.trace_out}")


if __name__ == "__main__":
    main()
