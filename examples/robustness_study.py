"""Robustness study: how accuracy degrades with model quality.

Run:  python examples/robustness_study.py

Sweeps the knowledge-gap rate of the simulated model and reports mean
tuple F1 for direct prompting vs the decomposed engine (a small version
of Figure 7), plus the effect of self-consistency voting at a fixed
sampling-error rate (a small version of Figure 5).
"""

from repro.config import EngineConfig
from repro.eval.harness import (
    build_decomposed,
    build_direct,
    build_model,
    evaluate_engine_on_workload,
)
from repro.eval.workloads import workload_for
from repro.eval.worlds import geography_world
from repro.llm.noise import NoiseConfig


def main() -> None:
    world = geography_world()
    queries = workload_for(world)[:10]

    print("knowledge-gap sweep (mean tuple F1)")
    print(f"{'gap':>5}  {'direct':>7}  {'decomposed':>11}")
    for gap in [0.0, 0.05, 0.15, 0.30]:
        noise = NoiseConfig().with_gap(gap)
        model = build_model(world, noise, seed=7)
        direct = build_direct(model, world)
        decomposed = build_decomposed(model, world)
        direct_f1 = evaluate_engine_on_workload(direct, world, queries).summary().mean_f1
        decomposed_f1 = evaluate_engine_on_workload(
            decomposed, world, queries
        ).summary().mean_f1
        print(f"{gap:>5.2f}  {direct_f1:>7.3f}  {decomposed_f1:>11.3f}")

    print("\nvoting sweep at sampling error 0.20 (lookup queries)")
    lookups = [q for q in workload_for(world) if q.query_class == "lookup"]
    noise = NoiseConfig().with_sampling_error(0.20)
    print(f"{'votes':>6}  {'F1':>6}  {'calls':>6}")
    for votes in [1, 3, 5]:
        model = build_model(world, noise, seed=7)
        engine = build_decomposed(model, world, EngineConfig().with_(votes=votes))
        outcome = evaluate_engine_on_workload(engine, world, lookups)
        summary = outcome.summary()
        print(f"{votes:>6}  {summary.mean_f1:>6.3f}  {summary.total_calls:>6}")


if __name__ == "__main__":
    main()
