"""Warm vs cold: the adaptive materialization storage tier.

Run:  python examples/warm_cache.py

Runs the same small "session" twice — once with the storage tier off
and once with ``storage_mode=materialize`` — against identical models.
The warm engine answers repeated and overlapping queries from its
normalized result cache and materialized fragments: same bytes out,
a fraction of the model calls.
"""

from repro import EngineConfig, LLMStorageEngine
from repro.eval.worlds import geography_world
from repro.llm import NoiseConfig, SimulatedLLM

SESSION = [
    # A dashboard-style mix: repeats, formatting variants, overlaps.
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "select name, population from countries where continent = 'Europe'",
    "SELECT name FROM countries WHERE continent = 'Europe'",
    "SELECT name, population FROM countries WHERE continent = 'Europe' "
    "ORDER BY population DESC LIMIT 3",
    "SELECT population FROM countries WHERE name = 'France'",
    "SELECT population FROM countries WHERE name = 'France'",
]


def run_session(storage_mode: str) -> LLMStorageEngine:
    world = geography_world()
    model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=42)
    engine = LLMStorageEngine(
        model, config=EngineConfig(storage_mode=storage_mode)
    )
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    print(f"\n=== storage_mode={storage_mode} ===")
    for sql in SESSION:
        result = engine.execute(sql)
        print(f"SQL> {sql}")
        print(f"     {result.usage.render()}")
    print(f"session: {engine.usage.render()}")
    return engine


def main() -> None:
    cold = run_session("off")
    warm = run_session("materialize")

    print("\n-- warm plan for a covered scan --")
    print(
        warm.explain(
            "SELECT name, population FROM countries WHERE continent = 'Europe'"
        )
    )
    saved = cold.usage.calls - warm.usage.calls
    print(
        f"\nsame results, {cold.usage.calls} -> {warm.usage.calls} model "
        f"calls ({saved} saved); storage: {warm.storage.describe()}"
    )


if __name__ == "__main__":
    main()
