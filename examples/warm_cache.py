"""Warm vs cold: the adaptive materialization storage tier.

Run:  python examples/warm_cache.py
      python examples/warm_cache.py --storage-backend sqlite

Runs the same small "session" twice — once with the storage tier off
and once with ``storage_mode=materialize`` — against identical models.
The warm engine answers repeated and overlapping queries from its
normalized result cache and materialized fragments: same bytes out,
a fraction of the model calls.

With ``--storage-backend sqlite`` the warm tier persists in a shared
store file, and a third engine — a simulated process restart — replays
the whole session from the file with zero model calls.
"""

import argparse
import os
import tempfile
from typing import Optional

from repro import EngineConfig, LLMStorageEngine
from repro.eval.worlds import geography_world
from repro.llm import NoiseConfig, SimulatedLLM

SESSION = [
    # A dashboard-style mix: repeats, formatting variants, overlaps.
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "select name, population from countries where continent = 'Europe'",
    "SELECT name FROM countries WHERE continent = 'Europe'",
    "SELECT name, population FROM countries WHERE continent = 'Europe' "
    "ORDER BY population DESC LIMIT 3",
    "SELECT population FROM countries WHERE name = 'France'",
    "SELECT population FROM countries WHERE name = 'France'",
]


def run_session(
    storage_mode: str,
    backend: str = "memory",
    path: Optional[str] = None,
    label: Optional[str] = None,
) -> LLMStorageEngine:
    world = geography_world()
    model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=42)
    config = EngineConfig(storage_mode=storage_mode)
    if backend != "memory":
        config = EngineConfig(
            storage_mode=storage_mode,
            storage_backend=backend,
            storage_path=path,
            storage_scope="application",
        )
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    print(f"\n=== {label or f'storage_mode={storage_mode}'} ===")
    for sql in SESSION:
        result = engine.execute(sql)
        print(f"SQL> {sql}")
        print(f"     {result.usage.render()}")
    print(f"session: {engine.usage.render()}")
    return engine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--storage-backend",
        choices=("memory", "sqlite"),
        default="memory",
        help="where the warm tier keeps its entries (default: memory)",
    )
    parser.add_argument(
        "--storage-path",
        metavar="FILE",
        default=None,
        help="store file for --storage-backend sqlite "
        "(default: a temporary file)",
    )
    args = parser.parse_args()

    cold = run_session("off", label="storage off")
    with tempfile.TemporaryDirectory() as tmpdir:
        path = args.storage_path or os.path.join(tmpdir, "tier.db")
        warm = run_session(
            "materialize",
            args.storage_backend,
            path,
            label=f"storage_mode=materialize backend={args.storage_backend}",
        )
        if args.storage_backend == "sqlite":
            # A brand-new engine + model over the same store file: what
            # a process restart constructs.  Every answer comes off disk.
            restarted = run_session(
                "materialize",
                args.storage_backend,
                path,
                label="restarted engine, same store file",
            )
            print(
                f"\nrestart: {restarted.usage.calls} model call(s), "
                f"{restarted.usage.persistent_hits} persistent hit(s)"
            )

    print("\n-- warm plan for a covered scan --")
    print(
        warm.explain(
            "SELECT name, population FROM countries WHERE continent = 'Europe'"
        )
    )
    saved = cold.usage.calls - warm.usage.calls
    print(
        f"\nsame results, {cold.usage.calls} -> {warm.usage.calls} model "
        f"calls ({saved} saved); storage: {warm.storage.describe()}"
    )


if __name__ == "__main__":
    main()
