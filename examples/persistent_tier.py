"""Persistent storage across processes: restart for free.

Run:  python examples/persistent_tier.py

Spawns two *real OS processes* back to back, each building its own
engine and its own model against one shared SQLite store file
(``storage_backend='sqlite'``, ``storage_scope='application'``).  The
first process pays the model for every retrieval and materializes what
it learned; the second — a cold restart as far as Python is concerned
— serves the identical workload byte-for-byte with **zero model
calls**, straight from the file.
"""

import json
import os
import subprocess
import sys
import tempfile

import repro

WORKLOAD = [
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "SELECT name, population FROM countries WHERE continent = 'Europe' "
    "ORDER BY population DESC LIMIT 3",
    "SELECT population FROM countries WHERE name = 'France'",
    "SELECT COUNT(*) FROM cities",
]

# The child is a self-contained process: fresh interpreter, fresh
# engine, fresh model — the store file is the only thing it shares
# with anyone.  It prints its usage and a digest of every result row
# as JSON for the parent to compare.
CHILD_SCRIPT = """
import json, sys
from repro import EngineConfig, LLMStorageEngine
from repro.eval.worlds import geography_world
from repro.llm import NoiseConfig, SimulatedLLM

path, workload = sys.argv[1], json.loads(sys.argv[2])
world = geography_world()
model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=42)
engine = LLMStorageEngine(model, config=EngineConfig(
    storage_mode="materialize",
    storage_backend="sqlite",
    storage_path=path,
    storage_scope="application",
))
for schema in world.schemas():
    engine.register_virtual_table(
        schema, row_estimate=world.row_count(schema.name)
    )
rows = [[list(map(repr, row)) for row in engine.execute(sql).rows]
        for sql in workload]
print(json.dumps({
    "calls": engine.usage.calls,
    "persistent_hits": engine.usage.persistent_hits,
    "storage": engine.storage.describe(),
    "rows": rows,
}))
"""


def run_process(label: str, path: str) -> dict:
    env = dict(os.environ)
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (pkg_root, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT, path, json.dumps(WORKLOAD)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    report = json.loads(proc.stdout)
    print(f"=== {label} ===")
    print(f"model calls: {report['calls']}  "
          f"(persistent hits: {report['persistent_hits']})")
    print(f"storage: {report['storage']}\n")
    return report


def main() -> None:
    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "tier.db")
        first = run_process("process 1: cold, populates the store", path)
        second = run_process("process 2: restarted, serves from the file", path)

    identical = first["rows"] == second["rows"]
    print(
        f"byte-identical results: {identical}; "
        f"{first['calls']} -> {second['calls']} model calls across the restart"
    )


if __name__ == "__main__":
    main()
