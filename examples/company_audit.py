"""HR audit: budgets, spend limits and plan inspection.

Run:  python examples/company_audit.py

Shows the operational side of LLM-as-storage: EXPLAIN before you spend,
hard call budgets (a query that would overrun raises instead of burning
tokens), cross-query caching, and the warnings channel (validation,
truncation, malformed lines).
"""

from repro import EngineConfig, LLMStorageEngine
from repro.errors import LLMBudgetExceeded
from repro.eval.worlds import company_world, constraints_for
from repro.llm import NoiseConfig, SimulatedLLM
from repro.llm.accounting import Budget


def main() -> None:
    world = company_world()
    model = SimulatedLLM(world, noise=NoiseConfig(), seed=9)

    engine = LLMStorageEngine(
        model,
        config=EngineConfig(votes=3),
        budget=Budget(max_calls=60),
    )
    for schema in world.schemas():
        engine.register_virtual_table(
            schema,
            row_estimate=world.row_count(schema.name),
            constraints=constraints_for(world, schema.name),
        )

    audit = "SELECT department, COUNT(*) AS heads, AVG(salary) AS avg_salary " \
            "FROM employees GROUP BY department ORDER BY avg_salary DESC"
    print("-- estimated plan, before spending anything --")
    print(engine.explain(audit))

    print("\n-- executing --")
    result = engine.execute(audit)
    print(result.render())

    lookup = "SELECT budget, hq_city FROM departments WHERE dept_name = 'Research'"
    first = engine.execute(lookup)
    second = engine.execute(lookup)
    print(f"\nrepeated lookup: first {first.usage.render()}")
    print(f"                 again {second.usage.render()}  (cache)")

    print(f"\nbudget state: {engine.usage.calls}/60 calls used")
    try:
        while True:  # burn the remaining budget on full scans
            engine.clear_cache()
            engine.execute("SELECT name, salary, hired FROM employees")
    except LLMBudgetExceeded as exc:
        print(f"budget enforced: {exc}")


if __name__ == "__main__":
    main()
