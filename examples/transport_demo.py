"""Transports & continuous batching: one engine, swappable model wire.

Run:  python examples/transport_demo.py
      python examples/transport_demo.py --transport openai
      python examples/transport_demo.py --transport llamacpp --url http://localhost:8080
      python examples/transport_demo.py --continuous-batching

The engine is written against one model interface; a *transport* is the
adapter that decides where completions physically come from:

* ``simulated`` — the in-process deterministic model (the default);
* ``openai``   — an OpenAI-style chat-completions HTTP client, online
  only when ``OPENAI_API_KEY`` is set;
* ``llamacpp`` — a llama.cpp ``llama-server`` client, online only when
  a server URL is configured.

Without credentials the network transports **fall back
deterministically** to the in-process model — same rows, same tokens,
same cost, byte for byte — so this demo runs identically on a machine
with no network at all.  With ``--continuous-batching`` the demo also
serves the batch through the slot-based request pool that coalesces
model calls from all in-flight queries into shared waves.
"""

import argparse

from repro import EngineConfig, LLMStorageEngine
from repro.eval.worlds import geography_world
from repro.llm import NoiseConfig, SimulatedLLM, build_transport

BATCH = [
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "SELECT COUNT(*) FROM countries",
    "SELECT name FROM countries WHERE continent = 'Asia'",
    "SELECT name, population FROM countries ORDER BY population DESC LIMIT 3",
]


def build_engine(
    transport_name: str, url, continuous: bool
) -> LLMStorageEngine:
    world = geography_world()
    fallback = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=42)
    model = build_transport(transport_name, fallback_model=fallback, url=url)
    config = EngineConfig(max_in_flight=8, serve_jobs=4)
    if continuous:
        config = config.with_(
            enable_continuous_batching=True, batch_slots=16
        )
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    return engine


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--transport",
        choices=["simulated", "openai", "llamacpp"],
        default="simulated",
        help="where completions come from (offline fallback is automatic)",
    )
    parser.add_argument(
        "--url", default=None, help="endpoint for openai/llamacpp"
    )
    parser.add_argument(
        "--continuous-batching",
        action="store_true",
        help="serve the batch through the shared slot pool",
    )
    args = parser.parse_args()

    engine = build_engine(args.transport, args.url, args.continuous_batching)
    print(f"transport: {engine.transport_description}")
    try:
        results = engine.execute_many(BATCH, jobs=4)
        for sql, result in zip(BATCH, results):
            print(f"\nsql> {sql}")
            print(result.render())
        print(f"\nsession usage: {engine.usage.render()}")
    finally:
        engine.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
