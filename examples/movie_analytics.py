"""Movie analytics: decomposed engine vs direct prompting, side by side.

Run:  python examples/movie_analytics.py

Executes an analytics workload over the movie-catalog world on three
engines — direct prompting, naive decomposition and the optimized
engine — and prints accuracy (against ground truth) and cost for each,
reproducing the Table 2 comparison on a single domain.
"""

from repro.baselines import MaterializedEngine
from repro.config import EngineConfig
from repro.eval.harness import build_decomposed, build_direct, build_model
from repro.eval.metrics import tuple_metrics
from repro.eval.worlds import movies_world
from repro.llm.noise import NoiseConfig

QUERIES = [
    "SELECT title, rating FROM movies WHERE rating >= 8.8",
    "SELECT genre, COUNT(*) AS n, AVG(rating) AS avg_rating "
    "FROM movies GROUP BY genre ORDER BY genre",
    "SELECT m.title, d.country FROM movies m JOIN directors d "
    "ON d.name = m.director WHERE m.gross > 150",
    "SELECT title, gross FROM movies ORDER BY gross DESC LIMIT 5",
]


def main() -> None:
    world = movies_world()
    oracle = MaterializedEngine(world)
    model = build_model(world, NoiseConfig(), seed=3)

    engines = {
        "direct": build_direct(model, world),
        "naive": build_decomposed(model, world, EngineConfig.naive(), name="naive"),
        "optimized": build_decomposed(model, world),
    }

    print(f"{'query':<8} {'engine':<10} {'F1':>6} {'calls':>6} {'tokens':>8}")
    for index, sql in enumerate(QUERIES, start=1):
        truth = oracle.execute(sql).rows
        for name, engine in engines.items():
            result = engine.execute(sql)
            score = tuple_metrics(result.rows, truth).f1
            print(
                f"Q{index:<7} {name:<10} {score:>6.2f} "
                f"{result.usage.calls:>6} {result.usage.total_tokens:>8}"
            )
        print()

    print("session cost per engine:")
    for name, engine in engines.items():
        print(f"  {name:<10} {engine.usage.render()}")


if __name__ == "__main__":
    main()
