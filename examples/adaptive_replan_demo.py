"""Adaptive optimization tour: learned statistics + mid-query re-plans.

Run:  python examples/adaptive_replan_demo.py

Static plans are priced off registered ``row_estimate`` hints and
Selinger-style selectivity constants.  With ``enable_adaptive=True``
the engine corrects both online:

* every executed plan feeds observed cardinalities and per-predicate
  selectivities back into the **statistics catalog**, and the next
  plan for the same shapes is priced off what was *measured*;
* a streaming LIMIT scan whose observed selectivity diverges from the
  estimate by more than ``replan_threshold`` **re-plans mid-query**:
  the fetched prefix is kept and the remaining work fans out as
  parallel residual shards — rows stay byte-identical, the tail of the
  scan stops being serial.

The demo runs the same badly-estimated query twice and shows EXPLAIN
ANALYZE before (re-plan fires) and after (the catalog already knows
the real selectivity, so the plan is right from the start).
"""

from repro import EngineConfig, LLMStorageEngine
from repro.eval.worlds import movies_world
from repro.llm import NoiseConfig, SimulatedLLM

#: CASE never ships to the model, so this predicate is evaluated
#: locally over a streamed scan; the optimizer can only guess its
#: selectivity until the catalog has observed it.
QUERY = (
    "SELECT title FROM movies "
    "WHERE CASE WHEN rating > 9.0 THEN 1 ELSE 0 END = 1 LIMIT 5"
)


def build_engine(adaptive: bool) -> LLMStorageEngine:
    world = movies_world()
    model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=7)
    config = EngineConfig(
        enable_adaptive=adaptive, enable_tracing=True, max_in_flight=8
    )
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    return engine


def main() -> None:
    static = build_engine(adaptive=False)
    print("=== static plan (estimates only) ===")
    print(f"SQL> {QUERY}")
    print(static.explain(QUERY, analyze=True))
    static_rows = static.execute(QUERY).rows
    static.close()

    engine = build_engine(adaptive=True)
    print("\n=== adaptive, first run: divergence triggers a re-plan ===")
    print(engine.explain(QUERY, analyze=True))

    print("\n=== adaptive, second run: planned off observed statistics ===")
    print(engine.explain(QUERY, analyze=True))

    print("\n=== what the catalog learned (.stats) ===")
    print(engine.stats_report())

    adaptive_rows = engine.execute(QUERY).rows
    print(
        "\nrows byte-identical to the static plan:",
        adaptive_rows == static_rows,
    )
    engine.close()


if __name__ == "__main__":
    main()
