"""Concurrent serving: many SQL statements, one shared session.

Run:  python examples/serving_demo.py
      python examples/serving_demo.py --storage-backend sqlite

Serves a small dashboard-style batch two ways against identical models:
one statement at a time (``execute``), then all at once through
``execute_many(jobs=...)``.  The served batch shares the session's
``max_in_flight`` dispatcher budget, prompt cache, and cross-query
single-flight registry, so overlapping queries pay for shared traffic
once; every result is byte-identical to the serial run, each result
carries its own attributed usage, and the session's wall clock advances
by the batch's critical path instead of the sum of the per-query
chains.

With ``--storage-backend sqlite`` both sessions additionally share one
persistent materialization tier (``storage_scope='application'``): the
serial run populates the store file, and the served session answers the
whole batch from it without reaching the model at all.
"""

import argparse
import os
import tempfile
from typing import Optional

from repro import EngineConfig, LLMStorageEngine
from repro.eval.worlds import geography_world
from repro.llm import NoiseConfig, SimulatedLLM

BATCH = [
    # Overlapping traffic: two statements share the Europe scan, two
    # are exact duplicates, one misbehaves on purpose (timeout demo
    # belongs to real backends; here it simply runs fast).
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "SELECT COUNT(*) FROM countries",
    "SELECT name FROM countries WHERE continent = 'Europe'",
    "SELECT COUNT(*) FROM countries",
    "SELECT name, population FROM countries ORDER BY population DESC LIMIT 3",
]


def build_engine(
    backend: str = "memory", path: Optional[str] = None
) -> LLMStorageEngine:
    world = geography_world()
    model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=42)
    config = EngineConfig(max_in_flight=8, serve_jobs=4)
    if backend != "memory":
        config = EngineConfig(
            max_in_flight=8,
            serve_jobs=4,
            storage_mode="materialize",
            storage_backend=backend,
            storage_path=path,
            storage_scope="application",
        )
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    return engine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--storage-backend",
        choices=("memory", "sqlite"),
        default="memory",
        help="share a persistent materialization tier between the "
        "serial and served sessions (default: memory, no sharing)",
    )
    parser.add_argument(
        "--storage-path",
        metavar="FILE",
        default=None,
        help="store file for --storage-backend sqlite "
        "(default: a temporary file)",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmpdir:
        path = args.storage_path or os.path.join(tmpdir, "tier.db")

        serial = build_engine(args.storage_backend, path)
        print("=== serial: one statement at a time ===")
        for sql in BATCH:
            result = serial.execute(sql)
            print(f"SQL> {sql}")
            print(f"     {result.usage.render()}")
        print(f"session: {serial.usage.render()}")

        served = build_engine(args.storage_backend, path)
        print("\n=== served: execute_many(jobs=4), one shared session ===")
        results = served.execute_many(BATCH)
        for sql, result in zip(BATCH, results):
            print(f"SQL> {sql}")
            print(f"     {result.usage.render()}")
        print(f"session: {served.usage.render()}")

        identical = all(
            tuple(map(tuple, a.rows)) == tuple(map(tuple, b.rows))
            for a, b in zip(
                (serial.execute(sql) for sql in BATCH), results
            )
        )
        if served.usage.wall_ms:
            speedup = f"{serial.usage.wall_ms / served.usage.wall_ms:.1f}x"
        else:
            speedup = "no model traffic at all"
        print(
            f"\nbyte-identical: {identical}; wall {serial.usage.wall_ms:.0f} ms "
            f"-> {served.usage.wall_ms:.0f} ms ({speedup}); "
            f"per-query usage above sums to the session meter exactly"
        )
        if args.storage_backend == "sqlite":
            print(
                f"shared store: served session paid {served.usage.calls} "
                f"model call(s) with {served.usage.persistent_hits} "
                f"persistent hit(s); storage: {served.storage.describe()}"
            )


if __name__ == "__main__":
    main()
