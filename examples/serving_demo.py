"""Concurrent serving: many SQL statements, one shared session.

Run:  python examples/serving_demo.py

Serves a small dashboard-style batch two ways against identical models:
one statement at a time (``execute``), then all at once through
``execute_many(jobs=...)``.  The served batch shares the session's
``max_in_flight`` dispatcher budget, prompt cache, and cross-query
single-flight registry, so overlapping queries pay for shared traffic
once; every result is byte-identical to the serial run, each result
carries its own attributed usage, and the session's wall clock advances
by the batch's critical path instead of the sum of the per-query
chains.
"""

from repro import EngineConfig, LLMStorageEngine
from repro.eval.worlds import geography_world
from repro.llm import NoiseConfig, SimulatedLLM

BATCH = [
    # Overlapping traffic: two statements share the Europe scan, two
    # are exact duplicates, one misbehaves on purpose (timeout demo
    # belongs to real backends; here it simply runs fast).
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "SELECT COUNT(*) FROM countries",
    "SELECT name FROM countries WHERE continent = 'Europe'",
    "SELECT COUNT(*) FROM countries",
    "SELECT name, population FROM countries ORDER BY population DESC LIMIT 3",
]


def build_engine() -> LLMStorageEngine:
    world = geography_world()
    model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=42)
    engine = LLMStorageEngine(
        model, config=EngineConfig(max_in_flight=8, serve_jobs=4)
    )
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    return engine


def main() -> None:
    serial = build_engine()
    print("=== serial: one statement at a time ===")
    for sql in BATCH:
        result = serial.execute(sql)
        print(f"SQL> {sql}")
        print(f"     {result.usage.render()}")
    print(f"session: {serial.usage.render()}")

    served = build_engine()
    print("\n=== served: execute_many(jobs=4), one shared session ===")
    results = served.execute_many(BATCH)
    for sql, result in zip(BATCH, results):
        print(f"SQL> {sql}")
        print(f"     {result.usage.render()}")
    print(f"session: {served.usage.render()}")

    identical = all(
        tuple(map(tuple, a.rows)) == tuple(map(tuple, b.rows))
        for a, b in zip(
            (serial.execute(sql) for sql in BATCH), results
        )
    )
    speedup = serial.usage.wall_ms / served.usage.wall_ms
    print(
        f"\nbyte-identical: {identical}; wall {serial.usage.wall_ms:.0f} ms "
        f"-> {served.usage.wall_ms:.0f} ms ({speedup:.1f}x); "
        f"per-query usage above sums to the session meter exactly"
    )


if __name__ == "__main__":
    main()
