"""Quickstart: SQL over a language model, no stored rows.

Run:  python examples/quickstart.py

Registers the geography schemas as *virtual* tables, points the engine
at a (simulated, seedable) language model, and runs plain SQL.  Swap
``SimulatedLLM`` for any ``LanguageModel`` implementation to target a
real API — nothing above the prompt/completion interface changes.
"""

from repro import EngineConfig, LLMStorageEngine
from repro.eval.worlds import constraints_for, geography_world
from repro.llm import NoiseConfig, SimulatedLLM


def main() -> None:
    # The "world" is the model's parametric knowledge (and our ground
    # truth).  The engine itself never touches it — only the model does.
    world = geography_world()
    model = SimulatedLLM(world, noise=NoiseConfig(), seed=42)

    engine = LLMStorageEngine(model, config=EngineConfig())
    for schema in world.schemas():
        engine.register_virtual_table(
            schema,
            row_estimate=world.row_count(schema.name),
            constraints=constraints_for(world, schema.name),
        )

    queries = [
        "SELECT population FROM countries WHERE name = 'France'",
        "SELECT name, population FROM countries "
        "WHERE continent = 'Europe' ORDER BY population DESC LIMIT 5",
        "SELECT c.city, k.continent FROM cities c "
        "JOIN countries k ON k.name = c.country WHERE c.city_population > 9000",
        "SELECT continent, COUNT(*) AS n, AVG(gdp) AS avg_gdp "
        "FROM countries GROUP BY continent ORDER BY n DESC",
    ]
    for sql in queries:
        print(f"\nSQL> {sql}")
        print(engine.execute(sql).render())

    print("\n-- plan for the join query --")
    print(engine.explain(queries[2]))
    print(f"\nsession usage: {engine.usage.render()}")


if __name__ == "__main__":
    main()
