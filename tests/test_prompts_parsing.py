"""Tests for prompt grammar, builders and completion parsers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LLMProtocolError
from repro.prompts import grammar
from repro.prompts.enumerate import EnumerateRequest, build_enumerate_prompt
from repro.prompts.lookup import LookupRequest, build_lookup_prompt
from repro.prompts.parsing import (
    parse_direct_completion,
    parse_enumerate_completion,
    parse_judge_completion,
    parse_lookup_completion,
    strip_chatter,
)
from repro.relational.types import DataType
from tests.conftest import make_country_schema

COUNTRY = make_country_schema()


# -- cell round trip ----------------------------------------------------------


@pytest.mark.parametrize(
    "value,dtype",
    [
        (None, DataType.TEXT),
        ("Paris", DataType.TEXT),
        (42, DataType.INTEGER),
        (-7, DataType.INTEGER),
        (3.25, DataType.REAL),
        (1e-9, DataType.REAL),
        (True, DataType.BOOLEAN),
        (False, DataType.BOOLEAN),
    ],
)
def test_cell_round_trip(value, dtype):
    assert grammar.parse_cell(grammar.render_cell(value), dtype) == value


@settings(max_examples=200, deadline=None)
@given(
    st.one_of(
        st.integers(min_value=-(10**12), max_value=10**12),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.booleans(),
        st.none(),
    )
)
def test_cell_round_trip_property(value):
    dtype = {
        bool: DataType.BOOLEAN,
        int: DataType.INTEGER,
        float: DataType.REAL,
    }.get(type(value), DataType.TEXT)
    assert grammar.parse_cell(grammar.render_cell(value), dtype) == value


def test_parse_cell_unknown_and_null():
    assert grammar.parse_cell("NULL", DataType.TEXT) is None
    assert grammar.parse_cell("UNKNOWN", DataType.INTEGER) is None


def test_parse_cell_lenient_numbers():
    assert grammar.parse_cell(" 1,234 ", DataType.INTEGER) == 1234


def test_parse_cell_failure_raises():
    with pytest.raises(LLMProtocolError):
        grammar.parse_cell("not-a-number", DataType.INTEGER)


def test_parse_row_arity_check():
    with pytest.raises(LLMProtocolError):
        grammar.parse_row("a | b | c", [DataType.TEXT, DataType.TEXT])


# -- prompt structure ------------------------------------------------------------


def test_prompt_header_round_trip():
    request = EnumerateRequest(
        schema=COUNTRY, columns=("name", "population"),
        condition_sql="population > 5", order=("population", True),
        after_index=7, max_rows=13,
    )
    fields = grammar.parse_prompt(build_enumerate_prompt(request))
    assert fields.task == grammar.TASK_ENUMERATE
    assert fields.require(grammar.FIELD_CONDITION) == "population > 5"
    assert fields.int_field(grammar.FIELD_AFTER_INDEX, 0) == 7
    assert fields.int_field(grammar.FIELD_MAX_ROWS, 0) == 13
    assert grammar.parse_column_list(fields.require(grammar.FIELD_COLUMNS)) == [
        "name", "population",
    ]


def test_prompt_sections_round_trip():
    request = LookupRequest(
        schema=COUNTRY, key_columns=("name",), attributes=("gdp",),
        entities=(("France",), ("Japan",)),
    )
    fields = grammar.parse_prompt(build_lookup_prompt(request))
    assert fields.section(grammar.SECTION_ENTITIES) == ["France", "Japan"]


def test_missing_header_raises():
    fields = grammar.parse_prompt("no structure at all")
    with pytest.raises(LLMProtocolError):
        fields.task


def test_int_field_validation():
    fields = grammar.parse_prompt("TASK: enumerate\nMAX_ROWS: nope")
    with pytest.raises(LLMProtocolError):
        fields.int_field("MAX_ROWS", 1)


def test_column_list_rejects_empty():
    with pytest.raises(LLMProtocolError):
        grammar.parse_column_list("  ,  ")


# -- chatter stripping -------------------------------------------------------------


@pytest.mark.parametrize(
    "noisy,clean",
    [
        ("I think Paris | 2161", "Paris | 2161"),
        ("Sure: 1. Rome | 2873", "1. Rome | 2873"),
        ("Paris | 2161 (approximately)", "Paris | 2161"),
        ("Paris | 2161 — hope this helps!", "Paris | 2161"),
        ("- Paris | 2161", "Paris | 2161"),
        ("  Paris | 2161  ", "Paris | 2161"),
        ("Based on my knowledge, I think Oslo | 697 (as of my training data)", "Oslo | 697"),
    ],
)
def test_strip_chatter(noisy, clean):
    assert strip_chatter(noisy) == clean


# -- enumeration parsing ------------------------------------------------------------


def test_parse_enumerate_complete_page():
    text = "France | 68000\nGermany | 84000\nDONE"
    page = parse_enumerate_completion(text, [DataType.TEXT, DataType.INTEGER])
    assert len(page.rows) == 2
    assert page.complete and not page.has_more


def test_parse_enumerate_more_sentinel():
    page = parse_enumerate_completion(
        "France | 1\nMORE", [DataType.TEXT, DataType.INTEGER]
    )
    assert page.has_more and page.complete


def test_parse_enumerate_truncated_page():
    page = parse_enumerate_completion(
        "France | 1\nGerm", [DataType.TEXT, DataType.INTEGER]
    )
    assert not page.complete
    assert len(page.rows) == 1
    assert page.malformed_lines == 1


def test_parse_enumerate_skips_malformed_lines():
    text = "France | 68000\ngarbage line\nItaly | 59000\nDONE"
    page = parse_enumerate_completion(text, [DataType.TEXT, DataType.INTEGER])
    assert len(page.rows) == 2
    assert page.malformed_lines == 1


def test_parse_enumerate_refusal_raises():
    with pytest.raises(LLMProtocolError):
        parse_enumerate_completion("I'm sorry, I cannot do that.", [DataType.TEXT])


# -- lookup parsing -----------------------------------------------------------------


def test_parse_lookup_slots_and_unknown():
    text = "1. 68000 | Europe\n2. UNKNOWN\n3. 125000 | Asia"
    slots = parse_lookup_completion(text, 3, [DataType.INTEGER, DataType.TEXT])
    assert slots[0] == [68000, "Europe"]
    assert slots[1] is None
    assert slots[2] == [125000, "Asia"]


def test_parse_lookup_out_of_range_index_ignored():
    slots = parse_lookup_completion("9. 1", 2, [DataType.INTEGER])
    assert slots == [None, None]


def test_parse_lookup_misordered_lines():
    text = "2. 5\n1. 3"
    slots = parse_lookup_completion(text, 2, [DataType.INTEGER])
    assert slots == [[3], [5]]


def test_parse_lookup_with_chatter():
    text = "I think 1. 68000 | Europe (approximately)"
    slots = parse_lookup_completion(text, 1, [DataType.INTEGER, DataType.TEXT])
    assert slots[0] == [68000, "Europe"]


def test_parse_lookup_bad_cells_become_unknown():
    slots = parse_lookup_completion("1. banana", 1, [DataType.INTEGER])
    assert slots == [None]


# -- judge parsing --------------------------------------------------------------------


def test_parse_judge_words():
    text = "1. YES\n2. NO\n3. UNKNOWN\n4. yes.\n5. gibberish"
    verdicts = parse_judge_completion(text, 5)
    assert verdicts == [True, False, None, True, None]


# -- direct parsing --------------------------------------------------------------------


def test_parse_direct_with_header_and_end():
    text = "HEADER: continent | n\nEurope | 5\nAsia | 2\nEND"
    answer = parse_direct_completion(text, [DataType.TEXT, DataType.INTEGER])
    assert answer.header == ["continent", "n"]
    assert answer.rows == [["Europe", 5], ["Asia", 2]]
    assert answer.complete


def test_parse_direct_truncation_detected():
    text = "HEADER: a\nx\ny"
    answer = parse_direct_completion(text, [DataType.TEXT])
    assert not answer.complete
    assert len(answer.rows) == 2


def test_parse_direct_uncoercible_cell_stays_text():
    answer = parse_direct_completion("seven\nEND", [DataType.INTEGER])
    assert answer.rows == [["seven"]]


def test_parse_direct_wrong_arity_counts_malformed():
    answer = parse_direct_completion("a | b\nEND", [DataType.TEXT])
    assert answer.malformed_lines == 1
