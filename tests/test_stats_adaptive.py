"""Tests for the online statistics catalog and adaptive re-optimization.

Covers the catalog itself (recording, planner queries, delta-merge
without double-counting), persistence round-trips across two *real*
processes over one SQLite file, the mid-query re-plan's byte-identity
against the static plan across storage modes / shard counts /
``max_in_flight`` / injected noise, the learned-cardinality plan flip
(scan -> lookup-join), the ``stats[default-guess]`` warning, and the
``--adaptive`` / ``.stats`` CLI surface.
"""

import ast
import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.errors import ConfigError
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.llm.world import World
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.stats.catalog import StatisticsCatalog, _empty_payload, _merge_payload
from repro.storage.normalize import predicate_fingerprint
from tests.conftest import make_engine


# ---------------------------------------------------------------------------
# Catalog unit behavior
# ---------------------------------------------------------------------------


def test_catalog_records_and_serves_planner_queries():
    catalog = StatisticsCatalog()
    assert catalog.observed_rows("movies") is None
    catalog.record_table_rows("Movies", 240)
    assert catalog.observed_rows("movies") == 240
    assert catalog.observed_rows("MOVIES") == 240

    assert catalog.observed_selectivity("movies", "t1.x = 1") is None
    catalog.record_selectivity("movies", "t1.x = 1", rows_in=200, rows_out=9)
    sel = catalog.observed_selectivity("movies", "t1.x = 1")
    assert sel == pytest.approx(9 / 200)
    # Additive accumulation across observations.
    catalog.record_selectivity("movies", "t1.x = 1", rows_in=100, rows_out=6)
    assert catalog.observed_selectivity("movies", "t1.x = 1") == pytest.approx(
        15 / 300
    )
    # Zero matches stays clamped away from exactly 0.
    catalog.record_selectivity("movies", "t1.y = 2", rows_in=50, rows_out=0)
    assert catalog.observed_selectivity("movies", "t1.y = 2") == pytest.approx(
        0.5 / 50
    )
    # Degenerate inputs are ignored, never recorded.
    catalog.record_selectivity("movies", "t1.z = 3", rows_in=0, rows_out=0)
    assert catalog.observed_selectivity("movies", "t1.z = 3") is None

    catalog.record_call("scan-page", latency_ms=400.0, tokens=128)
    report = catalog.describe()
    assert "movies: rows=240" in report
    assert "scan-page: count=1" in report


def test_merge_payload_is_additive_without_double_count():
    base = _empty_payload()
    a = _empty_payload()
    a["tables"]["t"] = 100
    a["predicates"][("t", "t1.x = 1")] = [40.0, 4.0]
    b = _empty_payload()
    b["tables"]["t"] = 240  # newer observation wins last-value
    b["predicates"][("t", "t1.x = 1")] = [60.0, 6.0]
    _merge_payload(base, a)
    _merge_payload(base, b)
    assert base["tables"]["t"] == 240
    assert base["predicates"][("t", "t1.x = 1")] == [100.0, 10.0]
    # Merging the same delta again would double-count -- the catalog
    # resets its delta after each flush precisely to prevent that.
    _merge_payload(base, b)
    assert base["predicates"][("t", "t1.x = 1")] == [160.0, 16.0]


def test_predicate_fingerprint_normalizes_aliases():
    import repro.sql.parser as parser

    def conjuncts_of(sql):
        statement = parser.parse(sql)
        from repro.plan import rules

        return rules.split_conjuncts(statement.where)

    a = conjuncts_of("SELECT * FROM movies m WHERE m.rating > 9 AND m.year = 2000")
    b = conjuncts_of(
        "SELECT * FROM movies x WHERE x.year = 2000 AND x.rating > 9"
    )
    assert predicate_fingerprint("m", a) == predicate_fingerprint("x", b)


def test_replan_threshold_validated():
    with pytest.raises(ConfigError):
        EngineConfig(replan_threshold=1.0)
    with pytest.raises(ConfigError):
        EngineConfig(replan_threshold=0.5)
    assert EngineConfig(replan_threshold=2.5).replan_threshold == 2.5


# ---------------------------------------------------------------------------
# Worlds with deliberately wrong estimates
# ---------------------------------------------------------------------------

_KINDS = ["bolt", "nut", "gear", "washer", "bracket", "spring"]

PARTS_SCHEMA = TableSchema(
    name="parts",
    columns=(
        Column("part_id", DataType.TEXT, nullable=False),
        Column("kind", DataType.TEXT),
        Column("weight", DataType.REAL),
    ),
    primary_key=("part_id",),
    description="parts catalog",
)
ORDERS_SCHEMA = TableSchema(
    name="orders",
    columns=(
        Column("order_id", DataType.TEXT, nullable=False),
        Column("part_id", DataType.TEXT),
        Column("qty", DataType.INTEGER),
    ),
    primary_key=("order_id",),
    description="orders",
)


def shop_world(n_parts: int = 240, n_orders: int = 40) -> World:
    parts = [
        (f"P{i:04d}", _KINDS[i % len(_KINDS)], round(0.1 * (i % 50) + 0.5, 1))
        for i in range(n_parts)
    ]
    orders = [
        (f"O{i:03d}", f"P{(i * 7) % n_parts:04d}", (i % 9) + 1)
        for i in range(n_orders)
    ]
    return World(
        "shop", [Table(PARTS_SCHEMA, parts), Table(ORDERS_SCHEMA, orders)]
    )


JOIN_QUERIES = [
    "SELECT o.order_id, p.kind FROM orders o "
    "JOIN parts p ON p.part_id = o.part_id WHERE o.qty > %d" % q
    for q in (7, 6, 8, 5)
]

#: CASE never ships to the model, so this predicate runs locally over a
#: streamed scan -- the shape whose misestimate triggers a re-plan.
REPLAN_QUERY = (
    "SELECT title FROM movies "
    "WHERE CASE WHEN rating > 9.0 THEN 1 ELSE 0 END = 1 LIMIT 5"
)


def shop_engine(adaptive: bool, noise=None, seed: int = 3, **extra):
    world = shop_world()
    model = SimulatedLLM(world, noise or NoiseConfig.perfect(), seed=seed)
    config = EngineConfig().with_(
        enable_adaptive=adaptive, enable_cache=False, **extra
    )
    engine = LLMStorageEngine(model, config=config)
    engine.register_virtual_table(PARTS_SCHEMA, row_estimate=8)  # truth: 240
    engine.register_virtual_table(ORDERS_SCHEMA, row_estimate=40)
    return engine


def movies_engine(adaptive: bool, noise=None, seed: int = 7, **extra):
    from repro.eval.worlds import movies_world

    world = movies_world()
    model = SimulatedLLM(world, noise or NoiseConfig.perfect(), seed=seed)
    config = EngineConfig().with_(enable_adaptive=adaptive, **extra)
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    return engine


def run_rows(engine, queries):
    return [tuple(map(tuple, engine.execute(sql).rows)) for sql in queries]


# ---------------------------------------------------------------------------
# Learned cardinality: plan flip + fewer calls, byte-identical rows
# ---------------------------------------------------------------------------


def test_learned_cardinality_flips_scan_to_lookup_join():
    static = shop_engine(adaptive=False)
    rows_static = run_rows(static, JOIN_QUERIES)
    adaptive = shop_engine(adaptive=True)
    rows_adaptive = run_rows(adaptive, JOIN_QUERIES)
    assert rows_adaptive == rows_static
    assert adaptive.usage.calls * 2 <= static.usage.calls
    # The catalog learned the real cardinality from query 1's full scan.
    assert adaptive.stats_catalog.observed_rows("parts") == 240
    # The flip is visible in the plan itself.
    plan_text = adaptive.explain(JOIN_QUERIES[0])
    assert "lookup" in plan_text
    assert "stats[observed]: parts rows=240" in plan_text
    static.close()
    adaptive.close()


def test_static_plans_unchanged_without_adaptive():
    """enable_adaptive=False must be byte-identical to today: same rows,
    same calls, same tokens -- recording alone changes nothing."""
    default = shop_engine(adaptive=False)
    rows_default = run_rows(default, JOIN_QUERIES)
    off = shop_engine(adaptive=False)
    rows_off = run_rows(off, JOIN_QUERIES)
    assert rows_default == rows_off
    assert default.usage.calls == off.usage.calls
    assert default.usage.prompt_tokens == off.usage.prompt_tokens
    assert default.usage.completion_tokens == off.usage.completion_tokens
    # The catalog still *recorded* (always-on observation)...
    assert off.stats_catalog.observed_rows("parts") == 240
    # ...but the planner never consulted it.
    assert "stats[" not in off.explain(JOIN_QUERIES[0])
    default.close()
    off.close()


# ---------------------------------------------------------------------------
# Mid-query re-plan: byte identity across the acceptance grid
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("storage_mode", ["off", "materialize"])
@pytest.mark.parametrize("scan_shards", [1, 4])
@pytest.mark.parametrize("max_in_flight", [1, 8])
def test_replan_byte_identity_grid(storage_mode, scan_shards, max_in_flight):
    queries = [REPLAN_QUERY, REPLAN_QUERY.replace("LIMIT 5", "LIMIT 9")]
    static = movies_engine(
        adaptive=False,
        storage_mode=storage_mode,
        scan_shards=scan_shards,
        max_in_flight=max_in_flight,
    )
    rows_static = run_rows(static, queries)
    static.close()
    adaptive = movies_engine(
        adaptive=True,
        storage_mode=storage_mode,
        scan_shards=scan_shards,
        max_in_flight=max_in_flight,
    )
    rows_adaptive = run_rows(adaptive, queries)
    adaptive.close()
    assert rows_adaptive == rows_static


def test_replan_byte_identity_under_injected_noise():
    """Noise is deterministic per (prompt, sample); replan shard prompts
    are byte-identical to the serial continuation's pages, so even noisy
    answers land identically in both modes."""
    noise = NoiseConfig()  # the default imperfect substrate
    static = movies_engine(adaptive=False, noise=noise)
    rows_static = run_rows(static, [REPLAN_QUERY])
    static.close()
    adaptive = movies_engine(adaptive=True, noise=noise, max_in_flight=8)
    rows_adaptive = run_rows(adaptive, [REPLAN_QUERY])
    adaptive.close()
    assert rows_adaptive == rows_static


def test_replan_fires_and_annotates_explain():
    engine = movies_engine(adaptive=True, max_in_flight=8)
    text = engine.explain(REPLAN_QUERY, analyze=True)
    assert "replanned[" in text
    assert "sel: est=" in text
    assert engine.stats_catalog.replans >= 1
    assert engine.stats_catalog.replan_shards >= 1
    # The observation feeds back: a second run plans off the observed
    # residual selectivity and no longer needs to re-plan.
    text2 = engine.explain(REPLAN_QUERY, analyze=True)
    assert "stats[selectivity]" in text2
    assert "replanned[" not in text2
    engine.close()


def test_adaptive_off_never_replans():
    engine = movies_engine(adaptive=False, max_in_flight=8)
    text = engine.explain(REPLAN_QUERY, analyze=True)
    assert "replanned[" not in text
    assert engine.stats_catalog.replans == 0
    engine.close()


# ---------------------------------------------------------------------------
# stats[default-guess] warning (satellite: no more silent fallback)
# ---------------------------------------------------------------------------


def test_default_guess_warns_once_per_table(mini_world, perfect_model):
    engine = LLMStorageEngine(perfect_model, config=EngineConfig())
    for schema in mini_world.schemas():
        engine.register_virtual_table(schema)  # no row_estimate
    first = engine.execute("SELECT name FROM countries WHERE continent = 'Europe'")
    assert any("stats[default-guess]" in w for w in first.warnings)
    # One-time: the same table never warns twice.
    second = engine.execute("SELECT name FROM countries WHERE continent = 'Asia'")
    assert not any("stats[default-guess]" in w for w in second.warnings)
    # A different defaulted table gets its own warning.
    third = engine.execute("SELECT city FROM cities")
    assert any("stats[default-guess]" in w for w in third.warnings)
    # And EXPLAIN carries the note.
    assert "stats[default-guess]" in engine.explain(
        "SELECT name FROM countries WHERE continent = 'Europe'"
    )
    engine.close()


def test_registered_estimate_never_warns(perfect_engine):
    result = perfect_engine.execute(
        "SELECT name FROM countries WHERE continent = 'Europe'"
    )
    assert not any("stats[default-guess]" in w for w in result.warnings)


# ---------------------------------------------------------------------------
# Persistence: real processes over one SQLite file
# ---------------------------------------------------------------------------

CHILD_SCRIPT = """
import sys

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.llm.world import World
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType

path, mode = sys.argv[1], sys.argv[2]

KINDS = ["bolt", "nut", "gear", "washer", "bracket", "spring"]
parts_schema = TableSchema(
    name="parts",
    columns=(
        Column("part_id", DataType.TEXT, nullable=False),
        Column("kind", DataType.TEXT),
        Column("weight", DataType.REAL),
    ),
    primary_key=("part_id",),
    description="parts catalog",
)
orders_schema = TableSchema(
    name="orders",
    columns=(
        Column("order_id", DataType.TEXT, nullable=False),
        Column("part_id", DataType.TEXT),
        Column("qty", DataType.INTEGER),
    ),
    primary_key=("order_id",),
    description="orders",
)
parts = [
    ("P%04d" % i, KINDS[i % len(KINDS)], round(0.1 * (i % 50) + 0.5, 1))
    for i in range(240)
]
orders = [("O%03d" % i, "P%04d" % ((i * 7) % 240), (i % 9) + 1) for i in range(40)]
world = World("shop", [Table(parts_schema, parts), Table(orders_schema, orders)])

model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=3)
engine = LLMStorageEngine(
    model,
    config=EngineConfig(
        enable_adaptive=True,
        enable_cache=False,
        storage_backend="sqlite",
        storage_path=path,
        storage_scope="application",
    ),
)
engine.register_virtual_table(parts_schema, row_estimate=8)
engine.register_virtual_table(orders_schema, row_estimate=40)

if mode == "teach":
    # A full enumeration teaches the real cardinality.
    rows = tuple(map(tuple, engine.execute("SELECT part_id FROM parts").rows))
    observed = len(rows)
else:
    # A fresh process: plans must already consult the persisted stats.
    result = engine.execute(
        "SELECT o.order_id, p.kind FROM orders o "
        "JOIN parts p ON p.part_id = o.part_id WHERE o.qty > 7"
    )
    observed = engine.stats_catalog.observed_rows("parts")
engine.close()
print(repr({
    "observed": observed,
    "calls": engine.usage.calls,
    "known": engine.stats_catalog.observed_rows("parts"),
    "key": engine.stats_catalog._key,
}))
"""


def spawn_child(script_path, db_path, mode):
    src = str(Path(__file__).resolve().parent.parent / "src")
    return subprocess.Popen(
        [sys.executable, str(script_path), str(db_path), mode],
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def child_output(process):
    stdout, stderr = process.communicate(timeout=120)
    assert process.returncode == 0, stderr
    return ast.literal_eval(stdout.strip())


def test_stats_persist_across_real_processes(tmp_path):
    script = tmp_path / "child.py"
    script.write_text(CHILD_SCRIPT, encoding="utf-8")
    db_path = tmp_path / "stats.db"

    taught = child_output(spawn_child(script, db_path, "teach"))
    assert taught["known"] == 240

    # A brand-new process reads the learned cardinality from the file
    # at startup -- before running anything itself.
    fresh = child_output(spawn_child(script, db_path, "join"))
    assert fresh["observed"] == 240
    # ...and plans with it: the join costs far fewer calls than the
    # 12-page parts scan a cold static plan would pay.
    assert fresh["calls"] <= 6


def test_cross_process_merge_never_double_counts(tmp_path):
    script = tmp_path / "child.py"
    script.write_text(CHILD_SCRIPT, encoding="utf-8")
    db_path = tmp_path / "stats.db"

    # Two concurrent processes observe the same full enumeration.
    first = spawn_child(script, db_path, "teach")
    second = spawn_child(script, db_path, "teach")
    out_first = child_output(first)
    out_second = child_output(second)
    assert out_first["known"] == out_second["known"] == 240

    from repro.storage.persistent import SqliteBackend

    backend = SqliteBackend(str(db_path), budget_bytes=1_000_000, store="stats")
    catalog = StatisticsCatalog(backend)
    # Both processes persisted under the same scope key (same catalog
    # fingerprint, model, and scope).
    key = tuple(out_first["key"])
    assert key == tuple(out_second["key"])
    assert key[0] == "stats"
    payload = backend.peek(key)
    # Last-value table cardinality: merged, not summed, across both
    # processes' flushes.
    assert payload["tables"]["parts"] == 240
    # Call histograms merged additively: each process's scan pages are
    # counted exactly once (12 pages each, 2 processes).
    counts, _total = payload["latency"]["scan-page"]
    assert sum(counts) == 24
    catalog.set_scope(key)
    assert catalog.observed_rows("parts") == 240


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_adaptive_flags_and_stats_command(capsys):
    from repro.cli import main

    assert (
        main(
            [
                "--world",
                "geography",
                "--adaptive",
                "--replan-threshold",
                "3.5",
                "-c",
                "SELECT name FROM countries WHERE continent = 'Europe'",
            ]
        )
        == 0
    )
    capsys.readouterr()

    import io

    from repro.cli import build_engine, repl

    engine = build_engine(
        "geography", 0, False, 0.0, 0.0, 1, adaptive=True
    )
    assert engine.config.enable_adaptive is True
    out = io.StringIO()
    repl(
        engine,
        stdin=io.StringIO(
            "SELECT name FROM countries WHERE continent = 'Europe';\n"
            ".stats\n.quit\n"
        ),
        out=out,
    )
    engine.close()
    text = out.getvalue()
    assert "tables:" in text
    assert "calls:" in text


def test_cli_no_adaptive_is_default():
    from repro.cli import build_engine

    engine = build_engine("geography", 0, False, 0.0, 0.0, 1)
    assert engine.config.enable_adaptive is False
    assert engine.config.replan_threshold == 4.0
    engine.close()
