"""Hybrid queries: materialized tables mixed with virtual ones."""

import pytest

from repro.baselines.materialized import MaterializedEngine
from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType


def orders_table() -> Table:
    schema = TableSchema(
        name="orders",
        columns=(
            Column("order_id", DataType.INTEGER, nullable=False),
            Column("customer_country", DataType.TEXT),
            Column("amount", DataType.REAL),
        ),
        primary_key=("order_id",),
        description="locally stored orders",
    )
    return Table(
        schema,
        [
            (1, "France", 100.0),
            (2, "Japan", 250.0),
            (3, "France", 80.0),
            (4, "Kenya", 40.0),
            (5, "Atlantis", 10.0),  # no such country in the model
        ],
    )


@pytest.fixture
def hybrid_engine(perfect_model, mini_world):
    engine = LLMStorageEngine(perfect_model, config=EngineConfig())
    for schema in mini_world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=mini_world.row_count(schema.name)
        )
    engine.register_materialized_table(orders_table())
    return engine


def test_materialized_only_query_costs_nothing(hybrid_engine):
    result = hybrid_engine.execute(
        "SELECT COUNT(*), SUM(amount) FROM orders WHERE customer_country = 'France'"
    )
    assert result.rows == [(2, 180.0)]
    assert result.usage.calls == 0


def test_local_step_in_plan_and_explain(hybrid_engine):
    text = hybrid_engine.explain(
        "SELECT o.order_id, k.continent FROM orders o "
        "JOIN countries k ON k.name = o.customer_country"
    )
    assert "LocalTable orders" in text
    assert "LLMLookup countries" in text


def test_hybrid_join_drives_lookup_from_local_table(hybrid_engine):
    result = hybrid_engine.execute(
        "SELECT o.order_id, k.continent FROM orders o "
        "JOIN countries k ON k.name = o.customer_country ORDER BY o.order_id"
    )
    assert result.rows == [
        (1, "Europe"), (2, "Asia"), (3, "Europe"), (4, "Africa"),
    ]
    # 3 distinct known countries, one batch lookup.
    assert result.usage.calls == 1


def test_hybrid_left_join_keeps_unknown_entities(hybrid_engine):
    result = hybrid_engine.execute(
        "SELECT o.order_id, k.continent FROM orders o "
        "LEFT JOIN countries k ON k.name = o.customer_country "
        "WHERE o.order_id = 5"
    )
    assert result.rows == [(5, None)]


def test_hybrid_aggregation_over_virtual_and_local(hybrid_engine, mini_world):
    sql = (
        "SELECT k.continent, SUM(o.amount) AS revenue FROM orders o "
        "JOIN countries k ON k.name = o.customer_country "
        "GROUP BY k.continent ORDER BY revenue DESC"
    )
    result = hybrid_engine.execute(sql)
    assert result.rows == [("Asia", 250.0), ("Europe", 180.0), ("Africa", 40.0)]


def test_hybrid_matches_fully_materialized_oracle(hybrid_engine, mini_world):
    from repro.llm.world import World

    oracle_world = World(
        "oracle",
        [mini_world.table("countries"), mini_world.table("cities"), orders_table()],
    )
    sql = (
        "SELECT o.order_id, k.name, k.population FROM orders o "
        "JOIN countries k ON k.name = o.customer_country "
        "WHERE o.amount > 50 ORDER BY o.order_id"
    )
    truth = MaterializedEngine(oracle_world).execute(sql).rows
    assert hybrid_engine.execute(sql).rows == truth


def test_no_pushdown_into_materialized_tables(hybrid_engine):
    text = hybrid_engine.explain("SELECT order_id FROM orders WHERE amount > 50")
    assert "pushdown" not in text
    assert "LocalTable" in text


def test_virtual_to_local_direction_also_works(hybrid_engine):
    # Virtual table first in FROM order; local table joined after.
    result = hybrid_engine.execute(
        "SELECT k.name, o.amount FROM countries k "
        "JOIN orders o ON o.customer_country = k.name "
        "WHERE k.continent = 'Africa'"
    )
    assert result.rows == [("Kenya", 40.0)]
