"""Observability: tracing, metrics, EXPLAIN ANALYZE, exporters.

The invariants under test mirror the engine's determinism bar:

* the span-tree *shape* of a statement is identical at any
  ``max_in_flight`` (timings may differ, logical work may not);
* histogram percentiles are bucket-exact and independent of
  observation order (no float-summation nondeterminism);
* a disabled tracer changes nothing — rows, usage totals, and wall
  accounting are byte-identical to a traced run;
* the JSONL trace export round-trips.
"""

import random

import pytest

from tests.conftest import make_engine
from repro.config import EngineConfig
from repro.llm.accounting import UsageSnapshot
from repro.obs import metrics as obs_metrics
from repro.obs.export import (
    batch_summary,
    exact_percentile,
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.obs.hub import Observability
from repro.obs.metrics import Histogram
from repro.obs.trace import NOOP_TRACER, QueryTrace, QueryTracer, Span


JOIN_SQL = (
    "SELECT c.name, ci.city FROM countries c "
    "JOIN cities ci ON c.name = ci.country WHERE c.continent = 'Europe'"
)


def traced_engine(perfect_model, mini_world, **overrides):
    config = EngineConfig(enable_tracing=True, **overrides)
    return make_engine(perfect_model, mini_world, config)


# ---------------------------------------------------------------------------
# Span-tree shape stability
# ---------------------------------------------------------------------------


class TestShapeStability:
    def test_join_shape_identical_across_concurrency(
        self, mini_world, perfect_model
    ):
        shapes = {}
        for mif in (1, 4, 8):
            engine = traced_engine(
                perfect_model, mini_world, max_in_flight=mif
            )
            result = engine.execute(JOIN_SQL)
            shapes[mif] = result.trace.shape()
        assert shapes[1] == shapes[4]
        assert shapes[4] == shapes[8]

    def test_sharded_scan_shape_identical_across_concurrency(
        self, mini_world, perfect_model
    ):
        shapes = {}
        for mif in (1, 4):
            engine = traced_engine(
                perfect_model,
                mini_world,
                max_in_flight=mif,
                scan_shards=3,
                shard_min_rows=2,
                page_size=4,
            )
            result = engine.execute("SELECT name FROM countries")
            shapes[mif] = result.trace.shape()
        assert shapes[1] == shapes[4]

    def test_trace_contains_expected_phases(self, mini_world, perfect_model):
        engine = traced_engine(perfect_model, mini_world)
        result = engine.execute(JOIN_SQL)
        names = {span.name for span in result.trace.spans}
        assert {"query", "parse", "bind", "optimize", "execute"} <= names
        assert "step" in names and "flight" in names
        # Exactly one root: the query span.
        roots = result.trace.roots()
        assert len(roots) == 1 and roots[0].name == "query"

    def test_step_spans_carry_identity_tags(self, mini_world, perfect_model):
        engine = traced_engine(perfect_model, mini_world)
        result = engine.execute(JOIN_SQL)
        steps = [s for s in result.trace.spans if s.name == "step"]
        assert len(steps) == 2
        assert {s.tags["step"] for s in steps} == {0, 1}
        for span in steps:
            assert span.tags["step_kind"] == "scan"
            assert "rows" in span.tags
            assert span.tags["table"] in ("countries", "cities")

    def test_flight_spans_nest_under_their_step(
        self, mini_world, perfect_model
    ):
        engine = traced_engine(perfect_model, mini_world, max_in_flight=4)
        result = engine.execute(JOIN_SQL)
        index = result.trace.children_index()
        by_id = {s.span_id: s for s in result.trace.spans}
        flights = [s for s in result.trace.spans if s.name == "flight"]
        assert flights
        for flight in flights:
            assert by_id[flight.parent_id].name == "step"
            assert flight.tags["kind"] == "scan-page"
        # every step span has at least one flight beneath it
        for step in (s for s in result.trace.spans if s.name == "step"):
            kids = index.get(step.span_id, [])
            assert any(k.name == "flight" for k in kids)


# ---------------------------------------------------------------------------
# Deterministic simulated timings
# ---------------------------------------------------------------------------


class TestDeterministicTimings:
    def test_same_run_same_timings(self, mini_world, perfect_model):
        def run():
            engine = traced_engine(perfect_model, mini_world)
            trace = engine.execute(JOIN_SQL).trace
            return [
                (s.name, round(s.start_ms, 4), round(s.end_ms, 4))
                for s in sorted(trace.spans, key=lambda s: s.span_id)
            ]

        assert run() == run()

    def test_wall_matches_query_span(self, mini_world, perfect_model):
        engine = traced_engine(perfect_model, mini_world, max_in_flight=4)
        result = engine.execute(JOIN_SQL)
        root = result.trace.roots()[0]
        assert root.duration_ms == pytest.approx(result.usage.wall_ms)


# ---------------------------------------------------------------------------
# No-op tracer byte-identity
# ---------------------------------------------------------------------------


class TestNoopIdentity:
    @pytest.mark.parametrize("mif", [1, 8])
    def test_rows_and_usage_identical(self, mini_world, perfect_model, mif):
        off = make_engine(
            perfect_model, mini_world, EngineConfig(max_in_flight=mif)
        ).execute(JOIN_SQL)
        on = make_engine(
            perfect_model,
            mini_world,
            EngineConfig(max_in_flight=mif, enable_tracing=True),
        ).execute(JOIN_SQL)
        assert off.rows == on.rows
        assert off.column_names == on.column_names
        for field in (
            "calls",
            "prompt_tokens",
            "completion_tokens",
            "latency_ms",
            "wall_ms",
            "pages_fetched",
            "pages_skipped",
        ):
            assert getattr(off.usage, field) == getattr(on.usage, field)
        assert off.trace is None
        assert on.trace is not None

    def test_disabled_engine_has_noop_hub(self, perfect_engine):
        result = perfect_engine.execute("SELECT name FROM countries")
        assert result.trace is None
        assert not perfect_engine.observability.enabled
        assert perfect_engine.observability.registry.names() == []
        assert NOOP_TRACER.enabled is False


# ---------------------------------------------------------------------------
# Histogram / metrics determinism
# ---------------------------------------------------------------------------


class TestHistograms:
    def test_percentiles_order_independent(self):
        values = [1, 3, 7, 12, 40, 90, 150, 600, 1800, 9999]
        percentiles = {}
        for seed in (0, 1, 2):
            shuffled = list(values)
            random.Random(seed).shuffle(shuffled)
            histogram = Histogram("h")
            for value in shuffled:
                histogram.observe(value)
            percentiles[seed] = (
                histogram.percentile(50),
                histogram.percentile(90),
                histogram.percentile(99),
            )
        assert percentiles[0] == percentiles[1] == percentiles[2]

    def test_percentile_is_bucket_upper_bound(self):
        histogram = Histogram("h", buckets=(10, 100, 1000))
        for value in (5, 7, 80, 90, 95):
            histogram.observe(value)
        assert histogram.percentile(50) == 100
        assert histogram.percentile(1) == 10
        assert histogram.percentile(100) == 100

    def test_overflow_bucket_reports_inf(self):
        histogram = Histogram("h", buckets=(10,))
        histogram.observe(99)
        assert histogram.percentile(50) == float("inf")

    def test_empty_percentile_is_none(self):
        assert Histogram("h").percentile(50) is None

    def test_inactive_registry_is_never_fed(self, perfect_engine):
        # ``active`` gates the instrumentation sites: with observability
        # off, nothing in the engine touches the registry at all.
        registry = perfect_engine.observability.registry
        assert registry.active is False
        perfect_engine.execute("SELECT name FROM countries")
        assert registry.names() == []

    def test_prometheus_exposition(self, mini_world, perfect_model):
        engine = traced_engine(perfect_model, mini_world)
        engine.execute("SELECT name FROM countries WHERE continent = 'Asia'")
        text = engine.prometheus_metrics()
        assert "# TYPE repro_model_calls_total counter" in text
        assert "repro_queries_total 1" in text
        assert 'le="+Inf"' in text
        assert "repro_call_latency_ms_count" in text

    def test_query_metrics_flow(self, mini_world, perfect_model):
        engine = traced_engine(perfect_model, mini_world)
        engine.execute(JOIN_SQL)
        registry = engine.observability.registry
        calls = registry.counter(obs_metrics.MODEL_CALLS_TOTAL).value
        assert calls == engine.usage.calls > 0
        assert registry.counter(obs_metrics.QUERIES_TOTAL).value == 1
        assert (
            registry.histogram(obs_metrics.CALL_LATENCY_MS).count == calls
        )
        assert registry.histogram(obs_metrics.PAGES_PER_SCAN).count == 2

    def test_storage_hit_counters(self, mini_world, perfect_model):
        engine = traced_engine(
            perfect_model, mini_world, storage_mode="materialize"
        )
        engine.execute("SELECT name FROM countries")
        engine.execute("SELECT name FROM countries")
        registry = engine.observability.registry
        assert registry.counter(obs_metrics.RESULT_HITS_TOTAL).value == 1
        assert registry.counter(obs_metrics.RESULT_MISSES_TOTAL).value == 1


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


class TestExplainAnalyze:
    def test_estimate_and_actual_per_step(self, mini_world, perfect_model):
        engine = make_engine(perfect_model, mini_world)
        text = engine.explain(JOIN_SQL, analyze=True)
        assert "LLMScan countries" in text and "LLMScan cities" in text
        # one actual line per step, carrying all four actual fields
        actual_lines = [
            line for line in text.splitlines() if "actual: rows=" in line
        ]
        assert len(actual_lines) == 2
        for line in actual_lines:
            assert "calls=" in line
            assert "pages=" in line
            assert "wall=" in line
        assert "est_rows=" in text
        assert text.splitlines()[-1].startswith("-- actual: ")

    def test_analyze_executes_even_with_result_cache(
        self, mini_world, perfect_model
    ):
        engine = make_engine(
            perfect_model,
            mini_world,
            EngineConfig(storage_mode="result_cache"),
        )
        sql = "SELECT name FROM countries WHERE continent = 'Africa'"
        engine.execute(sql)  # populates the result cache
        text = engine.explain(sql, analyze=True)
        # bypassed the cached result: real flights were flown
        assert "calls=1" in text
        baseline = engine.explain(sql)
        assert baseline.splitlines()[0] in text

    def test_analyze_works_without_session_tracing(self, perfect_engine):
        text = perfect_engine.explain(
            "SELECT COUNT(*) FROM cities", analyze=True
        )
        assert "actual:" in text
        # the forced tracer is query-local: the session hub stays off
        assert not perfect_engine.observability.enabled

    def test_analyze_union_branches(self, mini_world, perfect_model):
        engine = make_engine(perfect_model, mini_world)
        text = engine.explain(
            "SELECT name FROM countries WHERE continent = 'Africa' "
            "UNION SELECT name FROM countries WHERE continent = 'Asia'",
            analyze=True,
        )
        assert text.splitlines()[0].startswith("SetOp UNION")
        assert text.count("LocalCompute:") == 2
        assert "not executed" not in text


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExport:
    def test_jsonl_round_trip(self, mini_world, perfect_model, tmp_path):
        engine = traced_engine(perfect_model, mini_world)
        engine.execute(JOIN_SQL)
        engine.execute("SELECT COUNT(*) FROM cities")
        path = tmp_path / "trace.jsonl"
        written = engine.export_trace(str(path))
        traces = engine.observability.traces
        assert written == sum(len(t.spans) for t in traces)
        loaded = read_trace_jsonl(str(path))
        assert len(loaded) == len(traces)
        for original, round_tripped in zip(traces, loaded):
            assert round_tripped.statement == original.statement
            assert round_tripped.shape() == original.shape()
            originals = sorted(original.spans, key=lambda s: s.span_id)
            loaded_spans = sorted(
                round_tripped.spans, key=lambda s: s.span_id
            )
            for a, b in zip(originals, loaded_spans):
                assert (a.span_id, a.parent_id, a.name) == (
                    b.span_id,
                    b.parent_id,
                    b.name,
                )
                assert b.start_ms == pytest.approx(a.start_ms, abs=1e-3)

    def test_export_empty_when_disabled(self, perfect_engine, tmp_path):
        perfect_engine.execute("SELECT name FROM countries")
        path = tmp_path / "trace.jsonl"
        assert perfect_engine.export_trace(str(path)) == 0

    def test_write_read_synthetic(self, tmp_path):
        trace = QueryTrace(statement="SELECT 1")
        tracer = QueryTracer(trace)
        with tracer.span("query"):
            with tracer.span("step", step=0):
                tracer.emit("flight", 0.0, 5.0, {"kind": "scan-page"})
        path = tmp_path / "t.jsonl"
        assert write_trace_jsonl(str(path), [trace]) == 3
        (loaded,) = read_trace_jsonl(str(path))
        assert loaded.shape() == trace.shape()


# ---------------------------------------------------------------------------
# Fleet aggregation
# ---------------------------------------------------------------------------


class TestFleet:
    def test_batch_summary_lines(self, mini_world, perfect_model):
        engine = traced_engine(
            perfect_model, mini_world, serve_jobs=2, max_in_flight=4
        )
        outcomes = engine.execute_many(
            [
                "SELECT name FROM countries WHERE continent = 'Europe'",
                "SELECT city FROM cities WHERE country = 'Japan'",
            ],
            collect_outcomes=True,
        )
        line = batch_summary(outcomes)
        assert line.startswith("-- fleet: 2 queries")
        assert "wall p50/p99" in line
        assert "call(s)" in line

    def test_batch_summary_empty(self):
        assert batch_summary([]) == "-- fleet: no usage attributed"

    def test_queue_wait_recorded(self, mini_world, perfect_model):
        engine = traced_engine(perfect_model, mini_world, serve_jobs=2)
        engine.execute_many(
            ["SELECT COUNT(*) FROM cities", "SELECT COUNT(*) FROM countries"]
        )
        registry = engine.observability.registry
        assert registry.histogram(obs_metrics.QUEUE_WAIT_MS).count == 2

    def test_exact_percentile(self):
        assert exact_percentile([], 50) == 0.0
        assert exact_percentile([5.0], 99) == 5.0
        assert exact_percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0
        assert exact_percentile([1.0, 2.0, 3.0, 4.0], 99) == 4.0


# ---------------------------------------------------------------------------
# Slow-query log
# ---------------------------------------------------------------------------


class TestSlowQueryLog:
    def test_threshold_records_entry(self, mini_world, perfect_model):
        engine = make_engine(
            perfect_model, mini_world, EngineConfig(slow_query_ms=1.0)
        )
        engine.execute(JOIN_SQL)
        log = engine.observability.slow_log
        assert len(log) == 1
        (entry,) = log.entries
        assert entry.statement == JOIN_SQL
        assert entry.wall_ms > 0
        assert 1 <= len(entry.top_spans) <= 3
        durations = [d for _, d, _ in entry.top_spans]
        assert durations == sorted(durations, reverse=True)
        report = engine.metrics_report()
        assert "slow queries" in report
        assert JOIN_SQL in report

    def test_threshold_implies_tracing(self, mini_world, perfect_model):
        engine = make_engine(
            perfect_model, mini_world, EngineConfig(slow_query_ms=5.0)
        )
        assert engine.observability.enabled
        result = engine.execute("SELECT name FROM countries")
        assert result.trace is not None

    def test_fast_queries_stay_out(self, mini_world, perfect_model):
        engine = make_engine(
            perfect_model, mini_world, EngineConfig(slow_query_ms=10_000_000)
        )
        engine.execute("SELECT name FROM countries")
        assert len(engine.observability.slow_log) == 0
        assert "(no slow queries)" in engine.metrics_report()


# ---------------------------------------------------------------------------
# UsageSnapshot edges
# ---------------------------------------------------------------------------


class TestUsageSnapshot:
    def test_speedup_zero_wall_with_latency(self):
        snapshot = UsageSnapshot(calls=1, latency_ms=500.0, wall_ms=0.0)
        assert snapshot.speedup == 1.0

    def test_speedup_zero_latency(self):
        assert UsageSnapshot(wall_ms=100.0).speedup == 1.0

    def test_speedup_real_ratio(self):
        snapshot = UsageSnapshot(latency_ms=1000.0, wall_ms=250.0)
        assert snapshot.speedup == pytest.approx(4.0)

    def test_render_hides_speedup_when_serial(self):
        serial = UsageSnapshot(calls=2, latency_ms=800.0, wall_ms=800.0)
        assert "wall" not in serial.render()
        degenerate = UsageSnapshot(calls=1, latency_ms=500.0, wall_ms=0.0)
        assert "wall" not in degenerate.render()

    def test_render_shows_speedup_when_overlapped(self):
        snapshot = UsageSnapshot(calls=4, latency_ms=2000.0, wall_ms=500.0)
        text = snapshot.render()
        assert "500 ms wall" in text
        assert "(4.00x)" in text

    def test_render_appends_latency_summary(self):
        snapshot = UsageSnapshot(
            calls=1, latency_summary="call latency p50/p99 <= 5/10 ms"
        )
        assert snapshot.render().endswith("call latency p50/p99 <= 5/10 ms")
        assert "latency p50" not in UsageSnapshot(calls=1).render()

    def test_session_usage_carries_summary(self, mini_world, perfect_model):
        engine = traced_engine(perfect_model, mini_world)
        engine.execute("SELECT name FROM countries")
        assert "call latency p50/p99" in engine.usage.render()

    def test_untraced_usage_render_unchanged(self, perfect_engine):
        perfect_engine.execute("SELECT name FROM countries")
        assert "call latency" not in perfect_engine.usage.render()


# ---------------------------------------------------------------------------
# Observability hub plumbing
# ---------------------------------------------------------------------------


class TestHub:
    def test_from_config(self):
        assert not Observability.from_config(EngineConfig()).enabled
        assert Observability.from_config(
            EngineConfig(enable_tracing=True)
        ).enabled
        assert Observability.from_config(
            EngineConfig(slow_query_ms=3.0)
        ).enabled

    def test_disabled_hub_hands_out_noop(self):
        hub = Observability.from_config(EngineConfig())
        assert hub.query_tracer("SELECT 1") is NOOP_TRACER

    def test_trace_buffer_bounded(self):
        hub = Observability(enabled=True, trace_capacity=2)
        for index in range(4):
            trace = QueryTrace(statement=f"q{index}")
            trace.append(Span(1, None, "query"))
            hub.record_query(f"q{index}", UsageSnapshot(), trace)
        statements = [t.statement for t in hub.traces]
        assert statements == ["q2", "q3"]

    def test_negative_slow_query_ms_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            EngineConfig(slow_query_ms=-1.0)
