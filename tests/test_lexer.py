"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenKind


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)[:-1]]


def test_empty_input_yields_eof_only():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_keywords_are_upper_cased():
    assert texts("select From WHERE") == ["SELECT", "FROM", "WHERE"]


def test_identifiers_preserve_case():
    tokens = tokenize("myTable")
    assert tokens[0].kind is TokenKind.IDENT
    assert tokens[0].text == "myTable"


def test_integer_literal():
    token = tokenize("42")[0]
    assert token.kind is TokenKind.INTEGER
    assert token.value == 42


def test_float_literal_with_decimal_point():
    token = tokenize("3.25")[0]
    assert token.kind is TokenKind.FLOAT
    assert token.value == 3.25


def test_float_literal_with_exponent():
    token = tokenize("1e3")[0]
    assert token.kind is TokenKind.FLOAT
    assert token.value == 1000.0


def test_float_with_signed_exponent():
    token = tokenize("2.5E-2")[0]
    assert token.value == 0.025


def test_number_followed_by_dot_star_is_not_float():
    tokens = tokenize("t1.x")
    assert tokens[0].kind is TokenKind.IDENT


def test_string_literal_simple():
    token = tokenize("'hello'")[0]
    assert token.kind is TokenKind.STRING
    assert token.value == "hello"


def test_string_literal_with_escaped_quote():
    token = tokenize("'it''s'")[0]
    assert token.value == "it's"


def test_unterminated_string_raises():
    with pytest.raises(LexerError):
        tokenize("'oops")


def test_quoted_identifier():
    token = tokenize('"weird name"')[0]
    assert token.kind is TokenKind.IDENT
    assert token.value == "weird name"


def test_quoted_identifier_with_escaped_quote():
    token = tokenize('"a""b"')[0]
    assert token.value == 'a"b'


def test_empty_quoted_identifier_raises():
    with pytest.raises(LexerError):
        tokenize('""')


def test_multi_char_operators():
    assert texts("a <> b != c >= d <= e || f") == [
        "a", "<>", "b", "!=", "c", ">=", "d", "<=", "e", "||", "f",
    ]


def test_line_comment_is_skipped():
    assert texts("SELECT -- comment here\n 1") == ["SELECT", "1"]


def test_block_comment_is_skipped():
    assert texts("SELECT /* multi\nline */ 1") == ["SELECT", "1"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexerError):
        tokenize("SELECT /* oops")


def test_unexpected_character_raises_with_position():
    with pytest.raises(LexerError) as excinfo:
        tokenize("SELECT @")
    assert excinfo.value.column == 8


def test_line_and_column_tracking():
    tokens = tokenize("SELECT\n  name")
    name = tokens[1]
    assert name.line == 2
    assert name.column == 3


def test_punctuation_tokens():
    assert texts("(a, b);") == ["(", "a", ",", "b", ")", ";"]


def test_underscore_identifier():
    token = tokenize("_private_col")[0]
    assert token.kind is TokenKind.IDENT


def test_keyword_helpers():
    token = tokenize("SELECT")[0]
    assert token.is_keyword("SELECT", "FROM")
    assert not token.is_keyword("WHERE")
    assert tokenize("+")[0].is_operator("+")
    assert tokenize(",")[0].is_punct(",")
